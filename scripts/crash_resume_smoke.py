"""CI smoke check for crash-consistent resume, with a real ``kill -9``.

The in-process crash harness (``tests/durability``) injects failures at
the WAL layer; this script kills an *actual* ``repro-er dedupe`` process
with SIGKILL mid-run — no atexit handlers, no flushing, the same way an
OOM-killer or power cut ends a process — then resumes from the WAL
directory with ``repro-er resume`` and demands the final match set equal
an uninterrupted run of the same command.

Exit code 0 on success; any mismatch or timeout is a CI failure.

    PYTHONPATH=src python scripts/crash_resume_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Hard ceiling on any child process; a hung resume is a failure, not a wait.
CHILD_TIMEOUT = 120.0
KILL_AFTER = 0.8  # seconds of progress before the SIGKILL lands
ATTEMPTS = 4


def command(args: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def write_dataset(path: Path, rows: int = 400) -> None:
    """A JSONL catalog where consecutive id pairs are near-duplicates."""
    with path.open("w", encoding="utf-8") as handle:
        for i in range(rows):
            pair = i // 2
            title = f"widget model {pair} deluxe edition series {pair % 7}"
            if i % 2:
                title += " refurbished"
            handle.write(json.dumps({"id": i, "title": title}) + "\n")


def match_set(stdout: str) -> set[tuple]:
    pairs = set()
    for line in stdout.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        key = tuple(sorted((str(record["left"]), str(record["right"]))))
        pairs.add((key, record["similarity"]))
    return pairs


def run_to_completion(args: list[str]) -> str:
    result = subprocess.run(
        command(args),
        capture_output=True,
        text=True,
        timeout=CHILD_TIMEOUT,
        check=False,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"FAIL: {' '.join(args[:2])} exited {result.returncode}: "
            f"{result.stderr.strip()[-500:]}"
        )
    return result.stdout


def crash_a_run(data: Path, wal_dir: Path, throttle: float) -> bool:
    """Start a durable dedupe and SIGKILL it mid-run.

    Returns False when the run finished before the kill landed (caller
    retries with a heavier throttle).
    """
    proc = subprocess.Popen(
        command(
            [
                "dedupe", str(data), "--threshold", "0.6",
                "--wal-dir", str(wal_dir), "--checkpoint-every", "25",
                "--throttle", f"{throttle}",
            ]
        ),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_AFTER
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return False  # finished before we could kill it
        time.sleep(0.02)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=CHILD_TIMEOUT)
    if proc.returncode != -signal.SIGKILL:
        raise SystemExit(
            f"FAIL: expected the child to die by SIGKILL, got "
            f"returncode {proc.returncode}"
        )
    return True


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="crash-smoke-") as root:
        base = Path(root)
        data = base / "catalog.jsonl"
        write_dataset(data)

        reference = match_set(
            run_to_completion(["dedupe", str(data), "--threshold", "0.6"])
        )
        if not reference:
            raise SystemExit("FAIL: the reference run found no matches")

        for attempt in range(1, ATTEMPTS + 1):
            wal_dir = base / f"wal-{attempt}"
            throttle = 0.004 * attempt  # heavier each retry
            if crash_a_run(data, wal_dir, throttle):
                break
            print(
                f"attempt {attempt}: run finished before the kill landed; "
                f"retrying with throttle {0.004 * (attempt + 1):.3f}s"
            )
        else:
            raise SystemExit(
                f"FAIL: could not catch the run mid-flight in {ATTEMPTS} attempts"
            )

        resumed = match_set(
            run_to_completion(["resume", str(wal_dir), str(data)])
        )
        if resumed != reference:
            missing = reference - resumed
            extra = resumed - reference
            raise SystemExit(
                f"FAIL: resumed match set diverges from the uninterrupted "
                f"run ({len(missing)} missing, {len(extra)} extra); e.g. "
                f"missing {sorted(missing)[:3]} extra {sorted(extra)[:3]}"
            )
        print(
            f"OK: killed -9 mid-run (attempt {attempt}), resumed to the "
            f"identical {len(resumed)}-pair match set"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
