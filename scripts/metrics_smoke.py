"""CI smoke check for the observability layer.

Runs a short seeded stream through the thread-parallel framework with the
metrics registry enabled and asserts:

1. the Prometheus export is non-empty and well-formed (every sample line
   is ``<name>[{labels}] <number>``, every family has one TYPE line, and
   the full shared vocabulary is present);
2. enabling metrics changes no match — the instrumented run's match set
   equals an un-instrumented sequential run over the same stream.

Exit code 0 on success; any assertion failure is a CI failure.

    PYTHONPATH=src python scripts/metrics_smoke.py
"""

from __future__ import annotations

import re
import sys

from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.datasets import DatasetSpec, generate
from repro.observability import (
    PIPELINE_METRIC_NAMES,
    MetricsRegistry,
    to_prometheus,
)
from repro.parallel import ParallelERPipeline

TYPE_LINE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def main() -> int:
    spec = DatasetSpec(
        name="metrics-smoke", kind="dirty", size=150, matches=90,
        avg_attributes=4.0, heterogeneity=0.3, vocab_rare=2000, seed=11,
    )
    dataset = generate(spec)
    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )

    baseline = StreamERPipeline(config, instrument=False)
    baseline.process_many(dataset.stream())
    expected = baseline.cl.matches.pairs()

    registry = MetricsRegistry()
    pipeline = ParallelERPipeline(config, processes=8, registry=registry)
    result = pipeline.run(dataset.stream(), timeout=120.0)

    assert result.match_pairs == expected, (
        f"metrics changed the match set: {len(result.match_pairs)} vs "
        f"{len(expected)} pairs"
    )

    text = to_prometheus(registry)
    lines = text.splitlines()
    assert lines, "Prometheus export is empty"
    families = set()
    samples = 0
    for line in lines:
        if line.startswith("# TYPE"):
            assert TYPE_LINE.match(line), f"malformed TYPE line: {line!r}"
            families.add(line.split()[2])
            continue
        assert not line.startswith("#"), f"unexpected comment: {line!r}"
        name_part, _, value = line.rpartition(" ")
        assert name_part, f"malformed sample line: {line!r}"
        float(value)  # every sample value parses as a number
        samples += 1
    for name in PIPELINE_METRIC_NAMES:
        assert name in families, f"metric family {name} missing from export"
    assert samples > len(PIPELINE_METRIC_NAMES)

    entities = registry.value("er_entities_total")
    assert entities == len(dataset), f"entity counter {entities} != {len(dataset)}"

    print(
        f"metrics smoke OK: {len(result.match_pairs)} matches unchanged, "
        f"{len(families)} families, {samples} samples"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
