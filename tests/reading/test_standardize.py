"""Unit tests for the standardizer."""

from __future__ import annotations

from repro.reading.standardize import Standardizer
from repro.types import EntityDescription


class TestStandardizeWord:
    def test_spelling_us_to_gb(self):
        assert Standardizer().standardize_word("fiber") == "fibre"

    def test_synonym_generalization(self):
        assert Standardizer().standardize_word("timber") == "wood"

    def test_abbreviation_expansion(self):
        assert Standardizer().standardize_word("dept") == "department"

    def test_plural_stripping(self):
        s = Standardizer()
        assert s.standardize_word("panels") == "panel"
        assert s.standardize_word("categories") == "category"

    def test_plural_stripping_spares_short_and_ss_words(self):
        s = Standardizer()
        assert s.standardize_word("gas") == "gas"
        assert s.standardize_word("glass") == "glass"

    def test_plural_stripping_can_be_disabled(self):
        s = Standardizer(stem_plurals=False)
        assert s.standardize_word("panels") == "panels"


class TestStandardizeValue:
    def test_lowercases(self):
        assert Standardizer().standardize_value("Glass Panel") == "glass panel"

    def test_applies_word_rules_in_context(self):
        result = Standardizer().standardize_value("Fiber and Timber panels")
        assert "fibre" in result
        assert "wood" in result
        assert "panel" in result

    def test_preserves_non_word_characters(self):
        assert Standardizer().standardize_value("a-b") == "a-b"


class TestStandardizeEntity:
    def test_returns_new_description_with_same_identity(self):
        e = EntityDescription.create(7, {"material": "Timber"}, source="x")
        out = Standardizer().standardize(e)
        assert out.eid == 7
        assert out.source == "x"
        assert out.attributes == (("material", "wood"),)

    def test_paper_example_fiber_to_fibre(self):
        e = EntityDescription.create(4, {"desc": "fiber glass panel"})
        out = Standardizer().standardize(e)
        assert "fibre" in out.attributes[0][1]

    def test_custom_maps(self):
        s = Standardizer(spelling={}, abbreviations={}, synonyms={"car": "vehicle"})
        assert s.standardize_word("car") == "vehicle"
