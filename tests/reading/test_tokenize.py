"""Unit tests for the tokenizer."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.reading.tokenize import DEFAULT_STOPWORDS, Tokenizer


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert Tokenizer().tokens("Glass FIBRE Panel") == ["glass", "fibre", "panel"]

    def test_splits_on_punctuation(self):
        assert Tokenizer().tokens("fibre-glass,panel") == ["fibre", "glass", "panel"]

    def test_drops_short_tokens_but_keeps_digits(self):
        tokens = Tokenizer(min_length=3).tokens("ab 12 abc")
        assert tokens == ["12", "abc"]

    def test_drops_stopwords_by_default(self):
        assert "the" not in Tokenizer().tokens("the panel of the pavilion")

    def test_stopwords_kept_when_disabled(self):
        assert "the" in Tokenizer(drop_stopwords=False).tokens("the panel")

    def test_custom_stopwords(self):
        tok = Tokenizer(stopwords=frozenset({"panel"}))
        assert tok.tokens("panel pavilion") == ["pavilion"]

    def test_token_set_deduplicates_across_values(self):
        tok = Tokenizer()
        result = tok.token_set(["glass panel", "panel wood"])
        assert result == frozenset({"glass", "panel", "wood"})

    def test_duplicates_preserved_within_tokens(self):
        assert Tokenizer().tokens("panel panel") == ["panel", "panel"]

    def test_empty_string(self):
        assert Tokenizer().tokens("") == []
        assert Tokenizer().token_set([]) == frozenset()

    @given(st.text())
    def test_never_crashes_and_tokens_are_clean(self, text):
        for token in Tokenizer().tokens(text):
            assert token == token.lower()
            assert token not in DEFAULT_STOPWORDS
            assert len(token) >= 2 or token.isdigit()

    @given(st.text())
    def test_idempotent_on_own_output(self, text):
        tok = Tokenizer()
        once = tok.tokens(text)
        again = tok.tokens(" ".join(once))
        assert once == again
