"""Unit tests for the entity-description sources."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.reading.sources import from_records, read_csv, read_jsonl


class TestFromRecords:
    def test_uses_id_field(self):
        entities = list(from_records([{"id": "a", "name": "x"}]))
        assert entities[0].eid == "a"
        assert entities[0].attributes == (("name", "x"),)

    def test_sequential_ids_when_missing(self):
        entities = list(from_records([{"name": "x"}, {"name": "y"}]))
        assert [e.eid for e in entities] == [0, 1]

    def test_drops_empty_values(self):
        entities = list(from_records([{"id": 1, "a": "", "b": None, "c": "kept"}]))
        assert entities[0].attributes == (("c", "kept"),)

    def test_source_tagging(self):
        entities = list(from_records([{"id": 1, "a": "x"}], source="web"))
        assert entities[0].source == "web"


class TestReadCsv:
    def test_reads_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,name,price\n1,lamp,9\n2,chair,20\n")
        entities = list(read_csv(path))
        assert len(entities) == 2
        assert entities[0].attributes == (("name", "lamp"), ("price", "9"))

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("id\tname\n1\tlamp\n")
        entities = list(read_csv(path, delimiter="\t"))
        assert entities[0].attributes == (("name", "lamp"),)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            list(read_csv(path))


class TestReadJsonl:
    def test_reads_and_flattens(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text(
            '{"id": 1, "name": "lamp", "spec": {"w": 10, "h": 20}}\n'
            '{"id": 2, "tags": ["red", "small"]}\n'
        )
        entities = list(read_jsonl(path))
        attrs0 = dict(entities[0].attributes)
        assert attrs0["spec.w"] == "10"
        attrs1 = dict(entities[1].attributes)
        assert attrs1["tags"] == "red small"

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"id": 1, "a": "x"}\n\n{"id": 2, "a": "y"}\n')
        assert len(list(read_jsonl(path))) == 2

    def test_invalid_json_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1}\nnot-json\n')
        with pytest.raises(DatasetError, match="2"):
            list(read_jsonl(path))

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(DatasetError, match="object"):
            list(read_jsonl(path))
