"""Unit tests for profile building (f_dr substrate)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.reading.profiles import ProfileBuilder
from repro.types import EntityDescription


class TestProfileBuilder:
    def test_builds_tokens_from_standardized_values(self):
        builder = ProfileBuilder()
        e = EntityDescription.create(1, {"material": "Timber", "part": "Panels"})
        p = builder.build(e)
        assert "wood" in p.tokens
        assert "panel" in p.tokens
        assert "timber" not in p.tokens

    def test_keys_alias(self):
        p = ProfileBuilder().build(EntityDescription.create(1, {"a": "glass"}))
        assert p.keys == p.tokens

    def test_preserves_identity_and_source(self):
        e = EntityDescription.create(("x", 3), {"a": "glass"}, source="x")
        p = ProfileBuilder().build(e)
        assert p.eid == ("x", 3)
        assert p.source == "x"

    def test_cache_hit_returns_same_result(self):
        builder = ProfileBuilder()
        e1 = EntityDescription.create(1, {"a": "fiber glass"})
        e2 = EntityDescription.create(2, {"b": "fiber glass"})
        p1, p2 = builder.build(e1), builder.build(e2)
        assert p1.tokens == p2.tokens
        assert p1.attributes[0][1] == p2.attributes[0][1]

    def test_cache_eviction_keeps_results_correct(self):
        builder = ProfileBuilder(cache_size=2)
        values = ["alpha beta", "gamma delta", "epsilon zeta", "alpha beta"]
        for i, value in enumerate(values):
            p = builder.build(EntityDescription.create(i, {"a": value}))
            assert p.tokens == frozenset(value.split())

    @given(
        st.lists(
            st.tuples(st.text(max_size=12), st.text(max_size=30)),
            max_size=6,
        )
    )
    def test_tokens_always_subset_of_standardized_text(self, attributes):
        builder = ProfileBuilder()
        e = EntityDescription.create(0, attributes)
        p = builder.build(e)
        joined = " ".join(v for _, v in p.attributes)
        for token in p.tokens:
            assert token in joined
