"""Tests for dataset profiling statistics."""

from __future__ import annotations

import pytest

from repro.reading import profile_dataset
from repro.reading.stats import _gini
from repro.types import EntityDescription


def uniform_entities(n=20):
    return [
        EntityDescription.create(i, {"title": f"thing{i}", "year": "1999"})
        for i in range(n)
    ]


def heterogeneous_entities(n=20):
    return [
        EntityDescription.create(i, {f"attr_{i}": f"value{i} token{i}"})
        for i in range(n)
    ]


class TestGini:
    def test_uniform_is_zero_ish(self):
        assert _gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        assert _gini([0, 0, 0, 100]) > 0.7

    def test_empty(self):
        assert _gini([]) == 0.0
        assert _gini([0, 0]) == 0.0


class TestProfileDataset:
    def test_empty_collection(self):
        profile = profile_dataset([])
        assert profile.entities == 0
        assert profile.heterogeneity_index == 0.0

    def test_counts(self):
        profile = profile_dataset(uniform_entities(10))
        assert profile.entities == 10
        assert profile.distinct_attributes == 2
        assert profile.avg_attributes_per_entity == pytest.approx(2.0)

    def test_fixed_schema_has_low_heterogeneity(self):
        profile = profile_dataset(uniform_entities())
        assert profile.heterogeneity_index == 0.0
        assert profile.attribute_sparsity == pytest.approx(0.0)

    def test_schema_free_data_has_high_heterogeneity(self):
        profile = profile_dataset(heterogeneous_entities())
        assert profile.heterogeneity_index == 1.0
        assert profile.attribute_sparsity > 0.9

    def test_catalog_datasets_ordered_by_heterogeneity(self, tiny_dirty_dataset, tiny_clean_dataset):
        low = profile_dataset(tiny_dirty_dataset.entities)   # heterogeneity 0.2
        high = profile_dataset(tiny_clean_dataset.entities)  # heterogeneity 0.4
        assert high.heterogeneity_index > low.heterogeneity_index

    def test_summary_is_readable(self):
        text = profile_dataset(uniform_entities(5)).summary()
        assert "5 entities" in text
        assert "heterogeneity" in text


class TestCombineMany:
    def test_three_sources(self):
        from repro.core import combine_many

        sources = {
            name: [EntityDescription.create(i, {"a": f"{name}{i}"}) for i in range(2)]
            for name in ("x", "y", "z")
        }
        combined = list(combine_many(sources))
        assert len(combined) == 6
        assert {e.eid[0] for e in combined} == {"x", "y", "z"}

    def test_uneven_sources(self):
        from repro.core import combine_many

        sources = {
            "x": [EntityDescription.create(i, {"a": "v"}) for i in range(3)],
            "y": [EntityDescription.create(0, {"a": "v"})],
        }
        combined = list(combine_many(sources))
        assert len(combined) == 4

    def test_single_source_rejected(self):
        from repro.core import combine_many
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            list(combine_many({"x": []}))

    def test_multi_source_pipeline_matches_cross_source_only(self):
        from repro.classification import ThresholdClassifier
        from repro.core import StreamERConfig, StreamERPipeline, combine_many

        sources = {
            name: [
                EntityDescription.create(i, {"a": "shared tokens everywhere"})
                for i in range(2)
            ]
            for name in ("x", "y", "z")
        }
        pipeline = StreamERPipeline(
            StreamERConfig(
                alpha=100, beta=0.1, clean_clean=True,
                classifier=ThresholdClassifier(0.5),
            ),
            instrument=False,
        )
        pipeline.process_many(combine_many(sources))
        pairs = pipeline.cl.matches.pairs()
        assert pairs
        for i, j in pairs:
            assert i[0] != j[0]
