"""Unit tests for the token dictionary behind the interned kernel."""

from __future__ import annotations

import pickle
from array import array
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reading import TokenDictionary, pack_ids


class TestTokenDictionary:
    def test_ids_are_dense_and_first_seen_ordered(self):
        d = TokenDictionary()
        assert d.intern("wood") == 0
        assert d.intern("panel") == 1
        assert d.intern("pavilion") == 2
        assert len(d) == 3
        assert list(d) == ["wood", "panel", "pavilion"]

    def test_intern_is_idempotent(self):
        d = TokenDictionary()
        first = d.intern("glass")
        assert d.intern("glass") == first
        assert len(d) == 1

    def test_contains_and_lookup_do_not_assign(self):
        d = TokenDictionary()
        assert "wood" not in d
        assert d.lookup("wood") is None
        assert len(d) == 0
        d.intern("wood")
        assert "wood" in d
        assert d.lookup("wood") == 0

    def test_decode_roundtrip(self):
        d = TokenDictionary()
        tokens = ["a", "b", "c"]
        ids = [d.intern(t) for t in tokens]
        assert [d.decode(i) for i in ids] == tokens

    def test_decode_unknown_raises(self):
        d = TokenDictionary()
        with pytest.raises(IndexError):
            d.decode(0)
        with pytest.raises(IndexError):
            d.decode(-1)

    def test_intern_set_decode_set_roundtrip(self):
        d = TokenDictionary()
        tokens = frozenset({"wood", "panel", "pavilion"})
        ids = d.intern_set(tokens)
        assert isinstance(ids, frozenset)
        assert d.decode_set(ids) == tokens

    def test_id_space_is_exactly_range_len(self):
        d = TokenDictionary()
        for i in range(50):
            d.intern(f"tok{i}")
        assert sorted(d.lookup(t) for t in d) == list(range(len(d)))

    def test_concurrent_interning_stays_bijective(self):
        d = TokenDictionary()
        tokens = [f"tok{i % 100}" for i in range(2000)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            ids = list(pool.map(d.intern, tokens))
        assert len(d) == 100
        for token, tid in zip(tokens, ids):
            assert d.lookup(token) == tid
            assert d.decode(tid) == token


class TestPackIds:
    def test_sorted_compact_array(self):
        packed = pack_ids({5, 1, 3})
        assert isinstance(packed, array)
        assert packed.typecode == "I"
        assert list(packed) == [1, 3, 5]

    def test_empty(self):
        assert list(pack_ids(())) == []

    def test_wide_ids_fall_back_to_signed_64bit(self):
        packed = pack_ids({1, 1 << 33})
        assert packed.typecode == "q"
        assert list(packed) == [1, 1 << 33]

    def test_pickles_smaller_than_string_sets(self):
        tokens = frozenset(f"token_number_{i}" for i in range(30))
        d = TokenDictionary()
        packed = pack_ids(d.intern_set(tokens))
        assert len(pickle.dumps(packed)) < len(pickle.dumps(tokens)) / 2

    @given(st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=40))
    def test_roundtrips_any_id_set(self, ids):
        assert list(pack_ids(ids)) == sorted(ids)
