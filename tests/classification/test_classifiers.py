"""Unit tests for classification."""

from __future__ import annotations

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.types import Comparison, Profile, ScoredComparison


def scored(i, j, sim):
    a = Profile(eid=i, attributes=(), tokens=frozenset())
    b = Profile(eid=j, attributes=(), tokens=frozenset())
    return ScoredComparison(Comparison(a, b), similarity=sim)


class TestThresholdClassifier:
    def test_above_threshold_is_match(self):
        match = ThresholdClassifier(0.5).classify(scored(1, 2, 0.8))
        assert match is not None
        assert match.key() == (1, 2)
        assert match.similarity == 0.8

    def test_at_threshold_is_match(self):
        assert ThresholdClassifier(0.5).classify(scored(1, 2, 0.5)) is not None

    def test_below_threshold_is_none(self):
        assert ThresholdClassifier(0.5).classify(scored(1, 2, 0.49)) is None


class TestOracleClassifier:
    def test_true_pair_matches_regardless_of_similarity(self):
        oracle = OracleClassifier.from_pairs([(2, 1)])
        assert oracle.classify(scored(1, 2, 0.0)) is not None

    def test_false_pair_never_matches(self):
        oracle = OracleClassifier.from_pairs([(1, 2)])
        assert oracle.classify(scored(1, 3, 1.0)) is None

    def test_pairs_canonicalized_both_directions(self):
        oracle = OracleClassifier.from_pairs([(5, 4)])
        assert oracle.classify(scored(4, 5, 0.1)) is not None
        assert oracle.classify(scored(5, 4, 0.1)) is not None

    def test_empty_truth(self):
        oracle = OracleClassifier.from_pairs([])
        assert oracle.classify(scored(1, 2, 1.0)) is None

    def test_tuple_identifiers(self):
        oracle = OracleClassifier.from_pairs([(("x", 1), ("y", 2))])
        assert oracle.classify(scored(("y", 2), ("x", 1), 0.0)) is not None
