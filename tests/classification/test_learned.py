"""Tests for the learned match classifier."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.classification import (
    FEATURE_NAMES,
    LearnedClassifier,
    LogisticMatcher,
    ThresholdClassifier,
    pair_features,
)
from repro.errors import ConfigurationError
from repro.reading.profiles import ProfileBuilder
from repro.types import Comparison, Profile, ScoredComparison


def profile(eid, tokens, attrs=()):
    return Profile(eid=eid, attributes=tuple(attrs), tokens=frozenset(tokens))


def labeled_training_data(n_pairs=150, seed=3):
    """Synthetic labeled pairs: matches share most tokens, others few."""
    rng = random.Random(seed)
    vocab = [f"tok{i}" for i in range(300)]
    triples = []
    for index in range(n_pairs):
        base = set(rng.sample(vocab, 8))
        if index % 2 == 0:  # match: perturb lightly
            other = set(base)
            other.discard(next(iter(other)))
            other.add(rng.choice(vocab))
            triples.append((profile(f"a{index}", base), profile(f"b{index}", other), True))
        else:  # non-match: small random overlap
            other = set(rng.sample(vocab, 8))
            triples.append((profile(f"a{index}", base), profile(f"b{index}", other), False))
    return triples


class TestPairFeatures:
    def test_shape_and_names_agree(self):
        features = pair_features(profile(1, {"a"}), profile(2, {"a", "b"}))
        assert features.shape == (len(FEATURE_NAMES),)

    def test_identical_profiles_strong_signal(self):
        a = profile(1, {"x", "y", "z"})
        b = profile(2, {"x", "y", "z"})
        features = pair_features(a, b)
        assert features[0] == 1.0  # jaccard
        assert features[5] == 1.0  # size ratio

    def test_disjoint_profiles_weak_signal(self):
        features = pair_features(profile(1, {"x"}), profile(2, {"y"}))
        assert features[0] == 0.0
        assert features[6] == 0.0  # log1p(0)


class TestLogisticMatcher:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogisticMatcher(learning_rate=0)
        with pytest.raises(ConfigurationError):
            LogisticMatcher(epochs=0)
        with pytest.raises(ConfigurationError):
            LogisticMatcher(l2=-1)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError, match="not trained"):
            LogisticMatcher().predict_proba(np.zeros((1, 7)))

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).random((10, 3))
        with pytest.raises(ConfigurationError, match="both classes"):
            LogisticMatcher().fit(X, [1] * 10)

    def test_learns_linearly_separable_data(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        matcher = LogisticMatcher(epochs=500).fit(X, y)
        predictions = (matcher.predict_proba(X) > 0.5).astype(int)
        assert (predictions == y).mean() > 0.95


class TestLearnedClassifier:
    def test_train_requires_data(self):
        with pytest.raises(ConfigurationError):
            LearnedClassifier.train([])

    def test_separates_matches_from_non_matches(self):
        triples = labeled_training_data()
        classifier = LearnedClassifier.train(triples)
        correct = 0
        for left, right, is_match in triples:
            scored = ScoredComparison(Comparison(left, right), similarity=0.0)
            predicted = classifier.classify(scored) is not None
            correct += predicted == is_match
        assert correct / len(triples) > 0.9

    def test_match_similarity_is_probability(self):
        classifier = LearnedClassifier.train(labeled_training_data())
        a = profile("x", {"tok1", "tok2", "tok3"})
        scored = ScoredComparison(Comparison(a, profile("y", {"tok1", "tok2", "tok3"})), 0.0)
        match = classifier.classify(scored)
        assert match is not None
        assert 0.5 <= match.similarity <= 1.0

    def test_usable_in_pipeline(self, tiny_dirty_dataset):
        from repro.core import StreamERConfig, StreamERPipeline

        ds = tiny_dirty_dataset
        builder = ProfileBuilder()
        by_id = {e.eid: builder.build(e) for e in ds.entities}
        truth = set(ds.ground_truth)
        # Label a small training sample: true pairs + random negatives.
        rng = random.Random(5)
        ids = sorted(by_id)
        positives = [
            (by_id[i], by_id[j], True) for i, j in list(truth)[:80]
        ]
        negatives = []
        while len(negatives) < 80:
            i, j = rng.sample(ids, 2)
            if tuple(sorted((i, j))) not in truth:
                negatives.append((by_id[i], by_id[j], False))
        classifier = LearnedClassifier.train(positives + negatives)

        pipeline = StreamERPipeline(
            StreamERConfig(
                alpha=StreamERConfig.alpha_for(len(ds), 0.05),
                beta=0.05,
                classifier=classifier,
            ),
            instrument=False,
        )
        result = pipeline.process_many(ds.stream())
        found = result.match_pairs
        assert found  # the learned model finds duplicates
        precision = len(found & {tuple(sorted(p)) for p in truth}) / len(found)
        assert precision > 0.8
