"""WAL format regressions: torn tails, corruption, duplicates.

Every fixture here is a hand-damaged segment: the scanner must classify
a write the crash interrupted (torn tail → clamp to the valid prefix)
differently from damage with committed records after it (corruption →
fail loudly), and recovery must replay exactly to the last commit.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.durability.recovery import recover
from repro.durability.wal import (
    WAL_MAGIC,
    WAL_VERSION,
    CrashPoint,
    WalWriter,
    encode_record,
    header_size,
    scan_wal,
    segment_path,
)
from repro.errors import (
    ConfigurationError,
    RecoveryError,
    SimulatedCrash,
    WalCorruptionError,
)


def entity_records(i: int) -> list[dict]:
    """The minimal WAL trace of one fully processed entity."""
    return [
        {"op": "token", "t": f"tok{i}"},
        {
            "op": "profile_put",
            "p": {
                "eid": i,
                "attributes": [["name", f"tok{i}"]],
                "tokens": [f"tok{i}"],
                "source": None,
                "interned": False,
            },
        },
        {"op": "block_add", "k": f"tok{i}", "eid": i},
        {"op": "commit", "seq": i, "eid": i, "n": i + 1},
    ]


def write_segment(path, records, epoch=0):
    writer = WalWriter(path, epoch=epoch, fsync="never")
    for record in records:
        writer.append(record)
    writer.close()
    return path


@pytest.fixture()
def segment(tmp_path):
    """A clean segment holding three committed entities."""
    records = [r for i in range(3) for r in entity_records(i)]
    path = segment_path(tmp_path, 0)
    write_segment(path, records)
    return path, records


class TestScan:
    def test_round_trip(self, segment):
        path, records = segment
        scan = scan_wal(path)
        assert scan.records == records
        assert not scan.torn_tail
        assert scan.tail_error is None
        assert scan.valid_bytes == path.stat().st_size
        assert scan.offsets[0] == header_size()
        assert scan.offsets == sorted(scan.offsets)

    def test_empty_segment_is_valid(self, tmp_path):
        path = segment_path(tmp_path, 0)
        WalWriter(path, epoch=0, fsync="never").close()
        scan = scan_wal(path)
        assert scan.records == []
        assert not scan.torn_tail

    def test_epoch_survives_in_header(self, tmp_path):
        path = segment_path(tmp_path, 7)
        write_segment(path, entity_records(0), epoch=7)
        assert scan_wal(path).epoch == 7

    def test_non_wal_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-wal.log"
        path.write_bytes(b"definitely not a WAL segment")
        with pytest.raises(WalCorruptionError, match="not a repro WAL"):
            scan_wal(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.log"
        path.write_bytes(WAL_MAGIC + struct.pack("<II", WAL_VERSION + 1, 0))
        with pytest.raises(WalCorruptionError, match="version"):
            scan_wal(path)


class TestTornTail:
    def test_truncated_record_header(self, segment):
        path, records = segment
        data = path.read_bytes()
        scan = scan_wal(path)
        # Leave 3 bytes of the next record header after the prefix.
        path.write_bytes(data[: scan.offsets[-1]] + data[scan.offsets[-1]:][:3])
        clamped = scan_wal(path)
        assert clamped.torn_tail
        assert "truncated record header" in clamped.tail_error
        assert clamped.records == records[:-1]
        assert clamped.valid_bytes == scan.offsets[-1]

    def test_truncated_payload(self, segment):
        path, records = segment
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # cut the final payload short
        scan = scan_wal(path)
        assert scan.torn_tail
        assert "remain" in scan.tail_error
        assert scan.records == records[:-1]

    def test_absurd_length_claim_is_torn(self, tmp_path):
        path = segment_path(tmp_path, 0)
        write_segment(path, entity_records(0))
        with path.open("ab") as handle:
            handle.write(struct.pack("<II", 2**31, 0) + b"xx")
        scan = scan_wal(path)
        assert scan.torn_tail
        assert scan.records == entity_records(0)

    def test_flipped_checksum_byte_on_final_record_is_torn(self, segment):
        path, records = segment
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # damage the last payload byte
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert scan.torn_tail
        assert "checksum mismatch in final record" in scan.tail_error
        assert scan.records == records[:-1]


class TestCorruption:
    def damage_first_record(self, path):
        data = bytearray(path.read_bytes())
        data[header_size() + 8] ^= 0xFF  # first payload byte of record 0
        path.write_bytes(bytes(data))

    def test_flipped_byte_mid_log_raises_under_strict(self, segment):
        path, _ = segment
        self.damage_first_record(path)
        with pytest.raises(WalCorruptionError, match="mid-log corruption"):
            scan_wal(path)

    def test_non_strict_clamps_at_the_damage(self, segment):
        path, _ = segment
        self.damage_first_record(path)
        scan = scan_wal(path, strict=False)
        assert scan.torn_tail
        assert scan.records == []

    def test_checksummed_garbage_payload_raises(self, tmp_path):
        path = segment_path(tmp_path, 0)
        payload = b"\xff\xfenot json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        path.write_bytes(WAL_MAGIC + struct.pack("<II", WAL_VERSION, 0) + frame)
        with pytest.raises(WalCorruptionError, match="fails to decode"):
            scan_wal(path)


class TestWriter:
    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync"):
            WalWriter(tmp_path / "w.log", epoch=0, fsync="sometimes")

    def test_resume_truncates_the_discarded_tail(self, segment):
        path, records = segment
        scan = scan_wal(path)
        cut = scan.offsets[-2]  # drop the last two records
        writer = WalWriter(path, epoch=0, fsync="never", resume_offset=cut)
        writer.append({"op": "blacklist_add", "k": "new"})
        writer.close()
        rescan = scan_wal(path)
        assert rescan.records == records[:-2] + [{"op": "blacklist_add", "k": "new"}]

    def test_crash_point_kills_and_stays_dead(self, tmp_path):
        path = segment_path(tmp_path, 0)
        writer = WalWriter(
            path, epoch=0, fsync="never", crash_point=CrashPoint(at_record=2)
        )
        writer.append({"op": "token", "t": "a"})
        with pytest.raises(SimulatedCrash, match="record 2"):
            writer.append({"op": "token", "t": "b"})
        with pytest.raises(SimulatedCrash, match="dead"):
            writer.append({"op": "token", "t": "c"})
        assert scan_wal(path).records == [{"op": "token", "t": "a"}]

    def test_torn_bytes_leaves_a_genuinely_torn_tail(self, tmp_path):
        path = segment_path(tmp_path, 0)
        writer = WalWriter(
            path,
            epoch=0,
            fsync="never",
            crash_point=CrashPoint(at_record=1, torn_bytes=5),
        )
        with pytest.raises(SimulatedCrash):
            writer.append({"op": "token", "t": "a"})
        assert path.stat().st_size == header_size() + 5
        scan = scan_wal(path)
        assert scan.torn_tail
        assert scan.records == []

    def test_crash_index_spans_resumed_counts(self, tmp_path):
        # records_before threads the global append index across rollovers.
        path = segment_path(tmp_path, 1)
        writer = WalWriter(
            path,
            epoch=1,
            fsync="never",
            crash_point=CrashPoint(at_record=5),
            records_before=4,
        )
        with pytest.raises(SimulatedCrash):
            writer.append({"op": "token", "t": "a"})


class TestCrashPointValidation:
    def test_at_record_is_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            CrashPoint(at_record=0)

    def test_torn_bytes_cannot_be_negative(self):
        with pytest.raises(ConfigurationError, match="negative"):
            CrashPoint(at_record=1, torn_bytes=-1)


class TestRecoveryFromFixtures:
    def test_replays_to_the_last_commit(self, tmp_path):
        records = [r for i in range(2) for r in entity_records(i)]
        # A third entity whose commit never made it to the log.
        records += entity_records(2)[:-1]
        write_segment(segment_path(tmp_path, 0), records)
        state = recover(tmp_path)
        assert state.entities_processed == 2
        assert state.next_seq == 2
        assert state.records_discarded == 3
        assert len(state.backend.profiles) == 2
        assert "tok2" not in state.backend.blocks

    def test_duplicate_records_recover_to_the_consistent_state(self, tmp_path):
        records = entity_records(0)
        # A retried append: the same mutations and the same commit seq
        # land twice.  Mutations are idempotent; the commit is a skip.
        records += entity_records(0)
        records += entity_records(1)
        write_segment(segment_path(tmp_path, 0), records)
        state = recover(tmp_path)
        assert state.entities_processed == 2
        assert state.next_seq == 2
        assert state.records_skipped == len(entity_records(0))
        assert len(state.backend.profiles) == 2
        assert state.backend.blocks.block("tok0") == [0]

    def test_commit_sequence_gap_raises(self, tmp_path):
        records = entity_records(0)
        skipped = entity_records(2)  # seq jumps 0 -> 2
        write_segment(segment_path(tmp_path, 0), records + skipped)
        with pytest.raises(RecoveryError, match="sequence gap"):
            recover(tmp_path)

    def test_unknown_op_raises(self, tmp_path):
        records = [{"op": "frobnicate"}] + entity_records(0)
        write_segment(segment_path(tmp_path, 0), records)
        with pytest.raises(RecoveryError, match="unknown op"):
            recover(tmp_path)

    def test_torn_tail_is_clamped_and_reported(self, tmp_path):
        path = segment_path(tmp_path, 0)
        write_segment(path, [r for i in range(2) for r in entity_records(i)])
        with path.open("ab") as handle:
            handle.write(encode_record({"op": "token", "t": "torn"})[:6])
        state = recover(tmp_path)
        assert state.torn_tail
        assert state.entities_processed == 2
        assert state.resume_offset == scan_wal(path).valid_bytes

    def test_missing_middle_segment_raises(self, tmp_path):
        write_segment(segment_path(tmp_path, 0), entity_records(0))
        write_segment(segment_path(tmp_path, 2), entity_records(1), epoch=2)
        with pytest.raises(RecoveryError, match="broken WAL segment chain"):
            recover(tmp_path)

    def test_header_epoch_must_match_the_name(self, tmp_path):
        write_segment(segment_path(tmp_path, 0), entity_records(0), epoch=3)
        with pytest.raises(RecoveryError, match="named for epoch"):
            recover(tmp_path)

    def test_damage_before_the_final_segment_raises(self, tmp_path):
        path0 = segment_path(tmp_path, 0)
        write_segment(path0, entity_records(0))
        data = path0.read_bytes()
        path0.write_bytes(data[:-4])
        write_segment(segment_path(tmp_path, 1), entity_records(1), epoch=1)
        # Without a snapshot at epoch 1, recovery must replay epoch 0 —
        # and its damage is unrecoverable data loss, not a torn tail.
        with pytest.raises(RecoveryError, match="non-final WAL segment"):
            recover(tmp_path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="does not exist"):
            recover(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no WAL segment"):
            recover(tmp_path)
