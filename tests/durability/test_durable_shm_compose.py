"""Durability over shared memory: ``DurableBackend(SharedMemoryBackend())``.

Durability is the *outer* decorator — its logging proxies journal every
mutation and call straight through to the inner stores, so where the
token columns physically live is invisible to the WAL.  These tests pin
that composition: the shm capability surface stays reachable through the
decorator (so the multiprocess executor still negotiates ``"shm"``
dispatch), journaling is unaffected, a crashed run resumes to the exact
match set, and the shared segments never leak — crash included.

Recovery rebuilds into an :class:`~repro.core.backends.InMemoryBackend`
(the WAL is the source of truth, not the segments, which die with the
crashed process); the resumed run may continue on plain memory or on a
fresh shm backend — state content, not representation, is what resumes.
"""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.backends import (
    SharedMemoryBackend,
    active_shm_segments,
    backend_capabilities,
)
from repro.core.backends.durable import DurabilityConfig, DurableBackend
from repro.datasets import DatasetSpec, generate
from repro.durability.recovery import resume_pipeline
from repro.errors import SimulatedCrash
from repro.parallel import MultiprocessERPipeline
from repro.parallel.faults import CrashPoint


@pytest.fixture(scope="module")
def dataset():
    return generate(
        DatasetSpec(
            name="durable-shm", kind="dirty", size=80, matches=55,
            avg_attributes=4.0, heterogeneity=0.2, vocab_rare=2000, seed=11,
        )
    )


def interned_config(dataset) -> StreamERConfig:
    return StreamERConfig.interned(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )


def match_set(backend) -> set:
    return {(m.key(), m.similarity) for m in backend.matches.matches()}


class TestComposition:
    def test_capabilities_reach_through_the_decorator(self, dataset, tmp_path):
        with SharedMemoryBackend() as inner:
            durable = DurableBackend(
                inner, DurabilityConfig(wal_dir=str(tmp_path / "wal"))
            )
            assert SharedMemoryBackend.TOKEN_COLUMNS in backend_capabilities(durable)
            assert durable.layout() == inner.layout()
            assert durable.shm_bytes() == inner.shm_bytes()
            durable.close()

    def test_sequential_journal_over_shm(self, dataset, tmp_path):
        plain = StreamERPipeline(interned_config(dataset), instrument=False)
        plain.process_many(dataset.stream())

        inner = SharedMemoryBackend()
        prefix = inner.name
        durable = StreamERPipeline(
            interned_config(dataset),
            instrument=False,
            backend=inner,
            wal_dir=str(tmp_path / "wal"),
            checkpoint_every=13,
        )
        durable.process_many(dataset.stream())
        durable.close()
        assert match_set(durable.backend) == match_set(plain.backend)
        assert durable.backend.wal_records_seen > 0
        # The journaled dictionary proxies to the shared one: every token
        # the run interned is decodable from the shm column.
        assert len(durable.backend.dictionary) == len(inner.dictionary)
        inner.unlink()
        assert active_shm_segments(prefix) == []

    def test_multiprocess_still_negotiates_shm_dispatch(self, dataset, tmp_path):
        reference = MultiprocessERPipeline(
            interned_config(dataset), workers=2, chunk_size=32
        )
        reference.run(dataset.stream())
        expected = match_set(reference.backend)
        reference.close()

        with SharedMemoryBackend() as inner:
            durable = DurableBackend(
                inner, DurabilityConfig(wal_dir=str(tmp_path / "wal"))
            )
            mp = MultiprocessERPipeline(
                interned_config(dataset), workers=2, chunk_size=32, backend=durable
            )
            result = mp.run(dataset.stream())
            assert mp.dispatch_mode == "shm"
            assert match_set(durable) == expected
            assert result.items_failed == 0
            assert durable.wal_records_seen > 0
            mp.close()
            durable.close()


class TestCrashResume:
    def test_resume_equals_uninterrupted(self, dataset, tmp_path):
        entities = list(dataset.stream())
        uninterrupted = StreamERPipeline(interned_config(dataset), instrument=False)
        uninterrupted.process_many(entities)
        expected = match_set(uninterrupted.backend)

        inner = SharedMemoryBackend()
        prefix = inner.name
        wal_dir = tmp_path / "crash"
        crashing = StreamERPipeline(
            interned_config(dataset),
            instrument=False,
            backend=inner,
            wal_dir=str(wal_dir),
            checkpoint_every=13,
            crash_point=CrashPoint(at_record=120),
        )
        with pytest.raises(SimulatedCrash):
            crashing.process_many(entities)
        # The crashed creator's segments are reclaimed; the WAL is the
        # durable copy.
        inner.unlink()
        assert active_shm_segments(prefix) == []

        resumed = resume_pipeline(
            interned_config(dataset), str(wal_dir), instrument=False
        )
        skip = resumed.entities_processed
        assert 0 < skip < len(entities)
        resumed.process_many(entities[skip:])
        resumed.close()
        assert match_set(resumed.backend) == expected
