"""Crash-injection harness: kill the run at seeded WAL appends, resume,
and demand the final state is bit-identical to an uninterrupted run.

The sweep covers clean crashes (between records) and torn writes (a
record cut mid-frame on disk), crashes during the resumed run itself,
and the cooperating machinery: checkpoint retention, configuration
fingerprints, and the durability invariants.  The seeded-random sweep
with shrinking lives in the ``resume-equals-uninterrupted`` metamorphic
relation, exercised here at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.datasets import DatasetSpec, generate
from repro.durability.codec import state_digest
from repro.durability.recovery import recover, resume_pipeline
from repro.durability.snapshot import list_snapshots
from repro.durability.wal import segment_path
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    RecoveryError,
    SimulatedCrash,
)
from repro.invariants import InvariantChecker
from repro.invariants.checks import StateView, check_durability_layout
from repro.parallel.faults import CrashPoint
from repro.proptest import run_suite

CHECKPOINT_EVERY = 13
SEED = 2021


def match_set(pipeline) -> set:
    return {(m.key(), m.similarity) for m in pipeline.backend.matches.matches()}


@dataclass
class Baseline:
    config: StreamERConfig
    entities: list
    matches: set
    digest: str
    total_records: int


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> Baseline:
    dataset = generate(
        DatasetSpec(
            name="crash-sweep", kind="dirty", size=60, matches=45,
            avg_attributes=4.0, heterogeneity=0.2, vocab_rare=2000, seed=11,
        )
    )
    entities = list(dataset.stream())
    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(entities), 0.05),
        beta=0.05,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )
    plain = StreamERPipeline(config, instrument=False)
    plain.process_many(entities)

    wal_dir = tmp_path_factory.mktemp("uninterrupted")
    durable = StreamERPipeline(
        config,
        instrument=False,
        wal_dir=str(wal_dir),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    durable.process_many(entities)
    durable.close()
    assert match_set(durable) == match_set(plain)
    return Baseline(
        config=config,
        entities=entities,
        matches=match_set(plain),
        digest=state_digest(durable.backend.inner),
        total_records=durable.backend.wal_records_seen,
    )


def crash_run(baseline: Baseline, wal_dir, at_record, torn_bytes=None):
    pipeline = StreamERPipeline(
        baseline.config,
        instrument=False,
        wal_dir=str(wal_dir),
        checkpoint_every=CHECKPOINT_EVERY,
        crash_point=CrashPoint(at_record=at_record, torn_bytes=torn_bytes),
    )
    with pytest.raises(SimulatedCrash):
        pipeline.process_many(baseline.entities)
    return pipeline


def resume_and_finish(baseline: Baseline, wal_dir):
    resumed = resume_pipeline(baseline.config, str(wal_dir), instrument=False)
    skip = resumed.entities_processed
    resumed.process_many(baseline.entities[skip:])
    resumed.close()
    return resumed


class TestCrashSweep:
    def test_crash_at_seeded_points_resumes_bit_identical(self, baseline, tmp_path):
        total = baseline.total_records
        scenarios = sorted(
            {(1, None), (2, None), (total // 4, None), (total // 2, None),
             (total - 1, None), (total, None),
             (total // 3, 1), (total // 2, 3), (total, 6)},
            key=lambda s: (s[0], s[1] or 0),
        )
        for index, (at_record, torn_bytes) in enumerate(scenarios):
            wal_dir = tmp_path / f"crash-{index}"
            crash_run(baseline, wal_dir, at_record, torn_bytes)
            resumed = resume_and_finish(baseline, wal_dir)
            label = f"crash at record {at_record} (torn_bytes={torn_bytes})"
            assert match_set(resumed) == baseline.matches, label
            assert state_digest(resumed.backend.inner) == baseline.digest, label

    def test_crash_during_the_resumed_run_survives_too(self, baseline, tmp_path):
        wal_dir = tmp_path / "double-crash"
        crash_run(baseline, wal_dir, baseline.total_records // 2, torn_bytes=2)
        # The resumed run dies as well, mid-write, before finishing.
        resumed = resume_pipeline(
            baseline.config,
            str(wal_dir),
            instrument=False,
            crash_point=CrashPoint(at_record=40, torn_bytes=4),
        )
        skip = resumed.entities_processed
        with pytest.raises(SimulatedCrash):
            resumed.process_many(baseline.entities[skip:])
        final = resume_and_finish(baseline, wal_dir)
        assert match_set(final) == baseline.matches
        assert state_digest(final.backend.inner) == baseline.digest

    def test_pipeline_is_dead_after_the_injected_crash(self, baseline, tmp_path):
        pipeline = crash_run(baseline, tmp_path / "dead", at_record=50)
        with pytest.raises(SimulatedCrash, match="dead"):
            pipeline.process(baseline.entities[-1])

    def test_resume_after_clean_shutdown_is_a_no_op_replay(self, baseline, tmp_path):
        wal_dir = tmp_path / "clean"
        durable = StreamERPipeline(
            baseline.config,
            instrument=False,
            wal_dir=str(wal_dir),
            checkpoint_every=CHECKPOINT_EVERY,
        )
        durable.process_many(baseline.entities)
        durable.close()
        resumed = resume_pipeline(baseline.config, str(wal_dir), instrument=False)
        assert resumed.entities_processed == len(baseline.entities)
        assert match_set(resumed) == baseline.matches
        assert state_digest(resumed.backend.inner) == baseline.digest
        resumed.close()


class TestProptestSweep:
    def test_relation_sweep_at_fixed_seed(self):
        report = run_suite(
            seed=SEED, examples=2, names=["resume-equals-uninterrupted"]
        )
        assert report.ok, [f.describe() for f in report.failures()]


class TestRunDirectoryDiscipline:
    def test_fresh_run_refuses_an_existing_run_directory(self, baseline, tmp_path):
        wal_dir = tmp_path / "occupied"
        crash_run(baseline, wal_dir, at_record=10)
        with pytest.raises(ConfigurationError, match="already holds"):
            StreamERPipeline(
                baseline.config, instrument=False, wal_dir=str(wal_dir)
            )

    def test_resume_requires_wal_dir(self, baseline):
        with pytest.raises(ConfigurationError, match="wal_dir"):
            StreamERPipeline(baseline.config, instrument=False, resume=True)

    def test_fingerprint_mismatch_refuses_to_resume(self, baseline, tmp_path):
        wal_dir = tmp_path / "pinned"
        crash_run(baseline, wal_dir, at_record=30)
        other = StreamERConfig(
            alpha=baseline.config.alpha + 5,
            beta=baseline.config.beta,
            classifier=baseline.config.classifier,
        )
        with pytest.raises(RecoveryError, match="fingerprint"):
            resume_pipeline(other, str(wal_dir), instrument=False)

    def test_checkpoint_retention_bounds_the_directory(self, baseline, tmp_path):
        wal_dir = tmp_path / "retention"
        durable = StreamERPipeline(
            baseline.config,
            instrument=False,
            wal_dir=str(wal_dir),
            checkpoint_every=10,
        )
        durable.process_many(baseline.entities)
        durable.close()
        epochs = [epoch for epoch, _ in list_snapshots(wal_dir)]
        assert len(epochs) == 2  # keep_snapshots default
        assert epochs[-1] == durable.backend.epoch
        segments = sorted(
            int(p.stem.removeprefix("wal-")) for p in wal_dir.glob("wal-*.log")
        )
        assert segments == list(range(epochs[0], epochs[-1] + 1))
        # And the bounded directory still recovers the full state.
        assert state_digest(recover(wal_dir).backend) == baseline.digest


class TestDurabilityInvariants:
    def test_checked_durable_run_is_violation_free(self, baseline, tmp_path):
        checker = InvariantChecker(mode="raise", state_every=20)
        durable = StreamERPipeline(
            baseline.config,
            instrument=False,
            checker=checker,
            wal_dir=str(tmp_path / "checked"),
            checkpoint_every=CHECKPOINT_EVERY,
        )
        durable.process_many(baseline.entities)  # raises on any violation
        durable.close()

    def test_layout_invariant_catches_a_missing_segment(self, baseline, tmp_path):
        wal_dir = tmp_path / "holey"
        durable = StreamERPipeline(
            baseline.config,
            instrument=False,
            wal_dir=str(wal_dir),
            checkpoint_every=10,
        )
        durable.process_many(baseline.entities)
        segment_path(wal_dir, durable.backend.epoch).unlink()
        view = StateView(config=baseline.config, backend=durable.backend)
        with pytest.raises(InvariantViolation, match="missing"):
            check_durability_layout(view)
        durable.close()
