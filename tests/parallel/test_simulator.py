"""Tests for the discrete-event pipeline simulator."""

from __future__ import annotations

import pytest

from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel import (
    PipelineSimulator,
    ServiceModel,
    SimulatorConfig,
    allocate_processes,
    paper_example_times,
    simulate_speedup,
)


def service(cv: float = 0.0, scale: float = 1e-4) -> ServiceModel:
    times = paper_example_times()
    total = sum(times.values())
    means = {k: v / total * scale * len(times) for k, v in times.items()}
    return ServiceModel(mean_seconds=means, cv=cv, spike_probability=0.0)


class TestServiceModel:
    def test_requires_all_stages(self):
        with pytest.raises(ConfigurationError):
            ServiceModel(mean_seconds={"dr": 1.0})

    def test_sample_is_deterministic(self):
        model = service(cv=1.0)
        assert model.sample(3, "co") == model.sample(3, "co")

    def test_cv_zero_returns_mean(self):
        model = service(cv=0.0)
        assert model.sample(5, "cc") == pytest.approx(model.mean_seconds["cc"])

    def test_zero_mean_stage(self):
        means = {s: 0.001 for s in STAGE_ORDER}
        means["bg"] = 0.0
        model = ServiceModel(mean_seconds=means)
        assert model.sample(1, "bg") == 0.0

    def test_spikes_increase_some_samples(self):
        means = {s: 0.001 for s in STAGE_ORDER}
        spiky = ServiceModel(mean_seconds=means, cv=0.0, spike_probability=0.5, spike_factor=10.0)
        samples = [spiky.sample(i, "co") for i in range(200)]
        assert any(s > 0.005 for s in samples)
        assert any(s <= 0.0011 for s in samples)

    def test_sequential_makespan_sums_everything(self):
        model = service(cv=0.0)
        expected = model.mean_total() * 10
        assert model.sequential_makespan(10) == pytest.approx(expected, rel=1e-6)


class TestSimulatorBasics:
    def test_single_item_latency_is_total_service(self):
        model = service(cv=0.0)
        sim = PipelineSimulator(
            allocate_processes(model.mean_seconds, 8),
            model,
            SimulatorConfig(comm_overhead=0.0),
        )
        result = sim.run_batch(1)
        assert result.makespan == pytest.approx(model.mean_total(), rel=1e-6)
        assert result.latencies[0] == pytest.approx(model.mean_total(), rel=1e-6)

    def test_all_items_complete(self):
        model = service(cv=1.0)
        sim = PipelineSimulator(allocate_processes(model.mean_seconds, 12), model)
        result = sim.run_batch(50)
        assert result.admitted == 50
        assert len(result.completion_times) == 50

    def test_pipelining_beats_sequential(self):
        model = service(cv=0.0)
        speedup, _ = simulate_speedup(
            model, 8, n_items=200, config=SimulatorConfig(comm_overhead=0.0)
        )
        assert speedup > 1.5  # eight overlapping stages

    def test_invalid_rate_rejected(self):
        model = service()
        sim = PipelineSimulator(allocate_processes(model.mean_seconds, 8), model)
        with pytest.raises(ConfigurationError):
            sim.run_stream(10, rate=0)

    def test_missing_allocation_stage_rejected(self):
        model = service()
        with pytest.raises(ConfigurationError):
            PipelineSimulator({"dr": 1}, model)


class TestClosedFormValidation:
    """Deterministic cases with known exact makespans."""

    def test_pipeline_makespan_formula(self):
        """With deterministic service, one worker per stage, no overhead,
        and ample buffers: makespan = Σ stage times + (n−1) · max stage time."""
        from repro.core.stages import STAGE_ORDER

        means = {s: 1e-4 * (i + 1) for i, s in enumerate(STAGE_ORDER)}
        model = ServiceModel(mean_seconds=means, cv=0.0, spike_probability=0.0)
        sim = PipelineSimulator(
            {s: 1 for s in STAGE_ORDER},
            model,
            SimulatorConfig(comm_overhead=0.0, buffer_capacity=1000, cores=16),
        )
        n = 25
        result = sim.run_batch(n)
        expected = sum(means.values()) + (n - 1) * max(means.values())
        assert result.makespan == pytest.approx(expected, rel=1e-9)

    def test_uniform_stage_two_workers_halve_bottleneck(self):
        from repro.core.stages import STAGE_ORDER

        means = {s: 1e-5 for s in STAGE_ORDER}
        means["co"] = 8e-4
        model = ServiceModel(mean_seconds=means, cv=0.0, spike_probability=0.0)
        allocation = {s: 1 for s in STAGE_ORDER}
        one = PipelineSimulator(
            allocation, model, SimulatorConfig(comm_overhead=0.0, buffer_capacity=1000)
        ).run_batch(60)
        allocation2 = dict(allocation, co=2)
        two = PipelineSimulator(
            allocation2, model, SimulatorConfig(comm_overhead=0.0, buffer_capacity=1000)
        ).run_batch(60)
        # The bottleneck dominates the makespan; doubling its workers
        # should roughly halve the run.
        assert two.makespan == pytest.approx(one.makespan / 2, rel=0.1)

    def test_core_cap_serializes_everything(self):
        """With a single core, the parallel run degenerates to sequential."""
        from repro.core.stages import STAGE_ORDER

        means = {s: 1e-4 for s in STAGE_ORDER}
        model = ServiceModel(mean_seconds=means, cv=0.0, spike_probability=0.0)
        sim = PipelineSimulator(
            {s: 2 for s in STAGE_ORDER},
            model,
            SimulatorConfig(comm_overhead=0.0, buffer_capacity=1000, cores=1),
        )
        result = sim.run_batch(10)
        assert result.makespan == pytest.approx(
            model.sequential_makespan(10), rel=1e-9
        )


class TestSpeedupPhenomena:
    """The Figure 11 phenomena, at reduced scale for test speed."""

    def test_more_processes_help_until_core_cap(self):
        model = service(cv=0.5)
        cfg = SimulatorConfig(comm_overhead=0.05 * model.mean_total())
        s8, _ = simulate_speedup(model, 8, n_items=300, config=cfg)
        s19, _ = simulate_speedup(model, 19, n_items=300, config=cfg)
        assert s19 > s8

    def test_speedup_plateaus_past_cores(self):
        model = service(cv=0.5)
        cfg = SimulatorConfig(comm_overhead=0.05 * model.mean_total(), cores=16)
        s19, _ = simulate_speedup(model, 19, n_items=300, config=cfg)
        s25, _ = simulate_speedup(model, 25, n_items=300, config=cfg)
        assert s25 <= s19 * 1.25

    def test_micro_batching_amortizes_comm_overhead(self):
        model = service(cv=0.0)
        comm = 0.3 * model.mean_total()
        pp, _ = simulate_speedup(
            model, 8, n_items=300,
            config=SimulatorConfig(comm_overhead=comm, micro_batch_size=1),
        )
        mpp, _ = simulate_speedup(
            model, 8, n_items=300,
            config=SimulatorConfig(
                comm_overhead=comm, micro_batch_size=50, buffer_capacity=100
            ),
        )
        assert mpp > pp


class TestBurstArrivals:
    def test_bursty_source_same_average_throughput(self):
        """Bursts don't change the saturated rate, only queueing."""
        from repro.streaming import arrival_schedule

        model = service(cv=0.0)
        sim = PipelineSimulator(
            allocate_processes(model.mean_seconds, 19), model,
            SimulatorConfig(comm_overhead=0.0),
        )
        rate = 0.5 / max(model.mean_seconds.values())  # below capacity
        smooth = sim.run(arrival_schedule(400, rate, burst=1))
        bursty = sim.run(arrival_schedule(400, rate, burst=20))
        assert bursty.throughput == pytest.approx(smooth.throughput, rel=0.1)

    def test_bursts_raise_latency(self):
        from repro.streaming import arrival_schedule

        model = service(cv=0.0)
        sim = PipelineSimulator(
            allocate_processes(model.mean_seconds, 19), model,
            SimulatorConfig(comm_overhead=0.0),
        )
        rate = 0.5 / max(model.mean_seconds.values())
        smooth = sim.run(arrival_schedule(400, rate, burst=1))
        bursty = sim.run(arrival_schedule(400, rate, burst=20))
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(bursty.latencies) > mean(smooth.latencies)


class TestStreaming:
    def test_underloaded_source_rate_is_respected(self):
        model = service(cv=0.0)
        sim = PipelineSimulator(
            allocate_processes(model.mean_seconds, 19), model,
            SimulatorConfig(comm_overhead=0.0),
        )
        capacity = 1.0 / max(model.mean_seconds.values())
        rate = capacity / 4
        result = sim.run_stream(200, rate)
        assert result.throughput == pytest.approx(rate, rel=0.15)

    def test_overloaded_throughput_saturates(self):
        model = service(cv=0.0)
        sim = PipelineSimulator(
            allocate_processes(model.mean_seconds, 19), model,
            SimulatorConfig(comm_overhead=0.0),
        )
        capacity = 1.0 / max(model.mean_seconds.values())
        low = sim.run_stream(300, capacity * 10).throughput
        lower = sim.run_stream(300, capacity * 100).throughput
        assert lower == pytest.approx(low, rel=0.1)  # rate-independent

    def test_latency_bounded_under_overload(self):
        """Backpressured admission keeps processing latency bounded."""
        model = service(cv=0.0)
        sim = PipelineSimulator(
            allocate_processes(model.mean_seconds, 19), model,
            SimulatorConfig(comm_overhead=0.0, buffer_capacity=8),
        )
        result = sim.run_stream(300, rate=1e9)
        # queues are bounded, so worst-case latency is bounded by
        # (#stages × capacity) item services, far below 300 services.
        assert max(result.latencies) < model.mean_total() * 100
