"""Clean-shutdown guarantees: idempotence, timeouts, liveness reporting."""

from __future__ import annotations

import threading
import time

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, SupervisionPolicy
from repro.core.stages import STAGE_ORDER
from repro.errors import PipelineStoppedError
from repro.parallel import FaultSpec, ParallelERPipeline
from repro.types import EntityDescription

RUN_TIMEOUT = 60.0

_WORDS = ["glass", "panel", "wood", "fibre", "roof", "window"]


def make_entities(n: int):
    return [
        EntityDescription.create(
            i, {"title": " ".join(_WORDS[(i + j) % len(_WORDS)] for j in range(3))}
        )
        for i in range(n)
    ]


def config():
    return StreamERConfig(alpha=100, beta=0.5, classifier=ThresholdClassifier(0.4))


class TestCloseIdempotence:
    def test_double_close_is_idempotent(self):
        pipeline = ParallelERPipeline(config(), processes=8)
        for entity in make_entities(10):
            pipeline.submit(entity)
        pipeline.close()
        pipeline.close()  # second close must be a no-op, not extra sentinels
        pipeline.join(timeout=RUN_TIMEOUT)
        assert pipeline.items_failed == 0

    def test_close_without_submit(self):
        pipeline = ParallelERPipeline(config(), processes=8)
        pipeline.close()
        pipeline.close()
        pipeline.join(timeout=RUN_TIMEOUT)

    def test_submit_after_close_raises(self):
        entities = make_entities(2)
        pipeline = ParallelERPipeline(config(), processes=8)
        pipeline.submit(entities[0])
        pipeline.close()
        with pytest.raises(PipelineStoppedError):
            pipeline.submit(entities[1])
        pipeline.join(timeout=RUN_TIMEOUT)


class TestJoinTimeout:
    def test_join_timeout_raises_with_liveness_report(self):
        # Wedge every comparison worker with a long injected delay.
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            faults={"co": FaultSpec(probability=1.0, mode="delay", delay_seconds=30.0)},
        )
        for entity in make_entities(8):
            pipeline.submit(entity)
        pipeline.close()
        with pytest.raises(PipelineStoppedError) as excinfo:
            pipeline.join(timeout=0.5)
        message = str(excinfo.value)
        assert "co" in message
        assert "threads alive" in message
        # threads are daemons; the wedged pipeline is abandoned here

    def test_join_without_timeout_drains(self):
        pipeline = ParallelERPipeline(config(), processes=8)
        for entity in make_entities(5):
            pipeline.submit(entity)
        pipeline.close()
        pipeline.join()  # no timeout: plain drain, must return promptly
        assert all(stats["alive"] == 0 for stats in pipeline.liveness_report().values())

    def test_close_timeout_on_saturated_input(self):
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            queue_capacity=1,
            faults={"dr": FaultSpec(probability=1.0, mode="delay", delay_seconds=30.0)},
        )
        entities = make_entities(2 + pipeline.allocation["dr"])
        pipeline.submit(entities[0])
        # wait until every dr worker is wedged inside the delay and the
        # input queue is empty again, then refill it completely
        deadline = time.perf_counter() + 10
        while pipeline._input.qsize() > 0 and time.perf_counter() < deadline:
            time.sleep(0.01)
        for entity in entities[1 : 2 + pipeline.allocation["dr"] - 1]:
            pipeline.submit(entity)
        with pytest.raises(PipelineStoppedError) as excinfo:
            pipeline.close(timeout=0.3)
        assert "stop sentinels" in str(excinfo.value)


class TestLivenessReport:
    def test_report_covers_every_stage(self):
        pipeline = ParallelERPipeline(config(), processes=8)
        report = pipeline.liveness_report()
        assert set(report) == set(STAGE_ORDER)
        for name, stats in report.items():
            assert set(stats) == {"workers", "alive", "active", "queued"}
            assert stats["workers"] == pipeline.allocation[name]
            assert stats["alive"] == 0  # not started yet

    def test_report_after_clean_run(self):
        pipeline = ParallelERPipeline(config(), processes=8)
        pipeline.run(make_entities(10), timeout=RUN_TIMEOUT)
        for stats in pipeline.liveness_report().values():
            assert stats["alive"] == 0
            assert stats["active"] == 0
            assert stats["queued"] == 0


class TestCatastrophicWorkerDeath:
    """try/finally in the worker loop: even a death *outside* the supervised
    stage call still decrements the pool and forwards the stop sentinels —
    the minimal fix for the silent-deadlock bug."""

    class _ExplodingSupervisor:
        """Simulates a crash in the worker machinery itself."""

        def execute(self, stage, fn, payload):
            raise RuntimeError("catastrophic worker failure")

    def test_worker_death_does_not_deadlock_join(self, monkeypatch):
        # silence the unhandled-thread-exception report for the dying worker
        monkeypatch.setattr(threading, "excepthook", lambda args: None)
        pipeline = ParallelERPipeline(config(), processes=8)
        runner = next(r for r in pipeline._runners if r.name == "cg")
        runner.supervisor = self._ExplodingSupervisor()
        entities = make_entities(10)
        for entity in entities:
            pipeline.submit(entity)
        pipeline.close()
        pipeline.join(timeout=RUN_TIMEOUT)  # must terminate, not deadlock
        assert all(stats["alive"] == 0 for stats in pipeline.liveness_report().values())
