"""Block-partitioned multiprocess dispatch: planner, negotiation, equivalence.

The tentpole contract: partitioning the block collection into worker-owned
key ranges — workers generate candidates AND rescore locally — must be
*invisible* in every output: match sets bit-identical to the sequential
pipeline and to chunked dispatch, identical dead-letter sets under
injected faults, and the same ``dispatched + prefiltered == cleaned``
pair accounting.  The planner itself is pinned as a deterministic LPT
bin-packer, and negotiation must refuse loudly (``partitioned=True``)
or fall back silently (``"auto"``) on ineligible wirings.
"""

from __future__ import annotations

import time

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline, SupervisionPolicy
from repro.core.backends import (
    InMemoryBackend,
    SharedMemoryBackend,
    active_shm_segments,
    backend_capabilities,
)
from repro.errors import ConfigurationError
from repro.parallel import (
    FaultSpec,
    MultiprocessERPipeline,
    ParallelERPipeline,
    PartitionPlan,
    negotiate_partitioned_dispatch,
    plan_partitions,
)
from repro.streaming import MultiprocessStreamRunner
from repro.types import Comparison, Profile

RUN_TIMEOUT = 120.0

_WORDS = ["glass", "panel", "wood", "fibre", "roof", "window", "door", "steel"]


def make_entities(n: int):
    from repro.types import EntityDescription

    return [
        EntityDescription.create(
            i, {"title": " ".join(_WORDS[(i + j) % len(_WORDS)] for j in range(3))}
        )
        for i in range(n)
    ]


def threshold_config() -> StreamERConfig:
    return StreamERConfig.interned(
        alpha=100, beta=0.5, classifier=ThresholdClassifier(0.4)
    )


def dataset_config(dataset) -> StreamERConfig:
    """Interned oracle config for a generated dataset (shm-eligible)."""
    return StreamERConfig.interned(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )


def sequential_pairs(config: StreamERConfig, entities) -> set:
    pipeline = StreamERPipeline(config, instrument=False)
    pipeline.process_many(entities)
    return pipeline.cl.matches.pairs()


def mp_run(config: StreamERConfig, entities, *, partitioned, **kwargs):
    """One multiprocess run on a fresh shm backend; returns (pipeline, result).

    The backend is unlinked before returning — pair sets and counters are
    extracted first — so no test leaks ``/dev/shm`` segments on failure.
    """
    backend = SharedMemoryBackend()
    prefix = backend.name
    try:
        pipeline = MultiprocessERPipeline(
            config,
            workers=2,
            chunk_size=64,
            backend=backend,
            partitioned=partitioned,
            **kwargs,
        )
        result = pipeline.run(entities)
        pairs = backend.matches.pairs()
        pipeline.close()
    finally:
        backend.unlink()
    assert active_shm_segments(prefix) == []
    return pipeline, result, pairs


class TestPartitionPlanner:
    def test_deterministic_across_insertion_order(self):
        costs = {"roof": 7, "wood": 3, "glass": 9, "door": 1, "panel": 3}
        shuffled = dict(sorted(costs.items(), reverse=True))
        assert plan_partitions(costs, 3) == plan_partitions(shuffled, 3)

    def test_lpt_balances_known_instance(self):
        plan = plan_partitions({"a": 5, "b": 4, "c": 3, "d": 3, "e": 2, "f": 1}, 2)
        assert plan.total_cost == 18
        assert sorted(plan.bin_costs) == [9, 9]
        assert plan.imbalance == 1.0

    def test_bins_cover_keys_exactly_once(self):
        costs = {f"key-{i}": (i * 7) % 11 + 1 for i in range(40)}
        plan = plan_partitions(costs, 4)
        assigned = [key for bin_keys in plan.bins for key in bin_keys]
        assert sorted(assigned, key=repr) == sorted(costs, key=repr)
        assert plan.group_count == len(costs)
        for bin_keys, cost in zip(plan.bins, plan.bin_costs):
            assert cost == sum(costs[k] for k in bin_keys)

    def test_fewer_groups_than_bins(self):
        plan = plan_partitions({"a": 2, "b": 5}, 4)
        assert plan.used_bins == 2
        assert len(plan.bins) == 4
        assert plan.largest_share == 5 / 7

    def test_empty_costs(self):
        plan = plan_partitions({}, 2)
        assert plan.used_bins == 0
        assert plan.total_cost == 0
        assert plan.imbalance == 1.0
        assert plan.largest_share == 0.0

    def test_rejects_nonpositive_bins(self):
        with pytest.raises(ConfigurationError):
            plan_partitions({"a": 1}, 0)


class _CommittingProxy:
    """Delegating backend wrapper that *looks* durable (has commit_entity)."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def commit_entity(self, eid) -> None:
        pass


class TestPartitionNegotiation:
    def test_predicate_requires_shm_capability_and_classifier(self):
        with SharedMemoryBackend() as backend:
            capabilities = backend_capabilities(backend)
            assert negotiate_partitioned_dispatch(
                "shm", capabilities, ThresholdClassifier(0.4)
            )
            assert negotiate_partitioned_dispatch(
                "shm", capabilities, OracleClassifier.from_pairs([])
            )
            assert not negotiate_partitioned_dispatch(
                "ids", capabilities, ThresholdClassifier(0.4)
            )
            assert not negotiate_partitioned_dispatch(
                "shm", frozenset(), ThresholdClassifier(0.4)
            )

            class Widened(ThresholdClassifier):
                pass

            # Exact-type check: a subclass may override classify() with
            # logic the worker-side rescorer cannot reproduce.
            assert not negotiate_partitioned_dispatch(
                "shm", capabilities, Widened(0.4)
            )

    def test_auto_negotiates_on_shm_backend(self):
        with SharedMemoryBackend() as backend:
            pipeline = MultiprocessERPipeline(
                threshold_config(), workers=2, backend=backend
            )
            assert pipeline.partitioned_dispatch
            pipeline.close()

    def test_auto_falls_back_on_in_memory_backend(self):
        pipeline = MultiprocessERPipeline(
            threshold_config(), workers=2, backend=InMemoryBackend()
        )
        assert not pipeline.partitioned_dispatch
        pipeline.close()

    def test_forced_on_ineligible_backend_raises(self):
        with pytest.raises(ConfigurationError, match="partitioned dispatch"):
            MultiprocessERPipeline(
                threshold_config(),
                workers=2,
                backend=InMemoryBackend(),
                partitioned=True,
            )

    def test_durable_like_backend_is_excluded(self):
        with SharedMemoryBackend() as backend:
            proxy = _CommittingProxy(backend)
            pipeline = MultiprocessERPipeline(
                threshold_config(), workers=2, backend=proxy
            )
            assert pipeline.dispatch_mode == "shm"
            assert not pipeline.partitioned_dispatch
            pipeline.close()
            with pytest.raises(ConfigurationError, match="durable"):
                MultiprocessERPipeline(
                    threshold_config(), workers=2, backend=proxy, partitioned=True
                )

    def test_worker_side_stage_faults_are_excluded(self):
        faults = {"cl": FaultSpec(probability=0.5, seed=1)}
        with SharedMemoryBackend() as backend:
            pipeline = MultiprocessERPipeline(
                threshold_config(), workers=2, backend=backend, faults=faults
            )
            assert not pipeline.partitioned_dispatch
            pipeline.close()
            with pytest.raises(ConfigurationError, match="worker-side"):
                MultiprocessERPipeline(
                    threshold_config(),
                    workers=2,
                    backend=backend,
                    faults=faults,
                    partitioned=True,
                )

    def test_invalid_value_raises(self):
        with pytest.raises(ConfigurationError, match="partitioned"):
            MultiprocessERPipeline(threshold_config(), partitioned="yes")


class TestPartitionedDispatchEquivalence:
    """Partitioned dispatch is invisible in every output."""

    def test_all_executors_agree_dirty(self, tiny_dirty_dataset):
        config = dataset_config(tiny_dirty_dataset)
        entities = list(tiny_dirty_dataset.entities)
        reference = sequential_pairs(config, entities)
        assert reference  # a vacuous equivalence proves nothing

        for micro_batch_size in (1, 16):  # PP and MPP
            framework = ParallelERPipeline(
                config, processes=8, micro_batch_size=micro_batch_size
            )
            result = framework.run(entities, timeout=RUN_TIMEOUT)
            assert result.items_failed == 0
            assert result.match_pairs == reference

        chunked, chunked_result, chunked_pairs = mp_run(
            config, entities, partitioned=False
        )
        assert not chunked.partitioned_dispatch
        assert chunked_pairs == reference

        partitioned, result, pairs = mp_run(config, entities, partitioned=True)
        assert partitioned.partitioned_dispatch
        assert pairs == reference
        assert isinstance(partitioned.last_partition_plan, PartitionPlan)
        assert partitioned.last_partition_plan.used_bins >= 1
        # The accounting identity holds in both dispatch formats.
        for pipeline, run_result in (
            (chunked, chunked_result),
            (partitioned, result),
        ):
            assert (
                pipeline.pairs_dispatched + pipeline.pairs_prefiltered
                == run_result.comparisons_after_cleaning
            )

    def test_partitioned_matches_sequential_clean_clean(self, tiny_clean_dataset):
        config = dataset_config(tiny_clean_dataset)
        entities = list(tiny_clean_dataset.entities)
        reference = sequential_pairs(config, entities)
        assert reference
        pipeline, result, pairs = mp_run(config, entities, partitioned=True)
        assert pipeline.partitioned_dispatch
        assert pairs == reference
        for left, right in pairs:  # clean-clean never matches within a source
            assert left[0] != right[0]

    def test_fault_parity_with_chunked(self):
        """Same seeded co faults → same dead letters, same surviving matches.

        The injector keys its verdicts on the canonical pair key, so which
        dispatch format (or which worker) scores a pair must not change
        which pairs fault — and with retries disabled both paths must
        dead-letter exactly the injector's victims.
        """
        entities = make_entities(60)
        outcomes = {}
        for partitioned in (False, True):
            pipeline, result, pairs = mp_run(
                threshold_config(),
                entities,
                partitioned=partitioned,
                supervision=SupervisionPolicy.none(),
                faults={"co": FaultSpec(probability=0.3, seed=5)},
            )
            assert pipeline.partitioned_dispatch is partitioned
            assert result.items_failed > 0  # the faults really fired
            assert result.items_failed == len(result.dead_letters)
            for letter in result.dead_letters:
                assert letter.stage == "co"
            outcomes[partitioned] = (pairs, result.dead_letter_ids)
        assert outcomes[True] == outcomes[False]

    def test_persistent_pool_increments_equal_one_shot(self):
        entities = make_entities(90)
        one_shot, _, reference = mp_run(
            threshold_config(), entities, partitioned=True
        )
        assert one_shot.partitioned_dispatch

        with MultiprocessStreamRunner(threshold_config(), workers=2) as runner:
            assert runner.partitioned_dispatch
            for start in range(0, len(entities), 30):
                runner.process_increment(entities[start : start + 30])
            assert runner.match_pairs() == reference
            assert len(runner.increments) == 3
            # The pool survives across increments — that is the point of
            # the persistent runner; re-negotiation would discard it.
            assert runner.increments[-1].pool_reused


class TestPrefilterZeroTokenRegression:
    """The length prefilter must not treat 'empty side' as 'cheap skip'.

    Regression for the ``if la and lb`` bypass: a pair with exactly one
    empty token set can never reach a positive threshold (score is
    identically 0) and is droppable, but a pair with *both* sides empty
    scores jaccard 1.0 and may classify as a match — shipping decisions
    must distinguish the two.
    """

    @staticmethod
    def _profile(eid: int, tokens: tuple[str, ...], ids: tuple[int, ...]) -> Profile:
        return Profile(
            eid=eid,
            attributes=(),
            tokens=frozenset(tokens),
            token_ids=frozenset(ids),
        )

    def test_one_sided_empty_dropped_both_empty_shipped(self):
        pipeline = MultiprocessERPipeline(
            threshold_config(), workers=2, backend=InMemoryBackend()
        )
        assert pipeline._prefilter  # interned + positive threshold
        both_empty = Comparison(
            left=self._profile(1, (), ()), right=self._profile(2, (), ())
        )
        one_sided = Comparison(
            left=self._profile(3, (), ()),
            right=self._profile(4, ("wood",), (0,)),
        )
        normal = Comparison(
            left=self._profile(5, ("wood", "glass"), (0, 1)),
            right=self._profile(6, ("wood", "glass"), (0, 1)),
        )
        pipeline._front = lambda entities: iter([[both_empty, one_sided, normal]])
        shipped = [c for chunk in pipeline._chunks([]) for c in chunk]
        pipeline.close()
        assert shipped == [both_empty, normal]
        assert pipeline.pairs_prefiltered == 1
        # Why both-empty must ship: the kernel scores it as a match.
        comparator = pipeline.config.comparator
        assert comparator.score(both_empty.left, both_empty.right) == 1.0
        assert comparator.score(one_sided.left, one_sided.right) == 0.0


@pytest.mark.requires_multicore
class TestPartitionedSpeedup:
    """ISSUE acceptance: on >= 2 effective CPUs, partitioned dispatch must
    beat the sequential pipeline outright (mp_speedup > 1)."""

    def test_partitioned_beats_sequential(self):
        entities = make_entities(4000)
        start = time.perf_counter()
        sequential = StreamERPipeline(threshold_config(), instrument=False)
        sequential.process_many(entities)
        seq_seconds = time.perf_counter() - start

        with SharedMemoryBackend() as backend:
            pipeline = MultiprocessERPipeline(
                threshold_config(), workers=2, chunk_size=256, backend=backend
            )
            assert pipeline.partitioned_dispatch
            start = time.perf_counter()
            pipeline.run(entities)
            mp_seconds = time.perf_counter() - start
            assert backend.matches.pairs() == sequential.cl.matches.pairs()
            pipeline.close()
        assert mp_seconds < seq_seconds
