"""Unit tests for the process-allocation solver."""

from __future__ import annotations

import pytest

from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel import (
    FIXED_STAGES,
    allocate_processes,
    bottleneck_time,
    paper_example_times,
)


class TestAllocateProcesses:
    def test_minimum_is_one_each(self):
        allocation = allocate_processes(paper_example_times(), 8)
        assert all(v == 1 for v in allocation.values())

    def test_paper_example_p15(self):
        """§IV-B: with P=15 the paper sets v=1, x=3, y=6, z=1."""
        allocation = allocate_processes(paper_example_times(), 15)
        assert allocation["cc"] == 3   # x
        assert allocation["co"] == 6   # y
        assert allocation["cg"] == 1   # z
        assert allocation["lm"] == 1 and allocation["cl"] == 1  # v

    def test_total_matches_request(self):
        for total in (8, 12, 19, 25):
            allocation = allocate_processes(paper_example_times(), total)
            assert sum(allocation.values()) == total

    def test_fixed_stages_never_replicated(self):
        allocation = allocate_processes(paper_example_times(), 60)
        for stage in FIXED_STAGES:
            assert allocation[stage] == 1

    def test_cheap_stages_stay_single_under_paper_times(self):
        """Under the paper's measured times, dr and bg never get a second
        process before the bottlenecks saturate — the paper's P=3+2v+x+y+z."""
        allocation = allocate_processes(paper_example_times(), 15)
        assert allocation["dr"] == 1
        assert allocation["bg"] == 1

    def test_rejects_too_few_processes(self):
        with pytest.raises(ConfigurationError):
            allocate_processes(paper_example_times(), 7)

    def test_rejects_missing_stage_times(self):
        with pytest.raises(ConfigurationError, match="missing"):
            allocate_processes({"dr": 1.0}, 10)

    def test_extra_processes_reduce_bottleneck(self):
        times = paper_example_times()
        small = bottleneck_time(times, allocate_processes(times, 8))
        large = bottleneck_time(times, allocate_processes(times, 20))
        assert large < small

    def test_all_stages_present(self):
        allocation = allocate_processes(paper_example_times(), 10)
        assert set(allocation) == set(STAGE_ORDER)
