"""Tests for the multiprocess comparison executor."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import ConfigurationError
from repro.parallel import MultiprocessERPipeline
from repro.types import EntityDescription


def config_for(dataset, threshold=None):
    classifier = (
        ThresholdClassifier(threshold)
        if threshold is not None
        else OracleClassifier.from_pairs(dataset.ground_truth)
    )
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=classifier,
    )


class TestValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(chunk_size=0)


class TestCorrectness:
    def test_same_matches_as_sequential(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        sequential = StreamERPipeline(config_for(ds), instrument=False)
        sequential.process_many(ds.stream())

        mp_pipeline = MultiprocessERPipeline(config_for(ds), workers=2, chunk_size=64)
        result = mp_pipeline.run(ds.stream())

        assert result.match_pairs == sequential.cl.matches.pairs()
        assert result.entities_processed == len(ds)
        assert result.comparisons_after_cleaning == (
            sequential.cc.retained
        )

    def test_clean_clean(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        mp_pipeline = MultiprocessERPipeline(config_for(ds), workers=2, chunk_size=32)
        result = mp_pipeline.run(ds.stream())
        for i, j in result.match_pairs:
            assert i[0] != j[0]

    def test_single_worker_tiny_chunks(self, paper_entities):
        config = StreamERConfig(
            alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)
        )
        sequential = StreamERPipeline(
            StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)),
            instrument=False,
        )
        sequential.process_many(paper_entities)
        mp_pipeline = MultiprocessERPipeline(config, workers=1, chunk_size=1)
        result = mp_pipeline.run(paper_entities)
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_empty_input(self):
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig(classifier=ThresholdClassifier(0.5)), workers=1
        )
        result = mp_pipeline.run([])
        assert result.entities_processed == 0
        assert result.matches == []

    def test_no_comparisons_at_all(self):
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig(classifier=ThresholdClassifier(0.5)), workers=1
        )
        entities = [
            EntityDescription.create(i, {"a": f"unique{i}"}) for i in range(5)
        ]
        result = mp_pipeline.run(entities)
        assert result.matches == []
        assert result.entities_processed == 5


class TestCompactDispatch:
    """The zero-copy wire formats introduced by the interned kernel."""

    def test_dispatch_mode_by_comparator_type(self):
        from repro.comparison import (
            AttributeWeightedComparator,
            InternedComparator,
            TokenSetComparator,
        )
        from repro.parallel.mp_framework import dispatch_mode

        assert dispatch_mode(InternedComparator()) == "ids"
        assert dispatch_mode(TokenSetComparator()) == "tokens"
        assert dispatch_mode(AttributeWeightedComparator()) == "profiles"

        class Custom(TokenSetComparator):
            pass

        # A subclass may inspect attributes; it must ride the legacy format.
        assert dispatch_mode(Custom()) == "profiles"

    def test_interned_config_selects_id_dispatch(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )
        mp_pipeline = MultiprocessERPipeline(config, workers=2, chunk_size=64)
        assert mp_pipeline.dispatch_mode == "ids"
        result = mp_pipeline.run(ds.stream())

        sequential = StreamERPipeline(config_for(ds, threshold=0.5), instrument=False)
        sequential.process_many(ds.stream())
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_prefilter_accounting_covers_every_pair(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )
        mp_pipeline = MultiprocessERPipeline(config, workers=1, chunk_size=32)
        result = mp_pipeline.run(ds.stream())
        dispatched = mp_pipeline.pairs_dispatched
        prefiltered = mp_pipeline.pairs_prefiltered
        assert dispatched + prefiltered == result.comparisons_after_cleaning
        assert dispatched > 0

    def test_encode_chunk_ships_each_entity_once(self):
        from array import array

        from repro.comparison import InternedComparator
        from repro.reading import TokenDictionary
        from repro.types import Comparison, Profile

        d = TokenDictionary()

        def interned(eid, tokens):
            tokens = frozenset(tokens)
            return Profile(
                eid=eid,
                attributes=(("t", " ".join(sorted(tokens))),),
                tokens=tokens,
                token_ids=d.intern_set(tokens),
            )

        config = StreamERConfig(
            comparator=InternedComparator(threshold=0.5),
            classifier=ThresholdClassifier(0.5),
        )
        pipeline = MultiprocessERPipeline(config, workers=1)
        hub = interned(1, {"a", "b"})
        chunk = [
            Comparison(hub, interned(2, {"a", "c"})),
            Comparison(hub, interned(3, {"b", "c"})),
        ]
        ids_table, str_table, pairs = pipeline._encode_chunk(chunk)
        assert pairs == [(1, 2), (1, 3)]
        assert set(ids_table) == {1, 2, 3}  # the hub appears once, not twice
        assert all(isinstance(payload, array) for payload in ids_table.values())
        assert str_table == {}
        # Encoding is pure: dispatch accounting lives on the submit path,
        # so a re-encoded chunk (supervised retry) cannot double-count.
        pipeline._encode_chunk(chunk)
        assert pipeline.pairs_dispatched == 0

    def test_encode_chunk_mixed_pair_falls_back_to_strings(self):
        from repro.comparison import InternedComparator
        from repro.reading import TokenDictionary
        from repro.types import Comparison, Profile

        d = TokenDictionary()
        with_ids = Profile(
            eid=1,
            attributes=(("t", "a b"),),
            tokens=frozenset({"a", "b"}),
            token_ids=d.intern_set({"a", "b"}),
        )
        without_ids = Profile(
            eid=2, attributes=(("t", "a c"),), tokens=frozenset({"a", "c"})
        )
        config = StreamERConfig(
            comparator=InternedComparator(threshold=0.5),
            classifier=ThresholdClassifier(0.5),
        )
        pipeline = MultiprocessERPipeline(config, workers=1)
        ids_table, str_table, pairs = pipeline._encode_chunk(
            [Comparison(with_ids, without_ids)]
        )
        # Both sides travel as strings so the worker compares like with like.
        assert set(str_table) == {1, 2}
        assert ids_table == {}
        assert pairs == [(1, 2)]

    def test_oracle_classifier_disables_verification(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        from repro.classification import OracleClassifier

        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=OracleClassifier.from_pairs(ds.ground_truth),
        )
        mp_pipeline = MultiprocessERPipeline(config, workers=2, chunk_size=64)
        assert mp_pipeline._threshold is None
        assert not mp_pipeline._prefilter
        result = mp_pipeline.run(ds.stream())
        assert result.match_pairs == sequential_oracle_pairs(ds)


def sequential_oracle_pairs(ds):
    sequential = StreamERPipeline(config_for(ds), instrument=False)
    sequential.process_many(ds.stream())
    return sequential.cl.matches.pairs()


class TestShmNegotiation:
    """The ``"shm"`` dispatch mode exists only when comparator *and*
    backend both support it; everything else keeps its legacy format."""

    def test_negotiation_requires_both_sides(self):
        from repro.comparison import InternedComparator, TokenSetComparator
        from repro.core.backends import SharedMemoryBackend
        from repro.parallel.mp_framework import negotiate_dispatch_mode

        shm_caps = frozenset({SharedMemoryBackend.TOKEN_COLUMNS})
        assert negotiate_dispatch_mode(InternedComparator(), shm_caps) == "shm"
        assert negotiate_dispatch_mode(InternedComparator(), frozenset()) == "ids"
        assert negotiate_dispatch_mode(TokenSetComparator(), shm_caps) == "tokens"
        assert negotiate_dispatch_mode(TokenSetComparator()) == "tokens"

    def test_pipeline_negotiates_from_backend(self, tiny_dirty_dataset):
        from repro.core.backends import SharedMemoryBackend

        ds = tiny_dirty_dataset
        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )
        with SharedMemoryBackend() as backend:
            mp_pipeline = MultiprocessERPipeline(
                config, workers=2, chunk_size=64, backend=backend
            )
            assert mp_pipeline.dispatch_mode == "shm"
            mp_pipeline.close()
        # Same config, default backend: no capability, no shm mode.
        fallback = MultiprocessERPipeline(config, workers=2, chunk_size=64)
        assert fallback.dispatch_mode == "ids"
        fallback.close()


class TestPersistentPool:
    def _config(self, ds):
        return StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )

    def test_pool_reused_across_runs(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        entities = list(ds.stream())
        mp_pipeline = MultiprocessERPipeline(self._config(ds), workers=2, chunk_size=64)
        mp_pipeline.run(entities[:100])
        mp_pipeline.run(entities[100:200])
        mp_pipeline.run(entities[200:])
        assert mp_pipeline.pool_spawns == 1
        assert mp_pipeline.pool_reuses == 2
        mp_pipeline.close()

    def test_non_persistent_pool_respawns(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        entities = list(ds.stream())
        mp_pipeline = MultiprocessERPipeline(
            self._config(ds), workers=2, chunk_size=64, persistent_pool=False
        )
        mp_pipeline.run(entities[:100])
        mp_pipeline.run(entities[100:200])
        assert mp_pipeline.pool_spawns == 2
        assert mp_pipeline.pool_reuses == 0
        mp_pipeline.close()

    def test_close_is_idempotent_and_context_manager(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        with MultiprocessERPipeline(
            self._config(ds), workers=2, chunk_size=64
        ) as mp_pipeline:
            mp_pipeline.run(ds.stream())
        mp_pipeline.close()
        mp_pipeline.close()

    def test_incremental_equals_one_shot(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        entities = list(ds.stream())
        one_shot = StreamERPipeline(config_for(ds, threshold=0.5), instrument=False)
        one_shot.process_many(entities)

        mp_pipeline = MultiprocessERPipeline(self._config(ds), workers=2, chunk_size=64)
        for i in range(0, len(entities), 75):
            mp_pipeline.run(entities[i : i + 75])
        assert mp_pipeline.backend.matches.pairs() == one_shot.cl.matches.pairs()
        mp_pipeline.close()


class TestShmMetrics:
    def test_shm_gauges_and_pool_counters(self, tiny_dirty_dataset):
        from repro.core.backends import SharedMemoryBackend
        from repro.observability import MetricsRegistry
        from repro.observability.instrument import (
            POOL_REUSES,
            POOL_SPAWNS,
            SHM_BYTES,
            SHM_ROWS,
            SHM_SEGMENTS,
        )

        ds = tiny_dirty_dataset
        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )
        registry = MetricsRegistry()
        entities = list(ds.stream())
        with SharedMemoryBackend() as backend:
            mp_pipeline = MultiprocessERPipeline(
                config, workers=2, chunk_size=64, backend=backend, registry=registry
            )
            mp_pipeline.run(entities[:150])
            mp_pipeline.run(entities[150:])
            assert registry.value(SHM_BYTES) == backend.shm_bytes()
            assert registry.value(SHM_SEGMENTS) == len(backend.segment_names())
            assert registry.value(SHM_ROWS) > 0
            assert registry.value(POOL_SPAWNS) == 1
            assert registry.value(POOL_REUSES) == 1
            mp_pipeline.close()
