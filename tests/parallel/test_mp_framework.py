"""Tests for the multiprocess comparison executor."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import ConfigurationError
from repro.parallel import MultiprocessERPipeline
from repro.types import EntityDescription


def config_for(dataset, threshold=None):
    classifier = (
        ThresholdClassifier(threshold)
        if threshold is not None
        else OracleClassifier.from_pairs(dataset.ground_truth)
    )
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=classifier,
    )


class TestValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(chunk_size=0)


class TestCorrectness:
    def test_same_matches_as_sequential(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        sequential = StreamERPipeline(config_for(ds), instrument=False)
        sequential.process_many(ds.stream())

        mp_pipeline = MultiprocessERPipeline(config_for(ds), workers=2, chunk_size=64)
        result = mp_pipeline.run(ds.stream())

        assert result.match_pairs == sequential.cl.matches.pairs()
        assert result.entities_processed == len(ds)
        assert result.comparisons_after_cleaning == (
            sequential.cc.retained
        )

    def test_clean_clean(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        mp_pipeline = MultiprocessERPipeline(config_for(ds), workers=2, chunk_size=32)
        result = mp_pipeline.run(ds.stream())
        for i, j in result.match_pairs:
            assert i[0] != j[0]

    def test_single_worker_tiny_chunks(self, paper_entities):
        config = StreamERConfig(
            alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)
        )
        sequential = StreamERPipeline(
            StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)),
            instrument=False,
        )
        sequential.process_many(paper_entities)
        mp_pipeline = MultiprocessERPipeline(config, workers=1, chunk_size=1)
        result = mp_pipeline.run(paper_entities)
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_empty_input(self):
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig(classifier=ThresholdClassifier(0.5)), workers=1
        )
        result = mp_pipeline.run([])
        assert result.entities_processed == 0
        assert result.matches == []

    def test_no_comparisons_at_all(self):
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig(classifier=ThresholdClassifier(0.5)), workers=1
        )
        entities = [
            EntityDescription.create(i, {"a": f"unique{i}"}) for i in range(5)
        ]
        result = mp_pipeline.run(entities)
        assert result.matches == []
        assert result.entities_processed == 5


class TestCompactDispatch:
    """The zero-copy wire formats introduced by the interned kernel."""

    def test_dispatch_mode_by_comparator_type(self):
        from repro.comparison import (
            AttributeWeightedComparator,
            InternedComparator,
            TokenSetComparator,
        )
        from repro.parallel.mp_framework import dispatch_mode

        assert dispatch_mode(InternedComparator()) == "ids"
        assert dispatch_mode(TokenSetComparator()) == "tokens"
        assert dispatch_mode(AttributeWeightedComparator()) == "profiles"

        class Custom(TokenSetComparator):
            pass

        # A subclass may inspect attributes; it must ride the legacy format.
        assert dispatch_mode(Custom()) == "profiles"

    def test_interned_config_selects_id_dispatch(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )
        mp_pipeline = MultiprocessERPipeline(config, workers=2, chunk_size=64)
        assert mp_pipeline.dispatch_mode == "ids"
        result = mp_pipeline.run(ds.stream())

        sequential = StreamERPipeline(config_for(ds, threshold=0.5), instrument=False)
        sequential.process_many(ds.stream())
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_prefilter_accounting_covers_every_pair(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=ThresholdClassifier(0.5),
        )
        mp_pipeline = MultiprocessERPipeline(config, workers=1, chunk_size=32)
        result = mp_pipeline.run(ds.stream())
        dispatched = mp_pipeline.pairs_dispatched
        prefiltered = mp_pipeline.pairs_prefiltered
        assert dispatched + prefiltered == result.comparisons_after_cleaning
        assert dispatched > 0

    def test_encode_chunk_ships_each_entity_once(self):
        from array import array

        from repro.comparison import InternedComparator
        from repro.reading import TokenDictionary
        from repro.types import Comparison, Profile

        d = TokenDictionary()

        def interned(eid, tokens):
            tokens = frozenset(tokens)
            return Profile(
                eid=eid,
                attributes=(("t", " ".join(sorted(tokens))),),
                tokens=tokens,
                token_ids=d.intern_set(tokens),
            )

        config = StreamERConfig(
            comparator=InternedComparator(threshold=0.5),
            classifier=ThresholdClassifier(0.5),
        )
        pipeline = MultiprocessERPipeline(config, workers=1)
        hub = interned(1, {"a", "b"})
        chunk = [
            Comparison(hub, interned(2, {"a", "c"})),
            Comparison(hub, interned(3, {"b", "c"})),
        ]
        ids_table, str_table, pairs = pipeline._encode_chunk(chunk)
        assert pairs == [(1, 2), (1, 3)]
        assert set(ids_table) == {1, 2, 3}  # the hub appears once, not twice
        assert all(isinstance(payload, array) for payload in ids_table.values())
        assert str_table == {}
        assert pipeline.pairs_dispatched == 2

    def test_encode_chunk_mixed_pair_falls_back_to_strings(self):
        from repro.comparison import InternedComparator
        from repro.reading import TokenDictionary
        from repro.types import Comparison, Profile

        d = TokenDictionary()
        with_ids = Profile(
            eid=1,
            attributes=(("t", "a b"),),
            tokens=frozenset({"a", "b"}),
            token_ids=d.intern_set({"a", "b"}),
        )
        without_ids = Profile(
            eid=2, attributes=(("t", "a c"),), tokens=frozenset({"a", "c"})
        )
        config = StreamERConfig(
            comparator=InternedComparator(threshold=0.5),
            classifier=ThresholdClassifier(0.5),
        )
        pipeline = MultiprocessERPipeline(config, workers=1)
        ids_table, str_table, pairs = pipeline._encode_chunk(
            [Comparison(with_ids, without_ids)]
        )
        # Both sides travel as strings so the worker compares like with like.
        assert set(str_table) == {1, 2}
        assert ids_table == {}
        assert pairs == [(1, 2)]

    def test_oracle_classifier_disables_verification(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        from repro.classification import OracleClassifier

        config = StreamERConfig.interned(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=OracleClassifier.from_pairs(ds.ground_truth),
        )
        mp_pipeline = MultiprocessERPipeline(config, workers=2, chunk_size=64)
        assert mp_pipeline._threshold is None
        assert not mp_pipeline._prefilter
        result = mp_pipeline.run(ds.stream())
        assert result.match_pairs == sequential_oracle_pairs(ds)


def sequential_oracle_pairs(ds):
    sequential = StreamERPipeline(config_for(ds), instrument=False)
    sequential.process_many(ds.stream())
    return sequential.cl.matches.pairs()
