"""Tests for the multiprocess comparison executor."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import ConfigurationError
from repro.parallel import MultiprocessERPipeline
from repro.types import EntityDescription


def config_for(dataset, threshold=None):
    classifier = (
        ThresholdClassifier(threshold)
        if threshold is not None
        else OracleClassifier.from_pairs(dataset.ground_truth)
    )
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=classifier,
    )


class TestValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(chunk_size=0)


class TestCorrectness:
    def test_same_matches_as_sequential(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        sequential = StreamERPipeline(config_for(ds), instrument=False)
        sequential.process_many(ds.stream())

        mp_pipeline = MultiprocessERPipeline(config_for(ds), workers=2, chunk_size=64)
        result = mp_pipeline.run(ds.stream())

        assert result.match_pairs == sequential.cl.matches.pairs()
        assert result.entities_processed == len(ds)
        assert result.comparisons_after_cleaning == (
            sequential.cc.retained
        )

    def test_clean_clean(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        mp_pipeline = MultiprocessERPipeline(config_for(ds), workers=2, chunk_size=32)
        result = mp_pipeline.run(ds.stream())
        for i, j in result.match_pairs:
            assert i[0] != j[0]

    def test_single_worker_tiny_chunks(self, paper_entities):
        config = StreamERConfig(
            alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)
        )
        sequential = StreamERPipeline(
            StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)),
            instrument=False,
        )
        sequential.process_many(paper_entities)
        mp_pipeline = MultiprocessERPipeline(config, workers=1, chunk_size=1)
        result = mp_pipeline.run(paper_entities)
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_empty_input(self):
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig(classifier=ThresholdClassifier(0.5)), workers=1
        )
        result = mp_pipeline.run([])
        assert result.entities_processed == 0
        assert result.matches == []

    def test_no_comparisons_at_all(self):
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig(classifier=ThresholdClassifier(0.5)), workers=1
        )
        entities = [
            EntityDescription.create(i, {"a": f"unique{i}"}) for i in range(5)
        ]
        result = mp_pipeline.run(entities)
        assert result.matches == []
        assert result.entities_processed == 5
