"""Tests for the simulator's per-item tracing."""

from __future__ import annotations

import pytest

from repro.core.stages import STAGE_ORDER
from repro.parallel import (
    PipelineSimulator,
    ServiceModel,
    SimulatorConfig,
    allocate_processes,
)


def flat_service(mean=1e-4, cv=0.0, spikes=0.0):
    return ServiceModel(
        mean_seconds={s: mean for s in STAGE_ORDER},
        cv=cv,
        spike_probability=spikes,
        spike_factor=20.0,
    )


def simulator(service, processes=8, **cfg):
    return PipelineSimulator(
        allocate_processes(service.mean_seconds, processes),
        service,
        SimulatorConfig(**cfg),
    )


class TestTraceRecording:
    def test_disabled_by_default(self):
        result = simulator(flat_service()).run_batch(5)
        assert result.trace is None

    def test_records_every_item_and_stage(self):
        result = simulator(flat_service()).run([0.0] * 10, trace=True)
        trace = result.trace
        assert trace is not None
        assert len(trace.wait_seconds) == 10
        for item in range(10):
            assert set(trace.service_seconds[item]) == set(STAGE_ORDER)

    def test_service_plus_wait_equals_latency(self):
        service = flat_service(cv=0.5)
        result = simulator(service, comm_overhead=1e-5).run([0.0] * 20, trace=True)
        trace = result.trace
        assert trace is not None
        for item in range(20):
            breakdown = trace.item_latency_breakdown(item)
            assert sum(breakdown.values()) == pytest.approx(
                result.latencies[item], rel=1e-6
            )

    def test_waits_are_nonnegative(self):
        result = simulator(flat_service(cv=1.0)).run([0.0] * 30, trace=True)
        for per_item in result.trace.wait_seconds:  # type: ignore[union-attr]
            assert all(w >= -1e-12 for w in per_item.values())


class TestPeakAttribution:
    def test_bottleneck_stage_dominates_waits(self):
        means = {s: 1e-5 for s in STAGE_ORDER}
        means["co"] = 5e-4  # 50× the rest: the queue forms in front of co
        service = ServiceModel(mean_seconds=means, cv=0.0, spike_probability=0.0)
        result = simulator(service).run([0.0] * 50, trace=True)
        waits = result.trace.mean_wait_by_stage()  # type: ignore[union-attr]
        assert max(waits, key=lambda s: waits[s]) == "co"

    def test_peak_attribution_counts_slow_items(self):
        service = flat_service(cv=0.5, spikes=0.05)
        result = simulator(service).run([0.0] * 200, trace=True)
        attribution = result.trace.peak_attribution(  # type: ignore[union-attr]
            result.latencies, quantile=0.95
        )
        assert attribution
        assert sum(attribution.values()) >= 10  # the slowest 5% of 200

    def test_dominant_stage_of_empty_breakdown(self):
        from repro.parallel import SimulationTrace

        trace = SimulationTrace(wait_seconds=[{}], service_seconds=[{}])
        assert trace.dominant_stage(0) == ""
        assert trace.peak_attribution([]) == {}
