"""Tests for the thread-based parallel framework."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import PipelineStoppedError
from repro.parallel import ParallelERPipeline


def config_for(dataset, threshold=None):
    classifier = (
        ThresholdClassifier(threshold)
        if threshold is not None
        else OracleClassifier.from_pairs(dataset.ground_truth)
    )
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=classifier,
    )


class TestParallelCorrectness:
    def test_same_matches_as_sequential(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        sequential = StreamERPipeline(config_for(ds), instrument=False)
        sequential.process_many(ds.stream())
        parallel = ParallelERPipeline(config_for(ds), processes=8)
        result = parallel.run(ds.stream())
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_micro_batched_variant_same_matches(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        sequential = StreamERPipeline(config_for(ds), instrument=False)
        sequential.process_many(ds.stream())
        mpp = ParallelERPipeline(
            config_for(ds), processes=12, micro_batch_size=50
        )
        result = mpp.run(ds.stream())
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_clean_clean_parallel(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        parallel = ParallelERPipeline(config_for(ds), processes=9)
        result = parallel.run(ds.stream())
        for i, j in result.match_pairs:
            assert i[0] != j[0]

    def test_replicated_stages_with_many_processes(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        parallel = ParallelERPipeline(config_for(ds), processes=16)
        assert parallel.allocation["co"] > 1  # actually replicated
        result = parallel.run(ds.stream())
        assert result.entities_processed == len(ds)


class TestLifecycle:
    def test_latencies_recorded(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        parallel = ParallelERPipeline(config_for(ds, threshold=0.9), processes=8)
        result = parallel.run(list(ds.stream())[:50])
        assert len(result.latencies) == 50
        assert all(l >= 0 for l in result.latencies)

    def test_submit_after_close_raises(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        entities = list(ds.stream())
        parallel = ParallelERPipeline(config_for(ds, threshold=0.9), processes=8)
        parallel.submit(entities[0])
        parallel.close()
        with pytest.raises(PipelineStoppedError):
            parallel.submit(entities[1])
        parallel.join()

    def test_empty_input(self, tiny_dirty_dataset):
        parallel = ParallelERPipeline(
            config_for(tiny_dirty_dataset, threshold=0.9), processes=8
        )
        result = parallel.run([])
        assert result.entities_processed == 0
        assert result.matches == []


class TestReorderBuffer:
    """The serializer's re-sequencing: submission order, holes, drains."""

    def test_in_order_arrivals_flow_straight_through(self):
        from repro.parallel.framework import _ReorderBuffer

        buffer = _ReorderBuffer()
        for seq in range(5):
            ready = buffer.admit(seq, (0.0, seq, f"e{seq}"))
            assert [r[1] for r in ready] == [seq]

    def test_out_of_order_arrivals_are_buffered_until_ready(self):
        from repro.parallel.framework import _ReorderBuffer

        buffer = _ReorderBuffer()
        assert buffer.admit(2, (0.0, 2, "e2")) == []
        assert buffer.admit(1, (0.0, 1, "e1")) == []
        ready = buffer.admit(0, (0.0, 0, "e0"))
        assert [r[1] for r in ready] == [0, 1, 2]

    def test_holes_never_block_later_items(self):
        from repro.parallel.framework import _ReorderBuffer

        buffer = _ReorderBuffer()
        assert buffer.admit(1, (0.0, 1, "e1")) == []
        buffer.hole(0)
        ready = buffer.drain_ready()
        assert [r[1] for r in ready] == [1]

    def test_hole_declared_before_arrivals(self):
        from repro.parallel.framework import _ReorderBuffer

        buffer = _ReorderBuffer()
        buffer.hole(0)
        buffer.hole(2)
        assert [r[1] for r in buffer.admit(1, (0.0, 1, "e1"))] == [1]
        assert [r[1] for r in buffer.admit(3, (0.0, 3, "e3"))] == [3]

    def test_serializer_sees_submission_order_despite_replicated_dr(
        self, tiny_dirty_dataset
    ):
        ds = tiny_dirty_dataset
        seen: list = []
        pipeline = ParallelERPipeline(config_for(ds), processes=16)
        assert pipeline.allocation["dr"] >= 1
        inner_bb = pipeline._runners[1].fn

        def spying_bb(profile, _inner=inner_bb):
            seen.append(profile.eid)
            return _inner(profile)

        pipeline._runners[1].fn = spying_bb
        entities = list(ds.stream())
        pipeline.run(entities)
        assert seen == [e.eid for e in entities]
