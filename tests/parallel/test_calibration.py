"""Tests for simulator calibration."""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig
from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel import calibrate_service_model, default_simulator_config
from repro.types import EntityDescription


def sample(n=60):
    return [
        EntityDescription.create(i, {"t": f"token{i % 9} common words here"})
        for i in range(n)
    ]


def config():
    return StreamERConfig(alpha=100, beta=0.1, classifier=ThresholdClassifier(0.9))


class TestCalibrateServiceModel:
    def test_covers_all_stages_with_positive_total(self):
        service = calibrate_service_model(sample(), config())
        assert set(service.mean_seconds) == set(STAGE_ORDER)
        assert service.mean_total() > 0

    def test_requires_entities(self):
        with pytest.raises(ConfigurationError):
            calibrate_service_model([], config())

    def test_cv_and_seed_passed_through(self):
        service = calibrate_service_model(sample(), config(), cv=0.5, seed=7)
        assert service.cv == 0.5
        assert service.seed == 7

    def test_means_scale_with_workload(self):
        light = calibrate_service_model(sample(30), config())
        heavy_entities = [
            EntityDescription.create(
                i, {f"a{k}": f"tok{i % 9}{k} more words" for k in range(12)}
            )
            for i in range(30)
        ]
        heavy = calibrate_service_model(heavy_entities, config())
        assert heavy.mean_total() > light.mean_total()


class TestDefaultSimulatorConfig:
    def test_plain_defaults(self):
        service = calibrate_service_model(sample(), config())
        sim_cfg = default_simulator_config(service)
        assert sim_cfg.buffer_capacity == 16
        assert sim_cfg.micro_batch_size == 1
        assert sim_cfg.comm_overhead == pytest.approx(0.05 * service.mean_total())

    def test_micro_batched_capacity_scales(self):
        service = calibrate_service_model(sample(), config())
        sim_cfg = default_simulator_config(service, micro_batch_size=100)
        assert sim_cfg.buffer_capacity == 150
        assert sim_cfg.micro_batch_size == 100

    def test_core_override(self):
        service = calibrate_service_model(sample(), config())
        assert default_simulator_config(service, cores=4).cores == 4
