"""Fault-injection harness: determinism, retries, dead-letter routing.

Every parallel run here is guarded with ``run(..., timeout=...)`` so a
reintroduced shutdown bug fails the test instead of hanging the suite.
"""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline, SupervisionPolicy
from repro.core.monitoring import PipelineMonitor
from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError, InjectedFault
from repro.parallel import (
    FaultInjector,
    FaultSpec,
    MultiprocessERPipeline,
    ParallelERPipeline,
    PipelineSimulator,
    ServiceModel,
)

RUN_TIMEOUT = 60.0

_WORDS = ["glass", "panel", "wood", "fibre", "roof", "window", "door", "steel"]


def make_entities(n: int):
    from repro.types import EntityDescription

    return [
        EntityDescription.create(
            i, {"title": " ".join(_WORDS[(i + j) % len(_WORDS)] for j in range(3))}
        )
        for i in range(n)
    ]


def config():
    return StreamERConfig(alpha=100, beta=0.5, classifier=ThresholdClassifier(0.4))


class TestInjectorDeterminism:
    def _faulted(self, order):
        inj = FaultInjector(
            lambda p: p, FaultSpec(probability=0.4, seed=7), stage="co",
            key_fn=lambda p: p,
        )
        for item in order:
            try:
                inj(item)
            except InjectedFault:
                pass
        return inj.faulted_keys

    def test_same_keys_regardless_of_call_order(self):
        keys = list(range(300))
        forward = self._faulted(keys)
        backward = self._faulted(list(reversed(keys)))
        assert forward == backward
        # roughly the requested fraction, and neither empty nor everything
        assert 60 <= len(forward) <= 180

    def test_different_seeds_fault_different_items(self):
        def run(seed):
            inj = FaultInjector(
                lambda p: p, FaultSpec(probability=0.5, seed=seed), stage="co",
                key_fn=lambda p: p,
            )
            for item in range(200):
                try:
                    inj(item)
                except InjectedFault:
                    pass
            return inj.faulted_keys

        assert run(1) != run(2)

    def test_every_n_faults_exact_count(self):
        inj = FaultInjector(
            lambda p: p, FaultSpec(every_n=3), stage="co", key_fn=lambda p: p
        )
        failures = 0
        for item in range(30):
            try:
                inj(item)
            except InjectedFault:
                failures += 1
        assert failures == 10
        assert inj.calls == 30
        assert inj.faults_injected == 10

    def test_memoized_decision_is_stable_across_retries(self):
        inj = FaultInjector(
            lambda p: p, FaultSpec(probability=0.5, seed=3), stage="co",
            key_fn=lambda p: p,
        )
        for item in range(50):
            outcomes = []
            for _attempt in range(3):
                try:
                    inj(item)
                    outcomes.append(True)
                except InjectedFault:
                    outcomes.append(False)
            assert len(set(outcomes)) == 1  # permanent fault or permanently fine


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 1.5},
            {"probability": -0.1},
            {"mode": "explode"},
            {"delay_seconds": -1.0},
            {"transient_attempts": -1},
            {"every_n": 0},
        ],
    )
    def test_rejects_bad_spec(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)

    def test_unknown_stage_in_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelERPipeline(config(), faults={"nope": FaultSpec()})
        with pytest.raises(ConfigurationError):
            MultiprocessERPipeline(config(), faults={"nope": FaultSpec()})


class TestSupervisionPolicy:
    def test_backoff_schedule_capped(self):
        policy = SupervisionPolicy(
            backoff_seconds=0.01, backoff_multiplier=2.0, max_backoff_seconds=0.03
        )
        assert policy.backoff_for(1) == pytest.approx(0.01)
        assert policy.backoff_for(2) == pytest.approx(0.02)
        assert policy.backoff_for(3) == pytest.approx(0.03)
        assert policy.backoff_for(4) == pytest.approx(0.03)

    def test_non_idempotent_stage_never_retried(self):
        policy = SupervisionPolicy(max_retries=5)
        assert policy.retries_for("bb+bp") == 0
        assert policy.retries_for("co") == 5

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(backoff_multiplier=0.5)


class TestRetriesAndDeadLetters:
    def test_transient_fault_healed_by_retry(self):
        entities = make_entities(40)
        sequential = StreamERPipeline(config(), instrument=False)
        sequential.process_many(entities)

        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            supervision=SupervisionPolicy(max_retries=2),
            faults={"co": FaultSpec(probability=1.0, transient_attempts=1)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.items_failed == 0
        assert result.retries == len(entities)  # each item faulted exactly once
        assert result.match_pairs == sequential.cl.matches.pairs()

    def test_permanent_faults_exhaust_retry_budget(self):
        entities = make_entities(30)
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            supervision=SupervisionPolicy(max_retries=2),
            faults={"dr": FaultSpec(probability=0.5, seed=3)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.items_failed > 0
        assert result.retries == 2 * result.items_failed
        for letter in result.dead_letters:
            assert letter.stage == "dr"
            assert letter.attempts == 3
            assert "InjectedFault" in letter.error

    def test_dead_letter_routing(self):
        entities = make_entities(40)
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=0.4, seed=11)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        input_ids = {e.eid for e in entities}
        assert result.entities_processed == len(entities)
        assert 0 < result.items_failed < len(entities)
        assert result.items_failed == len(result.dead_letters)
        assert result.dead_letter_ids <= input_ids
        # pipeline-level counters match the result (monitoring hooks)
        assert pipeline.items_failed == result.items_failed
        assert pipeline.supervisor.failures_by_stage == {"dr": result.items_failed}

    def test_corrupted_payload_is_dead_lettered_not_fatal(self):
        entities = make_entities(25)
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            supervision=SupervisionPolicy.none(),
            faults={"cg": FaultSpec(probability=0.3, seed=2, mode="corrupt")},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.items_failed > 0
        for letter in result.dead_letters:
            assert letter.stage == "cg"

    def test_delay_faults_do_not_change_results(self):
        entities = make_entities(30)
        sequential = StreamERPipeline(config(), instrument=False)
        sequential.process_many(entities)
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            faults={"lm": FaultSpec(probability=1.0, mode="delay", delay_seconds=0.001)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.items_failed == 0
        assert result.match_pairs == sequential.cl.matches.pairs()


class TestTotalFailureRegression:
    """A 100%-failing stage must not hang ``run()`` — the seed deadlock."""

    def test_all_items_fail_at_first_stage(self):
        entities = make_entities(50)
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=1.0)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.entities_processed == len(entities)
        assert result.items_failed == len(entities)
        assert result.matches == []

    def test_all_items_fail_at_comparison_stage(self):
        entities = make_entities(50)
        pipeline = ParallelERPipeline(
            config(),
            processes=12,
            micro_batch_size=10,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(probability=1.0)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.items_failed == len(entities)
        assert result.matches == []

    def test_every_nth_item_raising_completes(self):
        entities = make_entities(40)
        pipeline = ParallelERPipeline(
            config(),
            processes=8,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(every_n=4)},
        )
        result = pipeline.run(entities, timeout=RUN_TIMEOUT)
        assert result.items_failed == len(entities) // 4
        assert all(d.stage == "co" for d in result.dead_letters)


class TestMultiprocessFaults:
    def test_worker_fault_injection_dead_letters_pairs(self):
        entities = make_entities(40)
        pipeline = MultiprocessERPipeline(
            config(),
            workers=2,
            chunk_size=16,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(probability=0.3, seed=5)},
        )
        result = pipeline.run(entities)
        assert result.items_failed > 0
        for letter in result.dead_letters:
            assert letter.stage == "co"
            assert isinstance(letter.entity_id, tuple)  # canonical pair key
        # Accounting under faults: the dispatch counter moved out of
        # _encode_chunk, so retries and dead letters must not double- or
        # under-count — every cleaned pair was dispatched exactly once
        # (profiles mode has no prefilter).
        assert pipeline.pairs_prefiltered == 0
        assert (
            pipeline.pairs_dispatched + pipeline.pairs_prefiltered
            == result.comparisons_after_cleaning
        )

    def test_front_fault_injection_dead_letters_entities(self):
        entities = make_entities(40)
        pipeline = MultiprocessERPipeline(
            config(),
            workers=2,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=0.4, seed=9)},
        )
        result = pipeline.run(entities)
        assert result.entities_processed == len(entities)
        assert 0 < result.items_failed < len(entities)
        assert result.dead_letter_ids <= {e.eid for e in entities}


class TestSimulatorFaults:
    def _model(self, probability):
        return ServiceModel(
            mean_seconds={s: 0.001 for s in STAGE_ORDER},
            failure_probability=probability,
            seed=1,
        )

    def test_failure_probability_validated(self):
        with pytest.raises(ConfigurationError):
            self._model(1.5)

    def test_no_faults_by_default(self):
        result = PipelineSimulator(
            {s: 2 for s in STAGE_ORDER}, self._model(0.0)
        ).run_batch(100)
        assert result.items_failed == 0
        assert result.dead_letters == []
        assert len(result.completion_times) == 100

    def test_failed_items_are_dead_lettered_deterministically(self):
        allocation = {s: 2 for s in STAGE_ORDER}
        first = PipelineSimulator(allocation, self._model(0.1)).run_batch(200)
        second = PipelineSimulator(allocation, self._model(0.1)).run_batch(200)
        assert first.items_failed > 0
        assert first.items_failed + len(first.completion_times) == 200
        assert sorted(first.dead_letters) == sorted(second.dead_letters)
        assert all(stage in STAGE_ORDER for _, stage in first.dead_letters)

    def test_total_failure_completes_with_zero_output(self):
        result = PipelineSimulator(
            {s: 2 for s in STAGE_ORDER}, self._model(1.0)
        ).run_batch(50)
        assert result.items_failed == 50
        assert result.completion_times == []


class TestSequentialDeadLetterMode:
    def _poisoned(self, n, bad_every):
        entities = make_entities(n)
        # Malform every k-th entity so the data-reading stage raises on it.
        out = []
        for i, entity in enumerate(entities):
            if i % bad_every == 0:
                out.append(
                    type(entity)(eid=entity.eid, attributes=((1, 2),))  # type: ignore[arg-type]
                )
            else:
                out.append(entity)
        return out

    def test_raise_mode_propagates(self):
        pipeline = StreamERPipeline(config(), instrument=False)
        with pytest.raises(Exception):
            pipeline.process_many(self._poisoned(10, 1))

    def test_dead_letter_mode_survives_poison_entities(self):
        entities = self._poisoned(30, 5)
        pipeline = StreamERPipeline(config(), instrument=False)
        result = pipeline.process_many(entities, on_error="dead_letter")
        assert result.entities_processed == 30
        assert result.items_failed == 6
        assert result.dead_letter_ids == {e.eid for i, e in enumerate(entities) if i % 5 == 0}
        assert pipeline.items_failed == 6

    def test_invalid_on_error_rejected(self):
        pipeline = StreamERPipeline(config(), instrument=False)
        with pytest.raises(ConfigurationError):
            pipeline.process_many([], on_error="ignore")

    def test_monitor_snapshot_exposes_failure_counters(self):
        entities = self._poisoned(20, 4)
        pipeline = StreamERPipeline(config(), instrument=False)
        pipeline.process_many(entities, on_error="dead_letter")
        snap = PipelineMonitor(pipeline, interval=1000).snapshot()
        assert snap.items_failed == 5
        assert "dead-lettered" in snap.summary()
