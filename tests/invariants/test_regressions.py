"""Shrunk regression cases for state-drift bugs the invariant checker found.

The sliding-window pipeline mishandled *re-arrivals*: an identifier seen
again while still inside the window got a second slot in the eviction
queue while ``_keys_of`` was overwritten.  Evicting the first slot then
retired the live entity's profile and block memberships — later arrivals
sharing a block with it hit ``UnknownProfileError``, and in other
interleavings the state kept stale block memberships that
``blocked-entities-have-profiles`` flags.  The cases below are the
minimal streams that reproduced it.
"""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import InvariantViolation
from repro.invariants import InvariantChecker
from repro.streaming import SlidingWindowERPipeline
from repro.types import EntityDescription


def config() -> StreamERConfig:
    return StreamERConfig(alpha=1000, beta=0.3, classifier=ThresholdClassifier(0.3))


def check_state_of(pipeline: StreamERPipeline) -> InvariantChecker:
    checker = InvariantChecker(mode="raise")
    checker.bind(pipeline.config, pipeline.backend)
    checker.check_state()
    return checker


class TestWindowReArrivalRegression:
    """Minimal counterexample: window=2, stream e1 e2 e1' e3 e4.

    Pre-fix, e1's re-arrival left two queue slots for id 1; e3's arrival
    evicted the first slot and with it the *live* profile and blocks of 1,
    so e4 (sharing a block with 1) failed with ``UnknownProfileError``.
    """

    STREAM = [
        EntityDescription.create(1, {"desc": "glass roof"}),
        EntityDescription.create(2, {"desc": "steel frame"}),
        EntityDescription.create(1, {"desc": "glass roof panel"}),
        EntityDescription.create(3, {"desc": "wood door"}),
        EntityDescription.create(4, {"desc": "glass roof panel"}),
    ]

    def test_rearrival_does_not_corrupt_the_window(self):
        window = SlidingWindowERPipeline(config(), window=2)
        matches = window.process_many(self.STREAM)
        assert {m.key() for m in matches} == {(1, 4)}
        assert window.current_window == [3, 4]

    def test_rearrival_gets_a_fresh_slot_not_a_second_one(self):
        window = SlidingWindowERPipeline(config(), window=3)
        for entity in self.STREAM[:3]:
            window.process(entity)
        assert window.current_window == [2, 1]
        assert window.stats.evicted_entities == 0

    def test_state_invariants_hold_after_rearrivals(self):
        window = SlidingWindowERPipeline(config(), window=2)
        window.process_many(self.STREAM)
        checker = check_state_of(window.pipeline)
        assert not checker.violations
        assert checker.checks_performed > 0

    def test_invariant_catches_the_prefix_corruption_pattern(self):
        """The bug's signature — a blocked id with no profile — is exactly
        what ``blocked-entities-have-profiles`` rejects."""
        window = SlidingWindowERPipeline(config(), window=2)
        window.process_many(self.STREAM)
        # Reproduce the pre-fix effect by hand: drop a live profile while
        # its block memberships survive.
        live = window.current_window[0]
        window.pipeline.lm.profiles.remove(live)
        with pytest.raises(InvariantViolation) as excinfo:
            check_state_of(window.pipeline)
        assert excinfo.value.invariant == "blocked-entities-have-profiles"

    def test_eviction_stats_distinguish_retire_from_evict(self):
        """A re-arrival retires old state but is not a window eviction."""
        window = SlidingWindowERPipeline(config(), window=10)
        window.process_many(self.STREAM[:3])  # e1 e2 e1'
        assert window.stats.evicted_entities == 0
        assert window.stats.removed_assignments > 0  # e1's old blocks


class TestBlockCounterDrift:
    """The O(1) counters must survive any interleaving of the three
    sanctioned mutations (add / discard / remove_block) — the recounting
    invariant is the oracle."""

    def test_randomized_mutation_sequence_keeps_counters_exact(self):
        import random

        from repro.core.state import BlockCollection
        from repro.invariants import StateView, get_invariant

        rng = random.Random(2021)
        blocks = BlockCollection()
        keys = [f"k{i}" for i in range(6)]
        check = get_invariant("block-counters-consistent").check
        for step in range(300):
            op = rng.random()
            key = rng.choice(keys)
            if op < 0.6:
                blocks.add(key, rng.randrange(20))
            elif op < 0.9:
                members = blocks.block(key)
                eid = rng.choice(members) if members else rng.randrange(20)
                blocks.discard(key, eid)
            else:
                blocks.remove_block(key)
            if step % 25 == 0:
                view = StateView(
                    config=None,
                    backend=type("B", (), {"blocks": blocks})(),
                )
                check(view)  # raises InvariantViolation on drift

    def test_windowed_eviction_keeps_counters_exact(self):
        vocab = ["glass", "panel", "wood", "roof", "steel", "frame"]
        stream = [
            EntityDescription.create(
                i, {"desc": f"{vocab[i % 6]} {vocab[(i + 2) % 6]}"}
            )
            for i in range(30)
        ]
        window = SlidingWindowERPipeline(config(), window=5)
        window.process_many(stream)
        assert window.stats.evicted_entities == 25
        checker = check_state_of(window.pipeline)
        assert not checker.violations
