"""The invariant checker: registry, enforcement modes, executor wiring."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import ConfigurationError, InvariantViolation
from repro.invariants import (
    CheckedStage,
    InvariantChecker,
    StateView,
    get_invariant,
    invariant_names,
    invariants_for,
)
from repro.types import EntityDescription, Match, Profile


def small_config(**overrides) -> StreamERConfig:
    kwargs = dict(alpha=1000, beta=0.3, classifier=ThresholdClassifier(0.3))
    kwargs.update(overrides)
    return StreamERConfig(**kwargs)


def small_stream(n: int = 8) -> list[EntityDescription]:
    vocab = ["glass", "panel", "wood", "roof", "steel"]
    return [
        EntityDescription.create(
            i, {"title": f"{vocab[i % len(vocab)]} {vocab[(i + 1) % len(vocab)]}"}
        )
        for i in range(n)
    ]


class TestRegistry:
    def test_every_scope_is_populated(self):
        scopes = {get_invariant(name).scope for name in invariant_names()}
        assert scopes == {"state", "stage", "run", "simulation"}

    def test_expected_invariants_registered(self):
        names = set(invariant_names())
        assert {
            "block-counters-consistent",
            "block-sizes-bounded",
            "blacklist-excludes-blocks",
            "dictionary-bijective",
            "blocked-entities-have-profiles",
            "match-store-consistent",
            "cg-no-self-pairs",
            "cl-no-self-matches",
            "run-failure-accounting",
            "sim-item-conservation",
        } <= names

    def test_stage_scope_filtering(self):
        assert invariants_for("stage", "cg")
        assert not invariants_for("stage", "no-such-stage")
        assert all(inv.scope == "state" for inv in invariants_for("state"))

    def test_descriptions_present(self):
        for name in invariant_names():
            assert get_invariant(name).description


class TestCheckerConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            InvariantChecker(mode="audit")

    def test_rejects_nonpositive_state_every(self):
        with pytest.raises(ConfigurationError):
            InvariantChecker(state_every=0)

    def test_unbound_checker_is_inert(self):
        checker = InvariantChecker()
        checker.check_state()
        checker.check_result(object())
        assert checker.checks_performed == 0


class TestSequentialEnforcement:
    def test_clean_run_has_no_violations(self):
        checker = InvariantChecker(mode="raise", state_every=2)
        pipeline = StreamERPipeline(small_config(), checker=checker)
        pipeline.process_many(small_stream())
        checker.finalize(
            pipeline.summary(), expected_entities=pipeline.entities_processed
        )
        assert not checker.violations
        assert checker.checks_performed > 0

    def test_corrupted_counter_raises(self):
        checker = InvariantChecker(mode="raise")
        pipeline = StreamERPipeline(small_config(), checker=checker)
        pipeline.process_many(small_stream())
        # Simulate counter drift: bump a size without touching the block.
        blocks = pipeline.backend.blocks
        key = next(iter(blocks.keys()))
        blocks._sizes[key] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_state()
        assert excinfo.value.invariant == "block-counters-consistent"

    def test_stale_block_membership_raises(self):
        checker = InvariantChecker(mode="raise")
        pipeline = StreamERPipeline(small_config(), checker=checker)
        pipeline.process_many(small_stream())
        # The pre-fix windowing corruption pattern: a blocked identifier
        # whose profile has been dropped.
        pipeline.backend.blocks.add("glass", 999)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_state()
        assert excinfo.value.invariant == "blocked-entities-have-profiles"
        assert "999" in excinfo.value.detail

    def test_dead_lettered_entities_are_exempt(self):
        checker = InvariantChecker(mode="raise")
        pipeline = StreamERPipeline(small_config(), checker=checker)
        pipeline.process_many(small_stream())
        pipeline.backend.blocks.add("glass", 999)
        checker.exempt_provider = lambda: {999}
        checker.check_state()
        assert not checker.violations

    def test_record_mode_accumulates_without_raising(self):
        checker = InvariantChecker(mode="record")
        pipeline = StreamERPipeline(small_config(), checker=checker)
        pipeline.process_many(small_stream())
        blocks = pipeline.backend.blocks
        blocks.add("glass", 999)  # stale membership: no profile for 999
        blocks._sizes[next(iter(blocks.keys()))] += 1  # counter drift
        checker.check_state()
        assert {v.invariant for v in checker.violations} >= {
            "blocked-entities-have-profiles",
            "block-counters-consistent",
        }
        assert "invariant violation" in checker.report()
        with pytest.raises(InvariantViolation):
            checker.raise_if_violated()

    def test_oversized_block_violates_alpha_bound(self):
        checker = InvariantChecker(mode="record")
        config = small_config(alpha=3, enable_block_cleaning=True)
        pipeline = StreamERPipeline(config, checker=checker)
        pipeline.process_many(small_stream(4))
        for eid in range(100, 105):
            pipeline.backend.profiles.put(
                Profile(eid=eid, attributes=(), tokens=frozenset({"glass"}))
            )
            pipeline.backend.blocks.add("glass", eid)
        checker.check_state()
        assert any(
            v.invariant == "block-sizes-bounded" for v in checker.violations
        )


class TestStageEnforcement:
    def test_self_match_in_cl_output_detected(self):
        checker = InvariantChecker(mode="record")
        checker.bind(small_config(), backend=object())
        checker.observe_stage("cl", [Match(left=1, right=1, similarity=1.0)])
        assert [v.invariant for v in checker.violations] == ["cl-no-self-matches"]
        assert checker.violations[0].stage == "cl"

    def test_stage_without_invariants_checks_nothing(self):
        checker = InvariantChecker(mode="raise")
        checker.bind(small_config(), backend=object())
        checker.observe_stage("no-such-stage", object())
        assert checker.checks_performed == 0


class TestCompilation:
    def test_enabled_checker_wraps_stages(self):
        checker = InvariantChecker(mode="record")
        pipeline = StreamERPipeline(small_config(), checker=checker)
        assert isinstance(pipeline.cg, CheckedStage)
        pipeline.process_many(small_stream(4))
        # Attribute delegation chains through the wrapper.
        assert pipeline.cg.generated >= 0

    def test_disabled_checker_leaves_stages_unwrapped(self):
        checker = InvariantChecker(enabled=False)
        pipeline = StreamERPipeline(small_config(), checker=checker)
        assert pipeline.checker is None
        assert not isinstance(pipeline.cg, CheckedStage)

    def test_no_checker_by_default(self):
        pipeline = StreamERPipeline(small_config())
        assert pipeline.checker is None
        assert not isinstance(pipeline.cg, CheckedStage)

    def test_checked_run_produces_identical_matches(self):
        entities = small_stream(12)
        plain = StreamERPipeline(small_config())
        plain.process_many(entities)
        checked = StreamERPipeline(
            small_config(), checker=InvariantChecker(mode="raise", state_every=3)
        )
        checked.process_many(entities)
        assert checked.cl.matches.pairs() == plain.cl.matches.pairs()


class TestConcurrentDeferral:
    def test_raise_is_deferred_to_finalize(self):
        checker = InvariantChecker(mode="raise", concurrent=True)
        checker.bind(small_config(), backend=object())
        # Inside a worker a raise would be swallowed into the dead-letter
        # queue; concurrent mode records instead...
        checker.observe_stage("cl", [Match(left=2, right=2, similarity=1.0)])
        assert checker.violations
        # ...and finalize (called after workers join) re-raises it.
        with pytest.raises(InvariantViolation) as excinfo:
            checker.raise_if_violated()
        assert excinfo.value.invariant == "cl-no-self-matches"


class TestSimulationScope:
    def test_item_conservation_violation(self):
        checker = InvariantChecker(mode="record")
        result = SimpleNamespace(
            admitted=5,
            items_failed=0,
            completion_times=[1.0] * 5,
            latencies=[0.1] * 5,
            stage_busy_seconds={"dr": 1.0},
            makespan=2.0,
        )
        checker.check_simulation(result, n_items=6)
        assert [v.invariant for v in checker.violations] == ["sim-item-conservation"]

    def test_consistent_simulation_passes(self):
        checker = InvariantChecker(mode="raise")
        result = SimpleNamespace(
            admitted=6,
            items_failed=0,
            completion_times=[1.0] * 6,
            latencies=[0.1] * 6,
            stage_busy_seconds={"dr": 1.0},
            makespan=2.0,
        )
        checker.check_simulation(result, n_items=6)
        assert not checker.violations


class TestStateViewExemptions:
    def test_exempt_set_reaches_the_view(self):
        view = StateView(config=None, backend=None, exempt=frozenset({1}))
        assert 1 in view.exempt
