"""Unit tests for the core value types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import (
    Comparison,
    EntityDescription,
    Match,
    Profile,
    ScoredComparison,
    StageTimings,
    pair_key,
)


class TestEntityDescription:
    def test_create_from_mapping(self):
        e = EntityDescription.create(1, {"a": "x", "b": "y"})
        assert e.eid == 1
        assert e.attributes == (("a", "x"), ("b", "y"))

    def test_create_from_pairs_preserves_order_and_duplicates(self):
        pairs = [("name", "x"), ("name", "y"), ("z", "1")]
        e = EntityDescription.create("id", pairs)
        assert e.attributes == (("name", "x"), ("name", "y"), ("z", "1"))

    def test_values(self):
        e = EntityDescription.create(1, [("a", "x"), ("b", "y")])
        assert e.values() == ("x", "y")

    def test_is_hashable_and_frozen(self):
        e = EntityDescription.create(1, {"a": "x"})
        assert hash(e) == hash(EntityDescription.create(1, {"a": "x"}))
        with pytest.raises(AttributeError):
            e.eid = 2  # type: ignore[misc]

    def test_create_coerces_non_string_values(self):
        e = EntityDescription.create(1, [("year", 1999)])  # type: ignore[list-item]
        assert e.attributes == (("year", "1999"),)


class TestPairKey:
    def test_orders_ints(self):
        assert pair_key(3, 1) == (1, 3)
        assert pair_key(1, 3) == (1, 3)

    def test_orders_tuples(self):
        assert pair_key(("y", 1), ("x", 2)) == (("x", 2), ("y", 1))

    def test_mixed_unorderable_types_fall_back_to_repr(self):
        a, b = 1, ("x", 2)
        assert pair_key(a, b) == pair_key(b, a)

    @given(st.integers(), st.integers())
    def test_symmetric_for_any_ints(self, a, b):
        assert pair_key(a, b) == pair_key(b, a)


class TestComparisonAndMatch:
    def _profiles(self):
        p1 = Profile(eid=1, attributes=(("a", "x"),), tokens=frozenset({"x"}))
        p2 = Profile(eid=2, attributes=(("a", "y"),), tokens=frozenset({"y"}))
        return p1, p2

    def test_comparison_ids_and_key(self):
        p1, p2 = self._profiles()
        c = Comparison(left=p2, right=p1)
        assert c.ids == (2, 1)
        assert c.key() == (1, 2)

    def test_scored_comparison_carries_similarity(self):
        p1, p2 = self._profiles()
        s = ScoredComparison(comparison=Comparison(left=p1, right=p2), similarity=0.75)
        assert s.similarity == 0.75

    def test_match_key_is_canonical(self):
        assert Match(left=9, right=2).key() == (2, 9)


class TestStageTimings:
    def test_add_accumulates(self):
        t = StageTimings()
        t.add("co", 1.0)
        t.add("co", 0.5)
        assert t.seconds["co"] == pytest.approx(1.5)

    def test_total_and_share(self):
        t = StageTimings()
        t.add("a", 3.0)
        t.add("b", 1.0)
        assert t.total() == pytest.approx(4.0)
        assert t.share() == {"a": pytest.approx(0.75), "b": pytest.approx(0.25)}

    def test_share_of_empty_timings(self):
        assert StageTimings().share() == {}
