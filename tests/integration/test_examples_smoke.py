"""Smoke test: the quickstart example runs and finds the paper's matches."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def test_quickstart_runs_and_reports_matches():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "('e1', 'e3')" in proc.stdout  # the paper's match
    assert "('e2', 'e4')" in proc.stdout
    assert "blocks pruned" in proc.stdout


def test_all_examples_are_syntactically_valid():
    import py_compile

    for path in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(path), doraise=True)
