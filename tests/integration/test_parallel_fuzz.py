"""Property-based fuzz: the thread framework agrees with SEQ on any input."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.parallel import ParallelERPipeline
from repro.types import EntityDescription

tokens = st.sampled_from(
    ["glass", "panel", "wood", "fibre", "roof", "window", "door", "steel",
     "lamp", "chair"]
)
values = st.lists(tokens, min_size=1, max_size=5).map(" ".join)
attributes = st.dictionaries(
    st.sampled_from(["title", "material", "part"]), values, min_size=1, max_size=3
)


@st.composite
def entity_batches(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    return [EntityDescription.create(i, draw(attributes)) for i in range(n)]


@given(
    entities=entity_batches(),
    alpha=st.sampled_from([3, 8, 1000]),
    beta=st.sampled_from([0.1, 0.6]),
    processes=st.sampled_from([8, 12]),
    batch=st.sampled_from([1, 7]),
)
@settings(max_examples=20, deadline=None)
def test_parallel_framework_matches_sequential(entities, alpha, beta, processes, batch):
    def config():
        return StreamERConfig(
            alpha=alpha, beta=beta, classifier=ThresholdClassifier(0.4)
        )

    sequential = StreamERPipeline(config(), instrument=False)
    sequential.process_many(entities)

    parallel = ParallelERPipeline(
        config(), processes=processes, micro_batch_size=batch
    )
    result = parallel.run(entities)

    assert result.match_pairs == sequential.cl.matches.pairs()
    assert result.entities_processed == len(entities)
