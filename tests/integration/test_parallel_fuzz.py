"""Property-based fuzz: the thread framework agrees with SEQ on any input.

Runs on the in-repo proptest engine (seeded, shrinking, replayable) — the
generated :class:`~repro.proptest.ERCase` carries the stream and the α/β/
threshold knobs, and the salt picks the parallelism degree, so a failure
report pins every varying input of the differential run.
"""

from __future__ import annotations

import pytest

from repro.core import StreamERPipeline
from repro.parallel import ParallelERPipeline
from repro.proptest import ERCase, Property, er_cases, run_property

RUN_TIMEOUT = 120.0
SEED = 2021


def check_parallel_matches_sequential(case: ERCase) -> None:
    sequential = StreamERPipeline(case.config(), instrument=False)
    sequential.process_many(list(case.entities))

    salt = case.salt
    parallel = ParallelERPipeline(
        case.config(),
        processes=(8, 12)[salt % 2],
        micro_batch_size=(1, 7)[(salt >> 1) % 2],
    )
    result = parallel.run(list(case.entities), timeout=RUN_TIMEOUT)

    assert result.items_failed == 0, f"{result.items_failed} dead letters"
    assert result.match_pairs == sequential.cl.matches.pairs()
    assert result.entities_processed == len(case.entities)


def test_parallel_framework_matches_sequential():
    report = run_property(
        Property(
            "parallel-framework-matches-sequential",
            er_cases(alphas=(3, 8, 1000), betas=(0.1, 0.6), thresholds=(0.4,)),
            check_parallel_matches_sequential,
        ),
        seed=SEED,
        examples=20,
        shrink_budget=150,
    )
    if report.failure is not None:
        pytest.fail(report.failure.describe())
