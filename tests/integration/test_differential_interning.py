"""Differential correctness of the interned kernel, end to end.

The interning layer (token dictionary at ``f_dr``, id-set kernel at
``f_co``, compact multiprocess dispatch) is an execution strategy, not a
semantic change: on the same stream, every interned configuration must
produce *exactly* the match set of the string-set baseline.  This suite
pins that across

* dirty and clean-clean ER,
* the length prefilter on and off,
* threshold and oracle classification (oracle disables verification, so
  the kernel runs in emit-everything mode), and
* sequential versus multiprocess execution with compact id dispatch.

plus the state-persistence round trip, where token ids are deliberately
*not* serialized (they are dictionary-relative) and must be re-interned on
load.
"""

from __future__ import annotations

import io

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.persistence import dump_state, load_state
from repro.datasets import DatasetSpec, generate
from repro.parallel import MultiprocessERPipeline

THRESHOLD = 0.5


@pytest.fixture(scope="module", params=["dirty", "clean-clean"])
def dataset(request):
    if request.param == "dirty":
        spec = DatasetSpec(
            name="interning-dirty", kind="dirty", size=200, matches=120,
            avg_attributes=4.0, heterogeneity=0.4, vocab_rare=2500, seed=11,
        )
    else:
        spec = DatasetSpec(
            name="interning-clean", kind="clean-clean", size=(90, 110),
            matches=70, avg_attributes=4.0, heterogeneity=0.4,
            vocab_rare=2500, seed=12,
        )
    return generate(spec)


def base_kwargs(dataset, classifier):
    return {
        "alpha": StreamERConfig.alpha_for(len(dataset), 0.05),
        "beta": 0.05,
        "clean_clean": dataset.clean_clean,
        "classifier": classifier,
    }


def run_sequential(config, dataset):
    pipeline = StreamERPipeline(config, instrument=False)
    pipeline.process_many(dataset.stream())
    return pipeline.cl.matches.pairs()


class TestSequentialEquivalence:
    def test_interned_equals_string_with_threshold(self, dataset):
        classifier = ThresholdClassifier(THRESHOLD)
        expected = run_sequential(
            StreamERConfig(**base_kwargs(dataset, classifier)), dataset
        )
        assert expected  # a vacuous equivalence would prove nothing
        interned = run_sequential(
            StreamERConfig.interned(**base_kwargs(dataset, classifier)), dataset
        )
        assert interned == expected

    def test_prefilter_changes_nothing(self, dataset):
        classifier = ThresholdClassifier(THRESHOLD)
        with_filter = run_sequential(
            StreamERConfig.interned(**base_kwargs(dataset, classifier)), dataset
        )
        without_filter = run_sequential(
            StreamERConfig.interned(
                prefilter=False, **base_kwargs(dataset, classifier)
            ),
            dataset,
        )
        assert with_filter == without_filter

    def test_interned_equals_string_with_oracle(self, dataset):
        classifier = OracleClassifier.from_pairs(dataset.ground_truth)
        expected = run_sequential(
            StreamERConfig(**base_kwargs(dataset, classifier)), dataset
        )
        interned = run_sequential(
            StreamERConfig.interned(**base_kwargs(dataset, classifier)), dataset
        )
        assert interned == expected

    @pytest.mark.parametrize("measure", ["jaccard", "dice", "cosine", "overlap"])
    def test_every_measure_is_answer_preserving(self, dataset, measure):
        classifier = ThresholdClassifier(THRESHOLD)
        from repro.comparison import TokenSetComparator

        expected = run_sequential(
            StreamERConfig(
                comparator=TokenSetComparator.named(measure),
                **base_kwargs(dataset, classifier),
            ),
            dataset,
        )
        interned = run_sequential(
            StreamERConfig.interned(
                measure=measure, **base_kwargs(dataset, classifier)
            ),
            dataset,
        )
        assert interned == expected


class TestMultiprocessEquivalence:
    @pytest.mark.parametrize("chunk_size", [16, 256])
    def test_compact_dispatch_equals_sequential_string(self, dataset, chunk_size):
        classifier = ThresholdClassifier(THRESHOLD)
        expected = run_sequential(
            StreamERConfig(**base_kwargs(dataset, classifier)), dataset
        )
        mp_pipeline = MultiprocessERPipeline(
            StreamERConfig.interned(**base_kwargs(dataset, classifier)),
            workers=2,
            chunk_size=chunk_size,
        )
        result = mp_pipeline.run(dataset.stream())
        assert mp_pipeline.dispatch_mode == "ids"
        assert result.match_pairs == expected


class TestPersistenceRoundTrip:
    def test_loaded_profiles_are_reinterned(self, dataset):
        classifier = ThresholdClassifier(THRESHOLD)
        config = StreamERConfig.interned(**base_kwargs(dataset, classifier))
        first = StreamERPipeline(config, instrument=False)
        entities = list(dataset.stream())
        midpoint = len(entities) // 2
        first.process_many(entities[:midpoint])

        buffer = io.StringIO()
        dump_state(first, buffer)
        buffer.seek(0)

        resumed = StreamERPipeline(
            StreamERConfig.interned(**base_kwargs(dataset, classifier)),
            instrument=False,
        )
        load_state(resumed, buffer)
        for profile in resumed.lm.profiles.values():
            assert profile.token_ids is not None
            dictionary = resumed.dr.builder.dictionary
            assert dictionary.decode_set(profile.token_ids) == profile.tokens
        resumed.process_many(entities[midpoint:])

        whole = StreamERPipeline(
            StreamERConfig.interned(**base_kwargs(dataset, classifier)),
            instrument=False,
        )
        whole.process_many(entities)
        assert resumed.cl.matches.pairs() == whole.cl.matches.pairs()
