"""Failure injection and adversarial inputs across the pipeline."""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.types import Comparison, EntityDescription, Profile, ScoredComparison


def pipeline(threshold=0.5, **kwargs):
    defaults = dict(alpha=50, beta=0.1, classifier=ThresholdClassifier(threshold))
    defaults.update(kwargs)
    return StreamERPipeline(StreamERConfig(**defaults), instrument=False)


class TestDegenerateEntities:
    def test_entity_without_attributes(self):
        p = pipeline()
        assert p.process(EntityDescription.create(1, {})) == []
        assert p.entities_processed == 1

    def test_entity_with_empty_values(self):
        p = pipeline()
        p.process(EntityDescription.create(1, {"a": "", "b": "   "}))
        assert len(p.state.blocks) == 0

    def test_entity_with_only_stopwords(self):
        p = pipeline()
        p.process(EntityDescription.create(1, {"a": "the and of"}))
        assert len(p.state.blocks) == 0

    def test_unicode_values(self):
        p = pipeline(threshold=0.3)
        p.process(EntityDescription.create(1, {"名前": "日本語 LAMP vintage"}))
        matches = p.process(EntityDescription.create(2, {"name": "lamp vintage"}))
        # ASCII-token overlap still matches despite unicode noise.
        assert matches

    def test_very_long_value(self):
        p = pipeline()
        huge = " ".join(f"tok{i}" for i in range(5_000))
        p.process(EntityDescription.create(1, {"a": huge}))
        assert len(p.state.blocks) == 5_000

    def test_duplicate_eid_processed_like_new_entity(self):
        """The framework keys blocks by id; re-sent ids do not crash."""
        p = pipeline(threshold=0.9)
        e = EntityDescription.create(1, {"a": "alpha beta gamma"})
        p.process(e)
        matches = p.process(e)
        # Self-comparisons are skipped, so re-processing yields no match.
        assert matches == []

    def test_numeric_and_mixed_tokens(self):
        p = pipeline(threshold=0.3)
        p.process(EntityDescription.create(1, {"model": "XJ-9000 rev 2"}))
        matches = p.process(EntityDescription.create(2, {"part": "xj 9000 rev2"}))
        assert isinstance(matches, list)  # tokenization differences tolerated


class TestAdversarialBlockStructures:
    def test_every_entity_shares_one_token(self):
        """A universal token must be pruned, not explode comparisons."""
        p = pipeline(alpha=10, threshold=0.99)
        for i in range(100):
            p.process(
                EntityDescription.create(i, {"a": f"universal unique{i}"})
            )
        assert "universal" in p.bb.blacklist
        # After pruning, comparisons stay near zero (unique tokens only).
        assert p.cg.generated < 10 * 100

    def test_all_entities_identical(self):
        p = pipeline(alpha=1000, threshold=0.5)
        for i in range(30):
            p.process(EntityDescription.create(i, {"a": "same exact text"}))
        # Every pair is a match: 30·29/2.
        assert len(p.cl.matches) == 435

    def test_alpha_two_prunes_everything(self):
        p = pipeline(alpha=2, threshold=0.01)
        for i in range(20):
            p.process(EntityDescription.create(i, {"a": "shared words here"}))
        assert len(p.cl.matches) == 0  # nothing survives blocking


class TestClassifierContract:
    def test_custom_classifier_returning_none_is_safe(self):
        class NeverMatch:
            def classify(self, scored: ScoredComparison):
                return None

        p = pipeline(classifier=NeverMatch())
        for i in range(5):
            p.process(EntityDescription.create(i, {"a": "same text"}))
        assert len(p.cl.matches) == 0

    def test_custom_comparator_contract(self):
        class ConstantComparator:
            def compare(self, comparison: Comparison) -> ScoredComparison:
                return ScoredComparison(comparison=comparison, similarity=0.42)

        p = pipeline(threshold=0.4, comparator=ConstantComparator())
        p.process(EntityDescription.create(1, {"a": "alpha beta"}))
        matches = p.process(EntityDescription.create(2, {"a": "alpha beta"}))
        assert matches and matches[0].similarity == 0.42


class TestStateConsistencyInvariants:
    def test_profiles_cover_all_processed_entities(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        p = pipeline(threshold=0.9, alpha=StreamERConfig.alpha_for(len(ds), 0.05))
        p.process_many(ds.stream())
        assert len(p.state.profiles) == len(ds)

    def test_blacklisted_keys_never_in_blocks(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        p = pipeline(threshold=0.9, alpha=5)
        p.process_many(ds.stream())
        for key in p.state.blacklist.keys:
            assert key not in p.state.blocks

    def test_match_pairs_are_processed_entities(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        p = pipeline(threshold=0.5, alpha=StreamERConfig.alpha_for(len(ds), 0.05))
        p.process_many(ds.stream())
        ids = {e.eid for e in ds.entities}
        for i, j in p.state.matches.pairs():
            assert i in ids and j in ids
