"""Differential correctness: SEQ vs PP vs MPP, with and without faults.

The same seeded entity stream is run through the sequential
``StreamERPipeline``, the thread-parallel ``ParallelERPipeline`` (PP with
``micro_batch_size=1``, MPP with larger batches), and the
``MultiprocessERPipeline``; the harness asserts match-set equivalence —
exactly, when no faults are injected, and *modulo the dead-lettered items*
under fault injection:

* faults at the ingest stage (``dr``) fire before the entity touches any
  shared state, so the parallel run must equal a sequential run over just
  the surviving entities;
* faults at the comparison stage (``co``) lose exactly the matches whose
  *later-arriving* member was dead-lettered (a match is always discovered
  while processing the later entity of the pair), so the expected set is
  computable from the sequential run plus the dead-letter ids.

Every parallel run carries a timeout so a shutdown regression fails fast.
"""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline, SupervisionPolicy
from repro.core.backends import (
    ShardedBackend,
    SharedMemoryBackend,
    active_shm_segments,
)
from repro.core.plan import STAGE_ORDER
from repro.datasets import DatasetSpec, generate
from repro.observability import (
    COMPARISONS_EXECUTED,
    ENTITIES,
    MATCHES,
    PIPELINE_METRIC_NAMES,
    MetricsRegistry,
    Tracer,
)
from repro.invariants import InvariantChecker
from repro.parallel import FaultSpec, MultiprocessERPipeline, ParallelERPipeline

RUN_TIMEOUT = 120.0


def config_for(dataset) -> StreamERConfig:
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )


def sequential_pairs(dataset, entities=None) -> set:
    pipeline = StreamERPipeline(config_for(dataset), instrument=False)
    pipeline.process_many(dataset.stream() if entities is None else entities)
    return pipeline.cl.matches.pairs()


@pytest.fixture(scope="module", params=[7, 21])
def seeded_dirty(request):
    spec = DatasetSpec(
        name=f"diff-dirty-{request.param}", kind="dirty", size=150, matches=90,
        avg_attributes=4.0, heterogeneity=0.3, vocab_rare=2000, seed=request.param,
    )
    return generate(spec)


@pytest.fixture(scope="module")
def seeded_clean():
    spec = DatasetSpec(
        name="diff-clean", kind="clean-clean", size=(80, 90), matches=60,
        avg_attributes=4.0, heterogeneity=0.4, vocab_rare=2000, seed=13,
    )
    return generate(spec)


class TestFaultFreeEquivalence:
    """SEQ == PP == MPP == multiprocess on identical seeded streams."""

    @pytest.mark.parametrize("micro_batch_size", [1, 25, 100])
    @pytest.mark.parametrize("processes", [8, 16])
    def test_thread_framework_dirty(self, seeded_dirty, micro_batch_size, processes):
        expected = sequential_pairs(seeded_dirty)
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=processes,
            micro_batch_size=micro_batch_size,
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected
        assert result.items_failed == 0
        assert result.entities_processed == len(seeded_dirty)

    @pytest.mark.parametrize("micro_batch_size", [1, 50])
    def test_thread_framework_clean_clean(self, seeded_clean, micro_batch_size):
        expected = sequential_pairs(seeded_clean)
        parallel = ParallelERPipeline(
            config_for(seeded_clean), processes=12, micro_batch_size=micro_batch_size
        )
        result = parallel.run(seeded_clean.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected

    @pytest.mark.parametrize("chunk_size", [64, 512])
    def test_multiprocess_framework(self, seeded_dirty, chunk_size):
        expected = sequential_pairs(seeded_dirty)
        mp = MultiprocessERPipeline(
            config_for(seeded_dirty), workers=2, chunk_size=chunk_size
        )
        result = mp.run(seeded_dirty.stream())
        assert result.match_pairs == expected
        assert result.items_failed == 0


class TestFaultsAtIngest:
    """Dead letters at ``dr`` never touch shared state: the surviving items
    must resolve exactly as a sequential run over the surviving stream."""

    @pytest.mark.parametrize("micro_batch_size", [1, 25])
    @pytest.mark.parametrize("processes", [8, 16])
    def test_thread_framework(self, seeded_dirty, micro_batch_size, processes):
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=processes,
            micro_batch_size=micro_batch_size,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=0.2, seed=99)},
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        dead = result.dead_letter_ids
        assert 0 < len(dead) < len(seeded_dirty)
        survivors = [e for e in seeded_dirty.stream() if e.eid not in dead]
        assert result.match_pairs == sequential_pairs(seeded_dirty, survivors)

    def test_thread_framework_clean_clean(self, seeded_clean):
        parallel = ParallelERPipeline(
            config_for(seeded_clean),
            processes=12,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=0.2, seed=4)},
        )
        result = parallel.run(seeded_clean.stream(), timeout=RUN_TIMEOUT)
        dead = result.dead_letter_ids
        assert dead
        survivors = [e for e in seeded_clean.stream() if e.eid not in dead]
        assert result.match_pairs == sequential_pairs(seeded_clean, survivors)

    def test_multiprocess_framework(self, seeded_dirty):
        mp = MultiprocessERPipeline(
            config_for(seeded_dirty),
            workers=2,
            chunk_size=64,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=0.2, seed=99)},
        )
        result = mp.run(seeded_dirty.stream())
        dead = result.dead_letter_ids
        assert dead
        survivors = [e for e in seeded_dirty.stream() if e.eid not in dead]
        assert result.match_pairs == sequential_pairs(seeded_dirty, survivors)

    def test_same_seed_same_dead_set_across_variants(self, seeded_dirty):
        """Injection is keyed on (seed, stage, entity), not on scheduling."""
        def dead_ids(micro_batch_size, processes):
            pipeline = ParallelERPipeline(
                config_for(seeded_dirty),
                processes=processes,
                micro_batch_size=micro_batch_size,
                supervision=SupervisionPolicy.none(),
                faults={"dr": FaultSpec(probability=0.25, seed=42)},
            )
            return pipeline.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT).dead_letter_ids

        assert dead_ids(1, 8) == dead_ids(25, 16)


class TestFaultsAtComparison:
    """An entity dead-lettered at ``co`` already registered its blocks, so
    other entities still resolve against it; only the matches anchored at
    the dead entity (its pairings with *earlier* arrivals) are lost."""

    def _expected(self, dataset, dead: set) -> set:
        arrival = {e.eid: i for i, e in enumerate(dataset.stream())}
        expected = set()
        for pair in sequential_pairs(dataset):
            later = max(pair, key=lambda eid: arrival[eid])
            if later not in dead:
                expected.add(pair)
        return expected

    @pytest.mark.parametrize("micro_batch_size", [1, 25])
    def test_thread_framework(self, seeded_dirty, micro_batch_size):
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=12,
            micro_batch_size=micro_batch_size,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(probability=0.3, seed=17)},
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        dead = result.dead_letter_ids
        assert dead
        assert all(d.stage == "co" for d in result.dead_letters)
        assert result.match_pairs == self._expected(seeded_dirty, dead)

    def test_multiprocess_framework_pair_level(self, seeded_dirty):
        """mp dead letters are *pairs*: expected = sequential minus them."""
        mp = MultiprocessERPipeline(
            config_for(seeded_dirty),
            workers=2,
            chunk_size=64,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(probability=0.3, seed=17)},
        )
        result = mp.run(seeded_dirty.stream())
        dead_pairs = result.dead_letter_ids
        assert dead_pairs
        expected = sequential_pairs(seeded_dirty) - dead_pairs
        assert result.match_pairs == expected


class TestShardedBackendEquivalence:
    """Hash-sharded state is a pure representation change: for any shard
    count, every executor must produce exactly the match set of the
    in-memory backend — on dirty and clean-clean data, and with faults."""

    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_sequential_dirty(self, seeded_dirty, shards):
        expected = sequential_pairs(seeded_dirty)
        sharded = StreamERPipeline(
            config_for(seeded_dirty),
            instrument=False,
            backend=ShardedBackend(shards),
        )
        sharded.process_many(seeded_dirty.stream())
        assert sharded.cl.matches.pairs() == expected

    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_sequential_clean_clean(self, seeded_clean, shards):
        expected = sequential_pairs(seeded_clean)
        sharded = StreamERPipeline(
            config_for(seeded_clean),
            instrument=False,
            backend=ShardedBackend(shards),
        )
        sharded.process_many(seeded_clean.stream())
        assert sharded.cl.matches.pairs() == expected

    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_thread_framework_dirty(self, seeded_dirty, shards):
        expected = sequential_pairs(seeded_dirty)
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=12,
            micro_batch_size=25,
            backend=ShardedBackend(shards),
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected
        assert result.items_failed == 0

    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_thread_framework_clean_clean(self, seeded_clean, shards):
        expected = sequential_pairs(seeded_clean)
        parallel = ParallelERPipeline(
            config_for(seeded_clean),
            processes=12,
            backend=ShardedBackend(shards),
        )
        result = parallel.run(seeded_clean.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected

    @pytest.mark.parametrize("shards", [2, 7])
    def test_multiprocess_framework(self, seeded_dirty, shards):
        expected = sequential_pairs(seeded_dirty)
        mp = MultiprocessERPipeline(
            config_for(seeded_dirty),
            workers=2,
            chunk_size=64,
            backend=ShardedBackend(shards),
        )
        result = mp.run(seeded_dirty.stream())
        assert result.match_pairs == expected
        assert result.items_failed == 0

    @pytest.mark.parametrize("shards", [2, 7])
    def test_faults_at_ingest(self, seeded_dirty, shards):
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=12,
            micro_batch_size=25,
            supervision=SupervisionPolicy.none(),
            faults={"dr": FaultSpec(probability=0.2, seed=99)},
            backend=ShardedBackend(shards),
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        dead = result.dead_letter_ids
        assert dead
        survivors = [e for e in seeded_dirty.stream() if e.eid not in dead]
        assert result.match_pairs == sequential_pairs(seeded_dirty, survivors)

    @pytest.mark.parametrize("shards", [2, 7])
    def test_faults_at_comparison(self, seeded_dirty, shards):
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=12,
            micro_batch_size=25,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(probability=0.3, seed=17)},
            backend=ShardedBackend(shards),
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        dead = result.dead_letter_ids
        assert dead
        expected = TestFaultsAtComparison._expected(
            TestFaultsAtComparison(), seeded_dirty, dead
        )
        assert result.match_pairs == expected


class TestRetriesPreserveEquivalence:
    """Transient faults healed by retries must leave results untouched."""

    def test_transient_faults_full_equivalence(self, seeded_dirty):
        expected = sequential_pairs(seeded_dirty)
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=12,
            micro_batch_size=25,
            supervision=SupervisionPolicy(max_retries=2),
            faults={"co": FaultSpec(probability=0.5, seed=3, transient_attempts=1)},
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.items_failed == 0
        assert result.retries > 0
        assert result.match_pairs == expected


class TestInvariantCheckedEquivalence:
    """Runtime invariant checking enabled on every executor: no violation
    fires on healthy runs, and the match sets do not move by one pair."""

    def test_sequential_checked(self, seeded_dirty):
        expected = sequential_pairs(seeded_dirty)
        checker = InvariantChecker(mode="raise", state_every=25)
        pipeline = StreamERPipeline(
            config_for(seeded_dirty), instrument=False, checker=checker
        )
        pipeline.process_many(seeded_dirty.stream())
        checker.finalize(
            pipeline.summary(), expected_entities=pipeline.entities_processed
        )
        assert pipeline.cl.matches.pairs() == expected
        assert not checker.violations
        assert checker.checks_performed > 0

    @pytest.mark.parametrize("micro_batch_size", [1, 25])
    def test_thread_framework_checked(self, seeded_dirty, micro_batch_size):
        expected = sequential_pairs(seeded_dirty)
        checker = InvariantChecker(mode="raise")
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=8,
            micro_batch_size=micro_batch_size,
            checker=checker,
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected
        assert result.items_failed == 0
        assert not checker.violations
        assert checker.checks_performed > 0

    def test_thread_framework_checked_clean_clean(self, seeded_clean):
        expected = sequential_pairs(seeded_clean)
        checker = InvariantChecker(mode="raise")
        parallel = ParallelERPipeline(
            config_for(seeded_clean), processes=12, checker=checker
        )
        result = parallel.run(seeded_clean.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected
        assert not checker.violations

    def test_multiprocess_framework_checked(self, seeded_dirty):
        expected = sequential_pairs(seeded_dirty)
        checker = InvariantChecker(mode="raise")
        mp = MultiprocessERPipeline(
            config_for(seeded_dirty), workers=2, chunk_size=64, checker=checker
        )
        result = mp.run(seeded_dirty.stream())
        assert result.match_pairs == expected
        assert result.items_failed == 0
        assert not checker.violations
        assert checker.checks_performed > 0

    def test_simulator_checked(self):
        from repro.parallel import PipelineSimulator, ServiceModel

        checker = InvariantChecker(mode="raise")
        service = ServiceModel(
            mean_seconds={s: 1e-4 for s in STAGE_ORDER},
            cv=0.0,
            spike_probability=0.0,
        )
        simulator = PipelineSimulator(
            {s: 2 for s in STAGE_ORDER}, service, checker=checker
        )
        result = simulator.run_batch(50)
        assert result.admitted == 50
        assert not checker.violations
        assert checker.checks_performed > 0

    def test_checked_run_with_dead_letters_uses_exemptions(self, seeded_dirty):
        """Dead-lettered entities may leave partial state behind; the
        checker exempts exactly them and still validates everything else."""
        checker = InvariantChecker(mode="raise")
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=8,
            micro_batch_size=25,
            supervision=SupervisionPolicy.none(),
            faults={"co": FaultSpec(probability=0.3, seed=17)},
            checker=checker,
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.items_failed > 0
        assert not checker.violations

    def test_sharded_backend_checked(self, seeded_dirty):
        expected = sequential_pairs(seeded_dirty)
        checker = InvariantChecker(mode="raise")
        parallel = ParallelERPipeline(
            config_for(seeded_dirty),
            processes=8,
            micro_batch_size=25,
            backend=ShardedBackend(4),
            checker=checker,
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected
        assert not checker.violations


class TestObservabilityAcrossExecutors:
    """All four executors must emit the same metric vocabulary, and
    enabling metrics must not change a single match."""

    @staticmethod
    def _simulator_registry() -> "MetricsRegistry":
        from repro.parallel import PipelineSimulator, ServiceModel

        registry = MetricsRegistry()
        service = ServiceModel(
            mean_seconds={s: 1e-4 for s in STAGE_ORDER},
            cv=0.0,
            spike_probability=0.0,
        )
        PipelineSimulator(
            {s: 2 for s in STAGE_ORDER}, service, registry=registry
        ).run_batch(50)
        return registry

    def test_metric_names_identical_across_executors(self, seeded_dirty):
        config = config_for(seeded_dirty)
        registries = {"simulator": self._simulator_registry()}

        registries["seq"] = MetricsRegistry()
        StreamERPipeline(
            config, instrument=False, registry=registries["seq"]
        ).process_many(seeded_dirty.stream())

        registries["thread"] = MetricsRegistry()
        ParallelERPipeline(
            config, processes=8, registry=registries["thread"]
        ).run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)

        registries["mp"] = MetricsRegistry()
        MultiprocessERPipeline(
            config, workers=2, chunk_size=64, registry=registries["mp"]
        ).run(seeded_dirty.stream())

        name_sets = {label: r.names() for label, r in registries.items()}
        assert name_sets["seq"] == set(PIPELINE_METRIC_NAMES)
        for label, names in name_sets.items():
            assert names == name_sets["seq"], f"{label} diverges"

    def test_enabling_metrics_changes_no_matches(self, seeded_dirty):
        expected = sequential_pairs(seeded_dirty)

        registry = MetricsRegistry()
        plain = StreamERPipeline(
            config_for(seeded_dirty), instrument=False, registry=registry
        )
        plain.process_many(seeded_dirty.stream())
        assert plain.cl.matches.pairs() == expected
        assert registry.value(ENTITIES) == len(seeded_dirty)
        assert registry.value(MATCHES) == len(expected)

        thread_registry = MetricsRegistry()
        parallel = ParallelERPipeline(
            config_for(seeded_dirty), processes=8, registry=thread_registry
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.match_pairs == expected
        assert thread_registry.value(ENTITIES) == len(seeded_dirty)

        mp_registry = MetricsRegistry()
        mp_pipeline = MultiprocessERPipeline(
            config_for(seeded_dirty), workers=2, chunk_size=64,
            registry=mp_registry,
        )
        mp_result = mp_pipeline.run(seeded_dirty.stream())
        assert mp_result.match_pairs == expected
        assert mp_registry.value(ENTITIES) == len(seeded_dirty)
        assert mp_registry.value(COMPARISONS_EXECUTED) > 0

    def test_thread_framework_stage_metrics_populate(self, seeded_dirty):
        registry = MetricsRegistry()
        tracer = Tracer(every=10)
        parallel = ParallelERPipeline(
            config_for(seeded_dirty), processes=8,
            registry=registry, tracer=tracer,
        )
        parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        for stage in parallel.plan.stage_names():
            assert registry.value("er_stage_items_total", stage=stage) > 0
            hist = registry.get("er_stage_service_seconds", stage=stage)
            assert hist is not None and hist.count > 0
        latency = registry.get("er_entity_latency_seconds")
        assert latency.count == len(seeded_dirty)
        traces = tracer.traces()
        assert traces and all(t.seq % 10 == 0 for t in traces)
        completed = [t for t in traces if t.completed_at is not None]
        assert completed
        assert all(t.spans for t in completed)

    def test_dead_letters_counted_in_registry(self, seeded_dirty):
        registry = MetricsRegistry()
        parallel = ParallelERPipeline(
            config_for(seeded_dirty), processes=8, registry=registry,
            faults={"dr": FaultSpec(probability=0.2, seed=5)},
        )
        result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
        assert result.items_failed > 0
        assert registry.value("er_dead_letters_total", stage="dr") == result.items_failed


def interned_config_for(dataset) -> StreamERConfig:
    return StreamERConfig.interned(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=dataset.clean_clean,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )


class TestSharedMemoryBackendEquivalence:
    """Shared-memory token columns are a pure representation change: every
    executor must produce bit-identical match sets to the in-memory
    backend — on dirty and clean-clean data, with the interned comparator
    (which engages the ``"shm"`` dispatch mode in the multiprocess
    executor) and with faults.  Every test also asserts segment hygiene:
    the run leaves nothing behind in ``/dev/shm``."""

    def _interned_expected(self, dataset) -> set:
        pipeline = StreamERPipeline(interned_config_for(dataset), instrument=False)
        pipeline.process_many(dataset.stream())
        return pipeline.cl.matches.pairs()

    def test_sequential_dirty(self, seeded_dirty):
        expected = self._interned_expected(seeded_dirty)
        with SharedMemoryBackend() as backend:
            prefix = backend.name
            shm = StreamERPipeline(
                interned_config_for(seeded_dirty), instrument=False, backend=backend
            )
            shm.process_many(seeded_dirty.stream())
            assert shm.cl.matches.pairs() == expected
        assert active_shm_segments(prefix) == []

    def test_sequential_clean_clean(self, seeded_clean):
        expected = self._interned_expected(seeded_clean)
        with SharedMemoryBackend() as backend:
            shm = StreamERPipeline(
                interned_config_for(seeded_clean), instrument=False, backend=backend
            )
            shm.process_many(seeded_clean.stream())
            assert shm.cl.matches.pairs() == expected

    @pytest.mark.parametrize("micro_batch_size", [1, 25])
    def test_thread_framework_dirty(self, seeded_dirty, micro_batch_size):
        expected = self._interned_expected(seeded_dirty)
        with SharedMemoryBackend() as backend:
            parallel = ParallelERPipeline(
                interned_config_for(seeded_dirty),
                processes=12,
                micro_batch_size=micro_batch_size,
                backend=backend,
            )
            result = parallel.run(seeded_dirty.stream(), timeout=RUN_TIMEOUT)
            assert result.match_pairs == expected
            assert result.items_failed == 0

    def test_thread_framework_clean_clean(self, seeded_clean):
        expected = self._interned_expected(seeded_clean)
        with SharedMemoryBackend() as backend:
            parallel = ParallelERPipeline(
                interned_config_for(seeded_clean), processes=12, backend=backend
            )
            result = parallel.run(seeded_clean.stream(), timeout=RUN_TIMEOUT)
            assert result.match_pairs == expected

    def test_multiprocess_shm_dispatch_dirty(self, seeded_dirty):
        expected = self._interned_expected(seeded_dirty)
        with SharedMemoryBackend() as backend:
            prefix = backend.name
            mp = MultiprocessERPipeline(
                interned_config_for(seeded_dirty),
                workers=2,
                chunk_size=64,
                backend=backend,
            )
            result = mp.run(seeded_dirty.stream())
            assert mp.dispatch_mode == "shm"
            assert result.match_pairs == expected
            assert result.items_failed == 0
            mp.close()
        assert active_shm_segments(prefix) == []

    def test_multiprocess_shm_dispatch_clean_clean(self, seeded_clean):
        expected = self._interned_expected(seeded_clean)
        with SharedMemoryBackend() as backend:
            mp = MultiprocessERPipeline(
                interned_config_for(seeded_clean),
                workers=2,
                chunk_size=64,
                backend=backend,
            )
            result = mp.run(seeded_clean.stream())
            assert mp.dispatch_mode == "shm"
            assert result.match_pairs == expected
            mp.close()

    def test_multiprocess_plain_comparator_falls_back(self, seeded_dirty):
        """Without the interned comparator the backend still works — the
        executor just negotiates a non-shm dispatch mode."""
        expected = sequential_pairs(seeded_dirty)
        with SharedMemoryBackend() as backend:
            mp = MultiprocessERPipeline(
                config_for(seeded_dirty), workers=2, chunk_size=64, backend=backend
            )
            result = mp.run(seeded_dirty.stream())
            assert mp.dispatch_mode != "shm"
            assert result.match_pairs == expected
            mp.close()

    def test_multiprocess_fault_parity(self, seeded_dirty):
        """Seeded worker faults fire on the same pairs under shm dispatch
        as under id-array dispatch: retries and matches are identical."""
        faults = {"co": FaultSpec(probability=0.3, seed=17)}
        reference = MultiprocessERPipeline(
            interned_config_for(seeded_dirty), workers=2, chunk_size=64,
            faults=faults,
        )
        ref_result = reference.run(seeded_dirty.stream())
        assert ref_result.retries > 0
        reference.close()

        with SharedMemoryBackend() as backend:
            mp = MultiprocessERPipeline(
                interned_config_for(seeded_dirty), workers=2, chunk_size=64,
                faults=faults, backend=backend,
            )
            result = mp.run(seeded_dirty.stream())
            assert mp.dispatch_mode == "shm"
            assert result.retries == ref_result.retries
            assert result.match_pairs == ref_result.match_pairs
            mp.close()

    def test_persistent_pool_across_increments(self, seeded_dirty):
        """Increment-by-increment processing with one warm pool equals the
        one-shot sequential run; the pool spawns exactly once."""
        expected = self._interned_expected(seeded_dirty)
        entities = list(seeded_dirty.stream())
        increments = [entities[i : i + 50] for i in range(0, len(entities), 50)]
        with SharedMemoryBackend() as backend:
            mp = MultiprocessERPipeline(
                interned_config_for(seeded_dirty),
                workers=2,
                chunk_size=64,
                backend=backend,
            )
            for increment in increments:
                mp.run(increment)
            assert backend.matches.pairs() == expected
            assert mp.pool_spawns == 1
            assert mp.pool_reuses == len(increments) - 1
            mp.close()
