"""Integration tests: the full system on realistic synthetic workloads."""

from __future__ import annotations

import pytest

from repro.batch import BatchERConfig, BatchERPipeline
from repro.classification import OracleClassifier, ThresholdClassifier
from repro.clustering import IncrementalClusterer
from repro.core import StreamERConfig, StreamERPipeline, combine
from repro.datasets import DatasetSpec, generate
from repro.evaluation import pair_completeness
from repro.incremental import run_incremental_comparison
from repro.parallel import ParallelERPipeline
from repro.piblock import PIBlockConfig, PIBlockER


@pytest.fixture(scope="module")
def dirty():
    return generate(
        DatasetSpec(
            name="e2e-dirty", kind="dirty", size=600, matches=500,
            avg_attributes=5.0, heterogeneity=0.2, vocab_rare=5000, seed=77,
        )
    )


@pytest.fixture(scope="module")
def cleanclean():
    return generate(
        DatasetSpec(
            name="e2e-clean", kind="clean-clean", size=(250, 280), matches=200,
            avg_attributes=5.0, heterogeneity=0.5, vocab_rare=5000, seed=78,
        )
    )


def stream_config(ds, classifier):
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(ds), 0.05),
        beta=0.05,
        clean_clean=ds.clean_clean,
        classifier=classifier,
    )


class TestStreamVsBatchQuality:
    def test_both_reach_good_pair_completeness(self, dirty):
        oracle = OracleClassifier.from_pairs(dirty.ground_truth)
        stream = StreamERPipeline(stream_config(dirty, oracle), instrument=False)
        stream_result = stream.process_many(dirty.stream())
        stream_pc = pair_completeness(stream_result.match_pairs, dirty.ground_truth)

        batch = BatchERPipeline(BatchERConfig(r=0.05, s=0.8, classifier=oracle))
        batch_result = batch.run(dirty.entities)
        batch_pc = pair_completeness(batch_result.match_pairs, dirty.ground_truth)

        assert stream_pc > 0.6
        assert batch_pc > 0.5

    def test_stream_output_consistent_with_candidates(self, dirty):
        oracle = OracleClassifier.from_pairs(dirty.ground_truth)
        pipeline = StreamERPipeline(stream_config(dirty, oracle), instrument=False)
        result = pipeline.process_many(dirty.stream())
        # Oracle classification ⇒ precision 1: every match is in the truth.
        assert result.match_pairs <= {
            tuple(sorted(p)) for p in dirty.ground_truth
        }


class TestCleanCleanEndToEnd:
    def test_combined_stream_resolves_across_sources(self, cleanclean):
        ds = cleanclean
        oracle = OracleClassifier.from_pairs(ds.ground_truth)
        pipeline = StreamERPipeline(stream_config(ds, oracle), instrument=False)
        result = pipeline.process_many(ds.stream())
        pc = pair_completeness(result.match_pairs, ds.ground_truth)
        assert pc > 0.6
        for i, j in result.match_pairs:
            assert i[0] != j[0]

    def test_combine_function_feeds_pipeline(self):
        left = generate(
            DatasetSpec(name="l", kind="dirty", size=40, matches=0, vocab_rare=500, seed=1)
        ).entities
        right = generate(
            DatasetSpec(name="r", kind="dirty", size=40, matches=0, vocab_rare=500, seed=2)
        ).entities
        stream = list(combine(left, right))
        assert len(stream) == 80
        cfg = StreamERConfig(
            alpha=20, beta=0.1, clean_clean=True, classifier=ThresholdClassifier(0.95)
        )
        pipeline = StreamERPipeline(cfg, instrument=False)
        pipeline.process_many(stream)  # must not raise


class TestParallelConsistency:
    def test_parallel_equals_sequential_on_both_kinds(self, dirty, cleanclean):
        for ds in (dirty, cleanclean):
            oracle = OracleClassifier.from_pairs(ds.ground_truth)
            seq = StreamERPipeline(stream_config(ds, oracle), instrument=False)
            seq.process_many(ds.stream())
            par = ParallelERPipeline(stream_config(ds, oracle), processes=10)
            result = par.run(ds.stream())
            assert result.match_pairs == seq.cl.matches.pairs()


class TestIncrementalScenario:
    def test_stream_is_increment_order_sensitive_but_complete(self, dirty):
        oracle = OracleClassifier.from_pairs(dirty.ground_truth)
        one_shot = StreamERPipeline(stream_config(dirty, oracle), instrument=False)
        one_shot.process_many(dirty.stream())
        incremental = StreamERPipeline(stream_config(dirty, oracle), instrument=False)
        for inc in dirty.increments(5):
            incremental.process_many(inc)
        assert incremental.cl.matches.pairs() == one_shot.cl.matches.pairs()

    def test_figure10_ordering_on_small_data(self, dirty):
        """Our approach beats the no-block-cleaning baselines on runtime."""
        oracle = OracleClassifier.from_pairs(dirty.ground_truth)
        runs = {
            r.approach: r
            for r in run_incremental_comparison(
                dirty, 4, oracle, approaches=("I-WNP", "I-WNP (No BC)", "PI-Block")
            )
        }
        assert runs["I-WNP"].total_seconds <= runs["I-WNP (No BC)"].total_seconds
        assert runs["I-WNP"].total_seconds <= runs["PI-Block"].total_seconds


class TestDownstreamClustering:
    def test_match_stream_feeds_clusterer(self, dirty):
        oracle = OracleClassifier.from_pairs(dirty.ground_truth)
        pipeline = StreamERPipeline(stream_config(dirty, oracle), instrument=False)
        clusterer = IncrementalClusterer()
        for _, matches in pipeline.stream(dirty.stream()):
            clusterer.add_matches(matches)
        clusters = clusterer.clusters()
        assert clusters  # duplicates exist
        # Every cluster member pair must be reachable through true matches,
        # because oracle precision is 1 and clustering is transitive closure.
        truth_clusterer = IncrementalClusterer()
        truth_clusterer.add_matches(dirty.ground_truth)
        for cluster in clusters:
            members = sorted(cluster)
            for a, b in zip(members, members[1:]):
                assert truth_clusterer.same_entity(a, b)


class TestPIBlockIntegration:
    def test_piblock_runs_full_dataset(self, dirty):
        oracle = OracleClassifier.from_pairs(dirty.ground_truth)
        runner = PIBlockER(PIBlockConfig(classifier=oracle))
        for inc in dirty.increments(3):
            runner.process_increment(inc)
        pc = pair_completeness(runner.match_pairs, dirty.ground_truth)
        assert pc > 0.8  # no block cleaning → very high completeness
