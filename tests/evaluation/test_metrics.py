"""Tests for the evaluation metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation import (
    LatencySummary,
    pair_completeness,
    pairs_quality,
    precision_recall_f1,
    reduction_ratio,
    speedup,
    throughput_series,
)

pairs = st.sets(
    st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda p: p[0] != p[1]),
    max_size=15,
)


class TestPairCompleteness:
    def test_full_coverage(self):
        assert pair_completeness([(1, 2)], [(2, 1)]) == 1.0

    def test_partial(self):
        assert pair_completeness([(1, 2)], [(1, 2), (3, 4)]) == 0.5

    def test_empty_truth_is_one(self):
        assert pair_completeness([(1, 2)], []) == 1.0

    def test_empty_candidates(self):
        assert pair_completeness([], [(1, 2)]) == 0.0

    @given(pairs, pairs)
    def test_bounded(self, candidates, truth):
        assert 0.0 <= pair_completeness(candidates, truth) <= 1.0


class TestPairsQuality:
    def test_precision_of_candidates(self):
        assert pairs_quality([(1, 2), (3, 4)], [(1, 2)]) == 0.5

    def test_empty_candidates_is_one(self):
        assert pairs_quality([], [(1, 2)]) == 1.0


class TestReductionRatio:
    def test_dirty(self):
        assert reduction_ratio(45, 10) == 0.0  # 45 = all pairs of 10
        assert reduction_ratio(0, 10) == 1.0

    def test_clean_clean(self):
        assert reduction_ratio(50, 0, clean_clean_sizes=(10, 10)) == 0.5

    def test_degenerate(self):
        assert reduction_ratio(0, 1) == 0.0


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_recall_f1([(1, 2)], [(1, 2)]) == (1.0, 1.0, 1.0)

    def test_mixed(self):
        p, r, f1 = precision_recall_f1([(1, 2), (3, 4)], [(1, 2), (5, 6)])
        assert p == 0.5 and r == 0.5 and f1 == pytest.approx(0.5)

    def test_both_empty(self):
        assert precision_recall_f1([], []) == (1.0, 1.0, 1.0)

    def test_zero_f1(self):
        p, r, f1 = precision_recall_f1([(1, 2)], [(3, 4)])
        assert f1 == 0.0


class TestSpeedup:
    def test_ratio(self):
        assert speedup(100.0, 10.0) == 10.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([0.1 * i for i in range(1, 101)])
        assert summary.count == 100
        assert summary.mean == pytest.approx(5.05)
        assert summary.p50 == pytest.approx(5.1)
        assert summary.maximum == pytest.approx(10.0)
        assert summary.p95 <= summary.p99 <= summary.maximum

    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.maximum == 0.0


class TestThroughputSeries:
    def test_counts_per_window(self):
        series = throughput_series([0.1, 0.2, 0.3, 1.1, 1.2], window=1.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(3.0)
        assert series[1][1] == pytest.approx(2.0)

    def test_empty(self):
        assert throughput_series([]) == []

    def test_window_scaling(self):
        series = throughput_series([0.0, 0.1, 0.2, 0.3], window=0.5)
        assert series[0][1] == pytest.approx(8.0)  # 4 completions / 0.5 s

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_total_completions_conserved(self, times):
        series = throughput_series(times, window=1.0)
        total = sum(rate * 1.0 for _, rate in series)
        assert total == pytest.approx(len(times))
