"""Tests for the evaluation metrics."""

from __future__ import annotations

import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation import (
    LatencySummary,
    pair_completeness,
    pairs_quality,
    precision_recall_f1,
    reduction_ratio,
    speedup,
    throughput_series,
)

pairs = st.sets(
    st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda p: p[0] != p[1]),
    max_size=15,
)


class TestPairCompleteness:
    def test_full_coverage(self):
        assert pair_completeness([(1, 2)], [(2, 1)]) == 1.0

    def test_partial(self):
        assert pair_completeness([(1, 2)], [(1, 2), (3, 4)]) == 0.5

    def test_empty_truth_is_one(self):
        assert pair_completeness([(1, 2)], []) == 1.0

    def test_empty_candidates(self):
        assert pair_completeness([], [(1, 2)]) == 0.0

    @given(pairs, pairs)
    def test_bounded(self, candidates, truth):
        assert 0.0 <= pair_completeness(candidates, truth) <= 1.0


class TestPairsQuality:
    def test_precision_of_candidates(self):
        assert pairs_quality([(1, 2), (3, 4)], [(1, 2)]) == 0.5

    def test_empty_candidates_is_one(self):
        assert pairs_quality([], [(1, 2)]) == 1.0


class TestReductionRatio:
    def test_dirty(self):
        assert reduction_ratio(45, 10) == 0.0  # 45 = all pairs of 10
        assert reduction_ratio(0, 10) == 1.0

    def test_clean_clean(self):
        assert reduction_ratio(50, 0, clean_clean_sizes=(10, 10)) == 0.5

    def test_degenerate(self):
        assert reduction_ratio(0, 1) == 0.0


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_recall_f1([(1, 2)], [(1, 2)]) == (1.0, 1.0, 1.0)

    def test_mixed(self):
        p, r, f1 = precision_recall_f1([(1, 2), (3, 4)], [(1, 2), (5, 6)])
        assert p == 0.5 and r == 0.5 and f1 == pytest.approx(0.5)

    def test_both_empty(self):
        assert precision_recall_f1([], []) == (1.0, 1.0, 1.0)

    def test_zero_f1(self):
        p, r, f1 = precision_recall_f1([(1, 2)], [(3, 4)])
        assert f1 == 0.0


class TestSpeedup:
    def test_ratio(self):
        assert speedup(100.0, 10.0) == 10.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([0.1 * i for i in range(1, 101)])
        assert summary.count == 100
        assert summary.mean == pytest.approx(5.05)
        assert summary.p50 == pytest.approx(5.0)
        assert summary.p95 == pytest.approx(9.5)
        assert summary.p99 == pytest.approx(9.9)
        assert summary.maximum == pytest.approx(10.0)
        assert summary.p95 <= summary.p99 <= summary.maximum

    def test_even_n_median_is_lower_middle(self):
        # Nearest-rank regression: the old floor-index form returned the
        # *upper* middle (3) for an even-sized sample.
        summary = LatencySummary.from_samples([1.0, 2.0, 3.0, 4.0])
        assert summary.p50 == pytest.approx(2.0)

    def test_small_sample_percentiles_not_biased_high(self):
        # With 10 samples the q-quantile is the ceil(10q)-th order
        # statistic: p50 → 5th (5.0), p95 → 10th (10.0), p99 → 10th.
        summary = LatencySummary.from_samples([float(i) for i in range(1, 11)])
        assert summary.p50 == pytest.approx(5.0)
        assert summary.p95 == pytest.approx(10.0)
        assert summary.p99 == pytest.approx(10.0)

    def test_single_sample(self):
        summary = LatencySummary.from_samples([0.7])
        assert summary.p50 == summary.p95 == summary.p99 == pytest.approx(0.7)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_percentiles_are_order_statistics(self, samples):
        summary = LatencySummary.from_samples(samples)
        data = sorted(samples)
        assert summary.p50 in data
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum

    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.maximum == 0.0


def _covered_spans(times: list[float], window: float, n_windows: int) -> list[float]:
    """The denominators throughput_series uses: full width for every
    window except a partial final one."""
    start, end = min(times), max(times)
    spans = [window] * n_windows
    final = end - (start + (n_windows - 1) * window)
    spans[-1] = final if final >= sys.float_info.min else window
    return spans


class TestThroughputSeries:
    def test_counts_per_window(self):
        series = throughput_series([0.1, 0.2, 0.3, 1.1, 1.2], window=1.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(3.0)
        # The final window covers only 1.1..1.2 — 2 completions in 0.1 s,
        # not in a full second (the old code reported 2.0/s here).
        assert series[1][1] == pytest.approx(20.0)

    def test_empty(self):
        assert throughput_series([]) == []

    def test_stream_ending_mid_window(self):
        # 4 completions over 0.3 s: the single (final) window is partial,
        # so the rate is 4/0.3 ≈ 13.3/s, not 4/0.5 = 8/s.
        series = throughput_series([0.0, 0.1, 0.2, 0.3], window=0.5)
        assert len(series) == 1
        assert series[0][1] == pytest.approx(4.0 / 0.3)

    def test_full_windows_unchanged(self):
        # Completions spanning exactly full windows keep the plain
        # count/window rates.
        series = throughput_series([0.0, 0.25, 0.5, 1.0, 2.0], window=1.0)
        assert series[0][1] == pytest.approx(3.0)
        assert series[1][1] == pytest.approx(1.0)

    def test_identical_timestamps_fall_back_to_full_width(self):
        series = throughput_series([5.0, 5.0, 5.0], window=1.0)
        assert series == [(6.0, pytest.approx(3.0))]

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_total_completions_conserved(self, times):
        series = throughput_series(times, window=1.0)
        spans = _covered_spans(times, 1.0, len(series))
        total = sum(rate * span for (_, rate), span in zip(series, spans))
        assert total == pytest.approx(len(times))
