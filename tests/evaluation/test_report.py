"""Tests for the reporting helpers."""

from __future__ import annotations

from repro.evaluation import format_table, scientific


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].split() == ["b", "a"]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "2" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = format_table([{"v": 123456.0}, {"v": 0.25}, {"v": 0.0}])
        assert "1.23E+05" in text
        assert "0.25" in text


class TestScientific:
    def test_table_iii_style(self):
        assert scientific(2680) == "2.68E+03"
        assert scientific(1.15e7) == "1.15E+07"


class TestPrintSection:
    def test_string_body(self, capsys):
        from repro.evaluation import print_section

        print_section("Title", "body text")
        out = capsys.readouterr().out
        assert "=== Title ===" in out
        assert "body text" in out

    def test_iterable_body(self, capsys):
        from repro.evaluation import print_section

        print_section("T", ["line1", "line2"])
        out = capsys.readouterr().out
        assert "line1" in out and "line2" in out

    def test_empty_body(self, capsys):
        from repro.evaluation import print_section

        print_section("T")
        assert "=== T ===" in capsys.readouterr().out
