"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import line_chart, sparkline


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no data)"
        assert line_chart({"a": []}) == "(no data)"

    def test_marks_appear_for_each_series(self):
        chart = line_chart(
            {"PP": [(8, 1.0), (19, 8.0)], "MPP": [(8, 2.0), (19, 10.0)]}
        )
        assert "*" in chart and "o" in chart
        assert "*=PP" in chart
        assert "o=MPP" in chart

    def test_axis_labels_present(self):
        chart = line_chart(
            {"a": [(0, 0), (10, 5)]}, x_label="processes", y_label="speedup"
        )
        assert "processes" in chart
        assert "speedup" in chart
        assert "10" in chart  # x max
        assert "5" in chart   # y max

    def test_single_point(self):
        chart = line_chart({"a": [(1, 1)]})
        assert "*" in chart

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e3, max_value=1e3),
                st.floats(min_value=-1e3, max_value=1e3),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_never_crashes_and_bounded_size(self, points):
        chart = line_chart({"s": points}, width=40, height=10)
        lines = chart.splitlines()
        assert len(lines) <= 15
        assert all(len(line) <= 40 + 20 for line in lines)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_rising_series_rises(self):
        spark = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert spark[0] == "▁"
        assert spark[-1] == "█"

    def test_downsampling(self):
        spark = sparkline(list(range(100)), width=10)
        assert len(spark) == 10

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_length_matches_input(self, values):
        assert len(sparkline(values)) == len(values)
