"""Unit tests for the ER state components."""

from __future__ import annotations

from repro.core.state import Blacklist, BlockCollection, ERState, MatchStore, ProfileStore
from repro.types import Match, Profile


class TestBlockCollection:
    def test_add_creates_block_and_returns_size(self):
        blocks = BlockCollection()
        assert blocks.add("panel", 1) == 1
        assert blocks.add("panel", 2) == 2
        assert blocks.block("panel") == [1, 2]

    def test_remove_block(self):
        blocks = BlockCollection()
        blocks.add("panel", 1)
        blocks.remove_block("panel")
        assert "panel" not in blocks
        blocks.remove_block("missing")  # no error

    def test_membership_and_len(self):
        blocks = BlockCollection()
        blocks.add("a", 1)
        blocks.add("b", 1)
        assert "a" in blocks
        assert len(blocks) == 2

    def test_sizes_and_assignments(self):
        blocks = BlockCollection()
        for eid in (1, 2, 3):
            blocks.add("a", eid)
        blocks.add("b", 1)
        assert blocks.sizes() == {"a": 3, "b": 1}
        assert blocks.total_assignments() == 4

    def test_total_comparisons(self):
        blocks = BlockCollection()
        for eid in (1, 2, 3):
            blocks.add("a", eid)  # 3 comparisons
        blocks.add("b", 1)  # 0 comparisons
        assert blocks.total_comparisons() == 3

    def test_block_of_missing_key_is_empty(self):
        assert BlockCollection().block("nope") == []

    def test_insertion_order_preserved(self):
        blocks = BlockCollection()
        for eid in (5, 3, 9):
            blocks.add("k", eid)
        assert blocks.block("k") == [5, 3, 9]


class TestBlacklist:
    def test_add_and_contains(self):
        bl = Blacklist()
        bl.add("pavilion")
        assert "pavilion" in bl
        assert "panel" not in bl
        assert len(bl) == 1


class TestProfileStore:
    def _profile(self, eid):
        return Profile(eid=eid, attributes=(), tokens=frozenset())

    def test_put_and_get(self):
        store = ProfileStore()
        p = self._profile(1)
        store.put(p)
        assert store.get(1) is p
        assert 1 in store
        assert len(store) == 1

    def test_get_missing_returns_none(self):
        assert ProfileStore().get(42) is None

    def test_put_overwrites(self):
        store = ProfileStore()
        store.put(self._profile(1))
        newer = self._profile(1)
        store.put(newer)
        assert store.get(1) is newer
        assert len(store) == 1


class TestMatchStore:
    def test_add_deduplicates_symmetric_pairs(self):
        store = MatchStore()
        assert store.add(Match(left=1, right=2)) is True
        assert store.add(Match(left=2, right=1)) is False
        assert len(store) == 1

    def test_contains_pair_either_order(self):
        store = MatchStore()
        store.add(Match(left=1, right=2))
        assert (1, 2) in store
        assert (2, 1) in store

    def test_matches_returns_copy_in_order(self):
        store = MatchStore()
        store.add(Match(left=3, right=4))
        store.add(Match(left=1, right=2))
        matches = store.matches()
        assert [m.key() for m in matches] == [(3, 4), (1, 2)]
        matches.clear()
        assert len(store) == 2

    def test_pairs_is_canonical(self):
        store = MatchStore()
        store.add(Match(left=9, right=2))
        assert store.pairs() == {(2, 9)}


def test_erstate_default_components_are_fresh():
    a, b = ERState(), ERState()
    a.blocks.add("k", 1)
    assert len(b.blocks) == 0
