"""Unit and behavioural tests for the sequential stream pipeline."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.stages import STAGE_ORDER
from repro.types import EntityDescription, pair_key


class TestProcess:
    def test_returns_matches_involving_current_entity(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config)
        for entity in paper_entities[:2]:
            pipeline.process(entity)
        matches = pipeline.process(paper_entities[2])  # e3 matches e1
        assert any(m.key() == (1, 3) for m in matches)

    def test_state_grows_across_calls(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config)
        for entity in paper_entities:
            pipeline.process(entity)
        assert pipeline.entities_processed == 5
        assert len(pipeline.state.profiles) == 5
        assert len(pipeline.state.blocks) > 0

    def test_timings_cover_all_stages(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config, instrument=True)
        pipeline.process(paper_entities[0])
        assert set(pipeline.timings.seconds) == set(STAGE_ORDER)

    def test_uninstrumented_pipeline_has_no_timings(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config, instrument=False)
        pipeline.process(paper_entities[0])
        assert pipeline.timings.seconds == {}

    def test_instrumentation_does_not_change_results(self, paper_entities, paper_config):
        timed = StreamERPipeline(paper_config, instrument=True)
        plain = StreamERPipeline(paper_config, instrument=False)
        timed_matches = [m.key() for e in paper_entities for m in timed.process(e)]
        plain_matches = [m.key() for e in paper_entities for m in plain.process(e)]
        assert timed_matches == plain_matches


class TestProcessMany:
    def test_summary_counts(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config)
        result = pipeline.process_many(paper_entities)
        assert result.entities_processed == 5
        assert result.comparisons_generated >= result.comparisons_after_cleaning
        assert result.elapsed_seconds > 0

    def test_incremental_counts_are_deltas(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config)
        first = pipeline.process_many(paper_entities[:3])
        second = pipeline.process_many(paper_entities[3:])
        total = pipeline.summary()
        assert first.comparisons_generated + second.comparisons_generated == (
            total.comparisons_generated
        )

    def test_incremental_equals_single_pass(self, paper_entities, paper_config):
        together = StreamERPipeline(paper_config)
        together.process_many(paper_entities)
        split = StreamERPipeline(paper_config)
        split.process_many(paper_entities[:2])
        split.process_many(paper_entities[2:])
        assert together.cl.matches.pairs() == split.cl.matches.pairs()


class TestStream:
    def test_stream_is_lazy(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config)
        stream = pipeline.stream(iter(paper_entities))
        entity, matches = next(stream)
        assert entity.eid == 1
        assert pipeline.entities_processed == 1

    def test_stream_processes_all(self, paper_entities, paper_config):
        pipeline = StreamERPipeline(paper_config)
        out = list(pipeline.stream(paper_entities))
        assert len(out) == 5


class TestQuality:
    def test_oracle_classifier_on_synthetic_data(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        cfg = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=OracleClassifier.from_pairs(ds.ground_truth),
        )
        pipeline = StreamERPipeline(cfg)
        result = pipeline.process_many(ds.stream())
        pc = len(result.match_pairs) / len(ds.ground_truth)
        assert pc > 0.6  # blocking keeps most true matches comparable
        assert result.match_pairs <= {pair_key(*p) for p in ds.ground_truth}

    def test_clean_clean_never_matches_within_source(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        cfg = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.1),
            beta=0.05,
            clean_clean=True,
            classifier=ThresholdClassifier(0.2),
        )
        pipeline = StreamERPipeline(cfg)
        result = pipeline.process_many(ds.stream())
        for i, j in result.match_pairs:
            assert i[0] != j[0]

    def test_cleaning_reduces_comparisons(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        cfg = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=ThresholdClassifier(0.99),
        )
        pipeline = StreamERPipeline(cfg)
        result = pipeline.process_many(ds.stream())
        assert result.comparisons_after_cleaning < result.comparisons_generated

    def test_no_bc_no_cc_sees_strictly_more_comparisons(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset

        def run(enable_bc: bool, enable_cc: bool) -> int:
            cfg = StreamERConfig(
                alpha=StreamERConfig.alpha_for(len(ds), 0.05),
                beta=0.05,
                enable_block_cleaning=enable_bc,
                enable_comparison_cleaning=enable_cc,
                classifier=ThresholdClassifier(0.99),
            )
            pipeline = StreamERPipeline(cfg, instrument=False)
            return pipeline.process_many(ds.stream()).comparisons_after_cleaning

        full = run(True, True)
        no_bc = run(False, True)
        no_cc = run(True, False)
        assert no_bc > full
        assert no_cc > full
