"""PipelinePlan: the one stage graph every executor compiles.

The plan is built once from a ``StreamERConfig`` and handed to all four
executors; these tests pin down (a) the paper's eight-stage order in every
executor, (b) that disabling ``f_bg`` / ``f_cc`` via config drops exactly
those nodes — again in every executor — and (c) the plan/compiled-pipeline
API surface the executors rely on.
"""

from __future__ import annotations

import pytest

from repro.core import StreamERConfig, StreamERPipeline
from repro.core.backends import InMemoryBackend
from repro.core.plan import STAGE_ORDER, CompiledPipeline, PipelinePlan
from repro.errors import ConfigurationError
from repro.parallel import MultiprocessERPipeline, ParallelERPipeline, PipelineSimulator
from repro.parallel.simulator import ServiceModel


def full_config(**overrides) -> StreamERConfig:
    return StreamERConfig(alpha=10, beta=0.05, **overrides)


def service_model() -> ServiceModel:
    return ServiceModel(mean_seconds={name: 1e-4 for name in STAGE_ORDER})


class TestPlanConstruction:
    def test_default_plan_has_all_eight_stages(self):
        plan = PipelinePlan.from_config(full_config())
        assert plan.stage_names() == STAGE_ORDER

    def test_disable_block_cleaning_drops_exactly_bg(self):
        plan = PipelinePlan.from_config(full_config(enable_block_cleaning=False))
        assert plan.stage_names() == tuple(n for n in STAGE_ORDER if n != "bg")

    def test_disable_comparison_cleaning_drops_exactly_cc(self):
        plan = PipelinePlan.from_config(full_config(enable_comparison_cleaning=False))
        assert plan.stage_names() == tuple(n for n in STAGE_ORDER if n != "cc")

    def test_disable_both_drops_both(self):
        plan = PipelinePlan.from_config(
            full_config(enable_block_cleaning=False, enable_comparison_cleaning=False)
        )
        assert plan.stage_names() == tuple(
            n for n in STAGE_ORDER if n not in ("bg", "cc")
        )

    def test_contains_and_spec(self):
        plan = PipelinePlan.from_config(full_config(enable_block_cleaning=False))
        assert "cc" in plan
        assert "bg" not in plan
        assert plan.spec("cc").name == "cc"
        with pytest.raises(ConfigurationError):
            plan.spec("bg")
        with pytest.raises(ConfigurationError):
            plan.spec("nonsense")

    def test_serialization_points_and_replicability(self):
        plan = PipelinePlan.from_config(full_config())
        assert plan.serialization_points() == ("bb+bp",)
        assert plan.non_replicable_stages() == ("bb+bp",)

    def test_front_stage_names_exclude_co_and_cl(self):
        plan = PipelinePlan.from_config(full_config())
        assert plan.front_stage_names() == ("dr", "bb+bp", "bg", "cg", "cc", "lm")


class TestPlanCompilation:
    def test_compile_yields_stage_per_active_node(self):
        compiled = PipelinePlan.from_config(full_config()).compile()
        assert isinstance(compiled, CompiledPipeline)
        assert compiled.names == STAGE_ORDER
        assert [name for name, _ in compiled.ordered()] == list(STAGE_ORDER)

    def test_get_returns_none_for_dropped_node(self):
        compiled = PipelinePlan.from_config(
            full_config(enable_block_cleaning=False)
        ).compile()
        assert compiled.get("bg") is None
        assert compiled.get("cc") is not None
        with pytest.raises(ConfigurationError):
            compiled.stage("bg")

    def test_stage_functions_match_active_names(self):
        plan = PipelinePlan.from_config(full_config(enable_comparison_cleaning=False))
        fns = plan.compile().stage_functions()
        assert tuple(fns) == plan.stage_names()
        assert all(callable(fn) for fn in fns.values())

    def test_compile_threads_backend_through_stages(self):
        backend = InMemoryBackend()
        compiled = PipelinePlan.from_config(full_config()).compile(backend)
        assert compiled.backend is backend
        assert compiled.stage("bb+bp").blocks is backend.blocks
        assert compiled.stage("lm").profiles is backend.profiles
        assert compiled.stage("cl").matches is backend.matches


class TestExecutorsShareThePlan:
    """All four executors derive their stage topology from the same plan."""

    @pytest.mark.parametrize(
        "overrides,expected",
        [
            ({}, STAGE_ORDER),
            (
                {"enable_block_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "bg"),
            ),
            (
                {"enable_comparison_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "cc"),
            ),
        ],
    )
    def test_sequential(self, overrides, expected):
        pipeline = StreamERPipeline(full_config(**overrides), instrument=False)
        assert pipeline.compiled.names == expected

    @pytest.mark.parametrize(
        "overrides,expected",
        [
            ({}, STAGE_ORDER),
            (
                {"enable_block_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "bg"),
            ),
            (
                {"enable_comparison_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "cc"),
            ),
        ],
    )
    def test_thread_framework(self, overrides, expected):
        pipeline = ParallelERPipeline(full_config(**overrides), processes=len(expected))
        assert pipeline.plan.stage_names() == expected
        assert pipeline.compiled.names == expected

    @pytest.mark.parametrize(
        "overrides,expected",
        [
            ({}, STAGE_ORDER),
            (
                {"enable_block_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "bg"),
            ),
            (
                {"enable_comparison_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "cc"),
            ),
        ],
    )
    def test_multiprocess_framework(self, overrides, expected):
        pipeline = MultiprocessERPipeline(full_config(**overrides), workers=1)
        assert pipeline.plan.stage_names() == expected
        assert pipeline.compiled.names == expected

    @pytest.mark.parametrize(
        "overrides,expected",
        [
            ({}, STAGE_ORDER),
            (
                {"enable_block_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "bg"),
            ),
            (
                {"enable_comparison_cleaning": False},
                tuple(n for n in STAGE_ORDER if n != "cc"),
            ),
        ],
    )
    def test_simulator(self, overrides, expected):
        plan = PipelinePlan.from_config(full_config(**overrides))
        allocation = {name: 1 for name in expected}
        simulator = PipelineSimulator(allocation, service_model(), plan=plan)
        assert simulator.stage_names == expected

    def test_simulator_defaults_to_full_stage_order(self):
        allocation = {name: 1 for name in STAGE_ORDER}
        simulator = PipelineSimulator(allocation, service_model())
        assert simulator.stage_names == STAGE_ORDER

    def test_shared_plan_instance_is_reused(self):
        plan = PipelinePlan.from_config(full_config())
        seq = StreamERPipeline(plan=plan, instrument=False)
        par = ParallelERPipeline(plan=plan, processes=8)
        assert seq.plan is plan
        assert par.plan is plan
        assert seq.config is plan.config
