"""Unit tests for the pure functional model (§III)."""

from __future__ import annotations

from repro.classification import ThresholdClassifier
from repro.core.model import (
    FunctionalState,
    ModelConfig,
    f_bb_bp,
    f_cc,
    f_cg,
    f_dr,
    f_er,
    fold_er,
    stream_er,
)
from repro.types import EntityDescription, pair_key


def config(**kwargs) -> ModelConfig:
    defaults = dict(alpha=100, beta=0.5, classifier=ThresholdClassifier(0.3))
    defaults.update(kwargs)
    return ModelConfig(**defaults)


class TestIndividualFunctions:
    def test_f_dr_leaves_state_unchanged(self):
        state = FunctionalState()
        entity = EntityDescription.create(1, {"a": "glass panel"})
        profile, keys, out_state = f_dr(entity, state, config())
        assert out_state is state
        assert keys == profile.tokens
        assert {"glass", "panel"} <= keys

    def test_f_bb_bp_grows_blocks_immutably(self):
        cfg = config()
        state = FunctionalState()
        e1 = EntityDescription.create(1, {"a": "glass"})
        p1, k1, state = f_dr(e1, state, cfg)
        _, _, _, state1 = f_bb_bp(p1, k1, state, cfg)
        assert state.blocks == {}  # original untouched
        assert state1.blocks["glass"] == (1,)

    def test_f_bb_bp_prunes_and_blacklists(self):
        cfg = config(alpha=2)
        state = FunctionalState()
        for eid in (1, 2):
            e = EntityDescription.create(eid, {"a": "shared"})
            p, k, state = f_dr(e, state, cfg)
            p, k, snapshot, state = f_bb_bp(p, k, state, cfg)
        assert "shared" in state.blacklist
        assert "shared" not in state.blocks
        assert snapshot == {}

    def test_f_cg_dirty_excludes_self(self):
        cfg = config()
        profile, _, _ = f_dr(EntityDescription.create(2, {"a": "x"}), FunctionalState(), cfg)
        candidates, _ = f_cg(profile, {"x": (1, 2)}, FunctionalState(), cfg)
        assert candidates == [1]

    def test_f_cg_clean_clean_cross_source_only(self):
        cfg = config(clean_clean=True)
        entity = EntityDescription.create(("x", 2), {"a": "t"}, source="x")
        profile, _, _ = f_dr(entity, FunctionalState(), cfg)
        snapshot = {"t": (("x", 1), ("y", 1), ("x", 2))}
        candidates, _ = f_cg(profile, snapshot, FunctionalState(), cfg)
        assert candidates == [("y", 1)]

    def test_f_cc_average_threshold(self):
        kept, _ = f_cc([1, 2, 2, 3], FunctionalState(), config())
        # counts 1:1, 2:2, 3:1; avg = 4/3 → only 2 survives
        assert kept == [2]

    def test_f_cc_disabled_dedupes(self):
        kept, _ = f_cc([1, 2, 2], FunctionalState(), config(enable_comparison_cleaning=False))
        assert sorted(kept) == [1, 2]


class TestFoldAndStream:
    def test_fold_finds_duplicates(self, paper_entities):
        state = fold_er(paper_entities, config(alpha=5, beta=0.6))
        assert pair_key(1, 3) in state.matches

    def test_fold_accepts_initial_state(self, paper_entities):
        cfg = config(alpha=5, beta=0.6)
        first = fold_er(paper_entities[:3], cfg)
        resumed = fold_er(paper_entities[3:], cfg, initial=first)
        complete = fold_er(paper_entities, cfg)
        assert resumed.matches == complete.matches

    def test_stream_yields_monotone_match_sets(self, paper_entities):
        snapshots = list(stream_er(paper_entities, config(alpha=5, beta=0.6)))
        assert len(snapshots) == len(paper_entities)
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert earlier <= later

    def test_f_er_returns_new_state(self):
        state = FunctionalState()
        entity = EntityDescription.create(1, {"a": "x y"})
        out = f_er(entity, state, config())
        assert out is not state
        assert out.profiles  # p_1 registered

    def test_no_block_cleaning_keeps_all_blocks(self, paper_entities):
        cfg = config(alpha=2, enable_block_cleaning=False)
        state = fold_er(paper_entities, cfg)
        assert state.blacklist == frozenset()
        assert len(state.blocks["panel"]) == 5
