"""Shared-memory backend contracts: lifecycle, growth, crash hygiene.

The differential suite proves the shm backend never changes a match; these
tests pin the store-level contracts the equivalence rests on — epoch-
published growth (readers never see torn state), cross-attach decoding,
and above all segment hygiene: no ``/dev/shm`` entry may outlive its
creator, whether the run ends normally, a worker faults, or the creator
is killed with ``SIGKILL`` mid-run.
"""

from __future__ import annotations

import gc
import os
import signal
import subprocess
import sys
import time
from array import array
from pathlib import Path

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig
from repro.core.backends import (
    InMemoryBackend,
    SharedColumnReader,
    SharedColumnStore,
    SharedMemoryBackend,
    SharedTokenArrayStore,
    SharedTokenDictionary,
    active_shm_segments,
    backend_capabilities,
)
from repro.core.backends.shm import SharedDictionaryReader
from repro.parallel import FaultSpec, MultiprocessERPipeline
from repro.types import EntityDescription

RUN_TIMEOUT = 60.0

_WORDS = ["glass", "panel", "wood", "fibre", "roof", "window", "door", "steel"]


def make_entities(n: int):
    return [
        EntityDescription.create(
            i, {"title": " ".join(_WORDS[(i + j) % len(_WORDS)] for j in range(3))}
        )
        for i in range(n)
    ]


def interned_config() -> StreamERConfig:
    return StreamERConfig.interned(
        alpha=100, beta=0.5, classifier=ThresholdClassifier(0.4)
    )


class TestSharedColumnStore:
    def test_append_record_round_trip(self):
        with_payloads = [b"alpha", b"b", b"", b"gamma" * 10]
        store = SharedColumnStore()
        try:
            rows = [store.append(p) for p in with_payloads]
            assert rows == list(range(len(with_payloads)))
            for row, payload in zip(rows, with_payloads):
                assert bytes(store.record(row)) == payload
        finally:
            store.unlink()

    def test_growth_spans_generations(self):
        # Tiny initial capacities force both the data column and the
        # directory through several doublings.
        store = SharedColumnStore(data_bytes=64, dir_rows=4)
        try:
            payloads = [bytes([i % 251]) * (i % 97 + 1) for i in range(300)]
            for p in payloads:
                store.append(p)
            assert len(store.segment_names()) > 3  # ctl + several generations
            for row, payload in enumerate(payloads):
                assert bytes(store.record(row)) == payload
        finally:
            store.unlink()

    def test_oversized_payload_gets_own_generation(self):
        store = SharedColumnStore(data_bytes=32, dir_rows=4)
        try:
            big = os.urandom(10_000)
            row = store.append(big)
            assert bytes(store.record(row)) == big
        finally:
            store.unlink()

    def test_reader_sees_only_published_rows(self):
        store = SharedColumnStore()
        try:
            store.append(b"one")
            reader = SharedColumnReader(store.prefix)
            assert len(reader) == 1
            with pytest.raises(IndexError):
                reader.record(1)
            # Growth after attach: the reader refreshes and decodes rows
            # that live in generations created after it attached.
            for i in range(200):
                store.append(f"row-{i}".encode() * 20)
            assert bytes(reader.record(150)) == b"row-149" * 20
            assert len(reader) == 201
            reader.close()
        finally:
            store.unlink()

    def test_reader_context_manager(self):
        store = SharedColumnStore()
        try:
            row = store.append(b"payload")
            with SharedColumnReader(store.prefix) as reader:
                assert bytes(reader.record(row)) == b"payload"
        finally:
            store.unlink()


class TestSharedTokenStores:
    def test_dictionary_cross_attach_decode(self):
        columns = SharedColumnStore()
        try:
            dictionary = SharedTokenDictionary(columns)
            tokens = ["wood", "panel", "pavillon", "fibre", "日本語"]
            ids = [dictionary.intern(t) for t in tokens]
            reader = SharedDictionaryReader(columns.prefix)
            assert [reader.decode(i) for i in ids] == tokens
            assert len(reader) == len(tokens)
            reader.close()
        finally:
            columns.unlink()

    def test_token_array_round_trip_and_identity_cache(self):
        columns = SharedColumnStore()
        try:
            store = SharedTokenArrayStore(columns)
            ids = array("Q", [3, 1, 4, 1, 5, 92])
            row = store.row_for(7, ids)
            # Ids are packed in canonical (sorted) order — the comparison
            # kernel's merge walk requires it.
            assert store.ids_at(row).tolist() == sorted(ids)
            # Same eid + same token ids → same row, no second append.
            assert store.row_for(7, ids) == row
            assert len(columns) == 1
        finally:
            columns.unlink()


class TestBackendLifecycle:
    def test_capabilities_and_layout(self):
        with SharedMemoryBackend() as backend:
            capabilities = backend_capabilities(backend)
            assert SharedMemoryBackend.TOKEN_COLUMNS in capabilities
            assert SharedMemoryBackend.PARTITION_COLUMNS in capabilities
            layout = backend.layout()
            assert set(layout) == {
                "tokens", "dictionary", "entities", "membership",
            }
            assert all(name.startswith(backend.name) for name in layout.values())
            assert backend.shm_bytes() > 0
            assert len(backend.segment_names()) >= 8  # 4 stores x (ctl+data+dir)

    def test_context_manager_unlinks_all_segments(self):
        with SharedMemoryBackend() as backend:
            prefix = backend.name
            assert active_shm_segments(prefix)
        assert active_shm_segments(prefix) == []

    def test_unlink_is_idempotent(self):
        backend = SharedMemoryBackend()
        prefix = backend.name
        backend.unlink()
        backend.unlink()
        assert active_shm_segments(prefix) == []

    def test_garbage_collection_unlinks(self):
        backend = SharedMemoryBackend()
        prefix = backend.name
        # Growth after construction must be covered by the finalizer too.
        for i in range(20_000):
            backend.dictionary.intern(f"token-{i}")
        assert len(active_shm_segments(prefix)) > 4
        del backend
        gc.collect()
        assert active_shm_segments(prefix) == []


class TestRunHygiene:
    """No ``/dev/shm`` entry survives a run, however the run ends."""

    def test_no_leak_after_normal_run(self):
        backend = SharedMemoryBackend()
        prefix = backend.name
        pipeline = MultiprocessERPipeline(
            interned_config(), workers=2, chunk_size=64, backend=backend
        )
        pipeline.run(make_entities(120))
        assert pipeline.dispatch_mode == "shm"
        pipeline.close()
        backend.unlink()
        assert active_shm_segments(prefix) == []

    def test_no_leak_after_worker_faults(self):
        backend = SharedMemoryBackend()
        prefix = backend.name
        pipeline = MultiprocessERPipeline(
            interned_config(),
            workers=2,
            chunk_size=64,
            faults={"co": FaultSpec(probability=0.3, seed=3)},
            backend=backend,
        )
        result = pipeline.run(make_entities(120))
        assert result.retries > 0  # the faults really fired in workers
        pipeline.close()
        backend.unlink()
        assert active_shm_segments(prefix) == []

    def test_no_leak_after_sigkill(self, tmp_path: Path):
        """SIGKILL the creator mid-run: the resource tracker must clean up.

        The finalizer cannot run under ``kill -9``; cleanup then falls to
        the ``multiprocessing.resource_tracker`` sidecar, which requires
        the creator to stay registered with it — exactly what the
        attach-side-only unregistration in ``attach_segment`` preserves.
        """
        script = (
            "import time\n"
            "from repro.core.backends import SharedMemoryBackend\n"
            "backend = SharedMemoryBackend()\n"
            "for i in range(500):\n"
            "    backend.dictionary.intern(f'token-{i}')\n"
            "print(backend.name, flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            prefix = proc.stdout.readline().strip()
            assert prefix, "victim process never created its backend"
            assert active_shm_segments(prefix)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            # The tracker is a separate process; give it a moment to
            # notice the pipe closing and sweep the leaked segments.
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if not active_shm_segments(prefix):
                    break
                time.sleep(0.2)
            assert active_shm_segments(prefix) == []
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)


class TestShmVsMemoryEquivalence:
    def test_match_sets_bit_identical(self):
        entities = make_entities(150)
        reference = MultiprocessERPipeline(
            interned_config(), workers=2, chunk_size=64, backend=InMemoryBackend()
        )
        reference.run(entities)
        assert reference.dispatch_mode == "ids"
        expected = reference.backend.matches.pairs()
        reference.close()

        with SharedMemoryBackend() as backend:
            pipeline = MultiprocessERPipeline(
                interned_config(), workers=2, chunk_size=64, backend=backend
            )
            pipeline.run(entities)
            assert pipeline.dispatch_mode == "shm"
            assert backend.matches.pairs() == expected
            pipeline.close()


@pytest.mark.requires_multicore
class TestMulticoreSpeedup:
    """Wall-clock assertions that only hold with real parallelism."""

    def test_shm_persistent_beats_sequential(self):
        from repro.core import StreamERPipeline

        entities = make_entities(4000)
        start = time.perf_counter()
        sequential = StreamERPipeline(interned_config(), instrument=False)
        sequential.process_many(entities)
        seq_seconds = time.perf_counter() - start

        with SharedMemoryBackend() as backend:
            pipeline = MultiprocessERPipeline(
                interned_config(), workers=2, chunk_size=256, backend=backend
            )
            start = time.perf_counter()
            pipeline.run(entities)
            mp_seconds = time.perf_counter() - start
            assert backend.matches.pairs() == sequential.cl.matches.pairs()
            pipeline.close()
        assert mp_seconds < seq_seconds * 1.5
