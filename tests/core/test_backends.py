"""State backends: the in-memory default and the hash-sharded variant.

The differential suite proves end-to-end equivalence; these tests pin the
store-level contracts — routing stability, counter correctness, merged
views, and the O(1) size accounting of :class:`BlockCollection`.
"""

from __future__ import annotations

import pytest

from repro.core.backends import (
    CooccurrenceCounter,
    InMemoryBackend,
    ShardedBackend,
    ShardedBlacklist,
    ShardedBlockCollection,
    ShardedCooccurrenceCounter,
    ShardedMatchStore,
    ShardedProfileStore,
    StateBackend,
    shard_index,
)
from repro.core.state import BlockCollection, ERState, ProfileStore
from repro.errors import ConfigurationError
from repro.types import Match, Profile


def profile(eid, *tokens) -> Profile:
    return Profile(eid=eid, attributes=(), tokens=frozenset(tokens))


class TestShardIndex:
    def test_stable_and_in_range(self):
        for key in ["alpha", "beta", 17, ("a", 3)]:
            for shards in (1, 2, 7):
                index = shard_index(key, shards)
                assert 0 <= index < shards
                assert index == shard_index(key, shards)

    def test_single_shard_routes_everything_to_zero(self):
        assert all(shard_index(k, 1) == 0 for k in ("x", "y", 99))

    def test_spreads_keys_across_shards(self):
        indices = {shard_index(f"key-{i}", 7) for i in range(200)}
        assert indices == set(range(7))


class TestCooccurrenceCounter:
    @pytest.mark.parametrize(
        "counter", [CooccurrenceCounter(), ShardedCooccurrenceCounter(3)]
    )
    def test_counts_with_multiplicity(self, counter):
        counts = counter.count(["b", "a", "b", "c", "b"])
        assert counts == {"b": 3, "a": 1, "c": 1}
        assert counter.pairs_counted == 5

    @pytest.mark.parametrize(
        "counter", [CooccurrenceCounter(), ShardedCooccurrenceCounter(3)]
    )
    def test_first_occurrence_order(self, counter):
        counts = counter.count(["z", "a", "z", "m"])
        assert list(counts) == ["z", "a", "m"]

    def test_pairs_counted_accumulates(self):
        counter = ShardedCooccurrenceCounter(5)
        counter.count(["a", "b"])
        counter.count(["a"])
        assert counter.pairs_counted == 3


class TestBlockCollectionCounters:
    """sizes()/total_assignments()/total_comparisons() are O(1) counters;
    they must track add/remove_block/discard exactly."""

    def test_add_and_sizes(self):
        blocks = BlockCollection()
        assert blocks.add("k", 1) == 1
        assert blocks.add("k", 2) == 2
        assert blocks.add("other", 3) == 1
        assert dict(blocks.sizes()) == {"k": 2, "other": 1}
        assert blocks.total_assignments() == 3
        assert blocks.total_comparisons() == 1

    def test_remove_block_updates_counters(self):
        blocks = BlockCollection()
        for eid in (1, 2, 3):
            blocks.add("k", eid)
        blocks.add("other", 4)
        blocks.remove_block("k")
        assert "k" not in blocks
        assert dict(blocks.sizes()) == {"other": 1}
        assert blocks.total_assignments() == 1
        assert blocks.total_comparisons() == 0

    def test_discard_updates_counters_and_drops_empty_blocks(self):
        blocks = BlockCollection()
        blocks.add("k", 1)
        blocks.add("k", 2)
        assert blocks.discard("k", 1) is True
        assert dict(blocks.sizes()) == {"k": 1}
        assert blocks.total_assignments() == 1
        assert blocks.total_comparisons() == 0
        assert blocks.discard("k", 99) is False
        assert blocks.discard("k", 2) is True
        assert "k" not in blocks
        assert dict(blocks.sizes()) == {}

    def test_counters_match_recount_after_mixed_operations(self):
        blocks = BlockCollection()
        for i in range(20):
            blocks.add(f"k{i % 4}", i)
        blocks.remove_block("k0")
        blocks.discard("k1", 1)
        recount_assignments = sum(len(b) for _, b in blocks.items())
        recount_comparisons = sum(
            len(b) * (len(b) - 1) // 2 for _, b in blocks.items()
        )
        assert blocks.total_assignments() == recount_assignments
        assert blocks.total_comparisons() == recount_comparisons
        assert dict(blocks.sizes()) == {k: len(b) for k, b in blocks.items()}


class TestShardedStores:
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_blocks_route_but_view_is_global(self, shards):
        sharded = ShardedBlockCollection(shards)
        reference = BlockCollection()
        for i in range(50):
            key = f"key-{i % 11}"
            sharded.add(key, i)
            reference.add(key, i)
        assert len(sharded) == len(reference)
        assert dict(sharded.sizes()) == dict(reference.sizes())
        assert sharded.total_assignments() == reference.total_assignments()
        assert sharded.total_comparisons() == reference.total_comparisons()
        assert sorted(sharded.keys()) == sorted(reference.keys())
        for key, members in reference.items():
            assert sharded.block(key) == members
            assert key in sharded

    def test_blocks_discard_and_remove(self):
        sharded = ShardedBlockCollection(3)
        sharded.add("k", 1)
        sharded.add("k", 2)
        assert sharded.discard("k", 1) is True
        assert sharded.block("k") == [2]
        sharded.remove_block("k")
        assert "k" not in sharded
        assert sharded.total_assignments() == 0

    def test_blacklist_merged_keys_view(self):
        sharded = ShardedBlacklist(4)
        for key in ("a", "b", "c"):
            sharded.add(key)
        assert sharded.keys == {"a", "b", "c"}
        assert "a" in sharded and "z" not in sharded
        assert len(sharded) == 3

    def test_profiles_route_by_entity_id(self):
        sharded = ShardedProfileStore(5)
        reference = ProfileStore()
        for i in range(30):
            p = profile(i, f"t{i}")
            sharded.put(p)
            reference.put(p)
        assert len(sharded) == len(reference)
        for i in range(30):
            assert sharded.get(i) == reference.get(i)
            assert i in sharded
        assert {p.eid for p in sharded.values()} == set(range(30))
        assert sharded.remove(3) is True
        assert sharded.get(3) is None
        assert sharded.remove(3) is False

    def test_matches_dedupe_across_shards(self):
        sharded = ShardedMatchStore(7)
        assert sharded.add(Match(1, 2)) is True
        assert sharded.add(Match(2, 1)) is False  # same canonical pair
        assert sharded.add(Match(3, 4)) is True
        assert sharded.pairs() == {(1, 2), (3, 4)}
        assert len(sharded) == 2
        assert (1, 2) in sharded and (2, 1) in sharded
        assert {m.key() for m in sharded.matches()} == {(1, 2), (3, 4)}

    def test_zero_shards_rejected(self):
        for ctor in (
            ShardedBlockCollection,
            ShardedBlacklist,
            ShardedProfileStore,
            ShardedMatchStore,
            ShardedCooccurrenceCounter,
            ShardedBackend,
        ):
            with pytest.raises(ConfigurationError):
                ctor(0)

    def test_shard_stores_partition_the_data(self):
        sharded = ShardedBlockCollection(4)
        for i in range(40):
            sharded.add(f"key-{i}", i)
        stores = sharded.shard_stores()
        assert len(stores) == 4
        assert sum(s.total_assignments() for s in stores) == 40
        assert sum(len(s) for s in stores) == len(sharded)


class TestBackends:
    def test_both_satisfy_the_protocol(self):
        assert isinstance(InMemoryBackend(), StateBackend)
        assert isinstance(ShardedBackend(3), StateBackend)

    def test_in_memory_accepts_injected_components(self):
        blocks = BlockCollection()
        blocks.add("k", 1)
        backend = InMemoryBackend(blocks=blocks)
        assert backend.blocks is blocks
        assert backend.state().blocks is blocks

    def test_sharded_state_view(self):
        backend = ShardedBackend(2)
        backend.matches.add(Match(1, 2))
        state = backend.state()
        assert isinstance(state, ERState)
        assert state.matches.pairs() == {(1, 2)}

    def test_sharded_default_shard_count(self):
        assert ShardedBackend().shards == 4
