"""Tests for the design-choice ablation variants."""

from __future__ import annotations

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.variants import InlineProfilePipeline, approx_block_bytes
from repro.types import Profile


def config(threshold=0.6):
    return StreamERConfig(alpha=50, beta=0.05, classifier=ThresholdClassifier(threshold))


class TestInlineProfilePipeline:
    def test_same_matches_as_reference(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        reference = StreamERPipeline(
            StreamERConfig(
                alpha=StreamERConfig.alpha_for(len(ds), 0.05),
                beta=0.05,
                classifier=ThresholdClassifier(0.6),
            ),
            instrument=False,
        )
        reference.process_many(ds.stream())
        inline = InlineProfilePipeline(
            StreamERConfig(
                alpha=StreamERConfig.alpha_for(len(ds), 0.05),
                beta=0.05,
                classifier=ThresholdClassifier(0.6),
            )
        )
        result = inline.process_many(ds.stream())
        assert result.match_pairs == reference.cl.matches.pairs()

    def test_same_matches_on_paper_example(self, paper_entities):
        reference = StreamERPipeline(
            StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3)),
            instrument=False,
        )
        reference.process_many(paper_entities)
        inline = InlineProfilePipeline(
            StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3))
        )
        result = inline.process_many(paper_entities)
        assert result.match_pairs == reference.cl.matches.pairs()

    def test_counters_track(self, paper_entities):
        inline = InlineProfilePipeline(
            StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3))
        )
        result = inline.process_many(paper_entities)
        assert result.entities_processed == 5
        assert result.comparisons_generated >= result.comparisons_after_cleaning
        assert result.blocks_pruned >= 1  # "pavilion" hits α=5

    def test_block_state_larger_than_id_blocks(self, tiny_dirty_dataset):
        """The point of the paper's profile-maintenance choice."""
        ds = tiny_dirty_dataset
        entities = list(ds.stream())[:150]

        inline = InlineProfilePipeline(config(0.99))
        inline.process_many(entities)
        reference = StreamERPipeline(config(0.99), instrument=False)
        reference.process_many(entities)
        id_blocks = {k: list(b) for k, b in reference.bb.blocks.items()}

        assert inline.block_state_bytes() > 2 * approx_block_bytes(id_blocks)


class TestApproxBlockBytes:
    def test_counts_profile_payload(self):
        small = {"k": [1, 2]}
        profile = Profile(
            eid=1,
            attributes=(("title", "a long attribute value " * 4),),
            tokens=frozenset({"several", "tokens", "here"}),
        )
        big = {"k": [profile, profile]}
        assert approx_block_bytes(big) > approx_block_bytes(small)

    def test_empty(self):
        assert approx_block_bytes({}) > 0  # the dict itself
