"""Unit tests for the stream pipeline configuration."""

from __future__ import annotations

import pytest

from repro.core.config import StreamERConfig
from repro.errors import ConfigurationError


class TestStreamERConfig:
    def test_defaults_are_valid(self):
        cfg = StreamERConfig()
        assert cfg.alpha > 1
        assert 0 < cfg.beta < 1

    @pytest.mark.parametrize("alpha", [1, 0, -5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ConfigurationError):
            StreamERConfig(alpha=alpha)

    @pytest.mark.parametrize("beta", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_bad_beta(self, beta):
        with pytest.raises(ConfigurationError):
            StreamERConfig(beta=beta)

    def test_alpha_for_applies_fraction(self):
        assert StreamERConfig.alpha_for(1000, 0.05) == 50
        assert StreamERConfig.alpha_for(1000, 0.005) == 5

    def test_alpha_for_clamps_to_two(self):
        assert StreamERConfig.alpha_for(10, 0.005) == 2

    def test_alpha_for_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            StreamERConfig.alpha_for(0)
        with pytest.raises(ConfigurationError):
            StreamERConfig.alpha_for(100, 0.0)
