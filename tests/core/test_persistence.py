"""Tests for ER state suspend/resume."""

from __future__ import annotations

import io

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.persistence import dump_state, load_state
from repro.errors import DatasetError


def make_pipeline(ds, threshold=None):
    classifier = (
        ThresholdClassifier(threshold)
        if threshold is not None
        else OracleClassifier.from_pairs(ds.ground_truth)
    )
    return StreamERPipeline(
        StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=classifier,
        ),
        instrument=False,
    )


class TestRoundTrip:
    def test_resume_equals_uninterrupted(self, tiny_dirty_dataset, tmp_path):
        ds = tiny_dirty_dataset
        entities = list(ds.stream())
        half = len(entities) // 2

        uninterrupted = make_pipeline(ds)
        uninterrupted.process_many(entities)

        first = make_pipeline(ds)
        first.process_many(entities[:half])
        path = tmp_path / "state.json"
        dump_state(first, path)

        resumed = make_pipeline(ds)
        load_state(resumed, path)
        assert resumed.entities_processed == half
        resumed.process_many(entities[half:])

        assert resumed.cl.matches.pairs() == uninterrupted.cl.matches.pairs()
        assert dict(resumed.bb.blocks.items()) == dict(
            uninterrupted.bb.blocks.items()
        )
        assert resumed.bb.blacklist.keys == uninterrupted.bb.blacklist.keys

    def test_clean_clean_tuple_ids_round_trip(self, tiny_clean_dataset, tmp_path):
        ds = tiny_clean_dataset
        entities = list(ds.stream())
        pipeline = make_pipeline(ds)
        pipeline.process_many(entities[:100])
        path = tmp_path / "state.json"
        dump_state(pipeline, path)

        restored = make_pipeline(ds)
        load_state(restored, path)
        assert restored.cl.matches.pairs() == pipeline.cl.matches.pairs()
        assert len(restored.lm.profiles) == len(pipeline.lm.profiles)

    def test_dump_to_stream(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        pipeline = make_pipeline(ds, threshold=0.9)
        pipeline.process_many(list(ds.stream())[:20])
        buffer = io.StringIO()
        dump_state(pipeline, buffer)
        buffer.seek(0)
        restored = make_pipeline(ds, threshold=0.9)
        load_state(restored, buffer)
        assert restored.entities_processed == 20


class TestGuards:
    def test_load_into_used_pipeline_rejected(self, tiny_dirty_dataset, tmp_path):
        ds = tiny_dirty_dataset
        pipeline = make_pipeline(ds, threshold=0.9)
        pipeline.process_many(list(ds.stream())[:5])
        path = tmp_path / "state.json"
        dump_state(pipeline, path)
        with pytest.raises(DatasetError, match="fresh"):
            load_state(pipeline, path)

    def test_rejects_foreign_document(self, tiny_dirty_dataset, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        pipeline = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        with pytest.raises(DatasetError, match="not a repro"):
            load_state(pipeline, path)

    def test_rejects_future_version(self, tiny_dirty_dataset, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"format": "repro-er-state", "version": 99}')
        pipeline = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        with pytest.raises(DatasetError, match="version"):
            load_state(pipeline, path)
