"""Tests for ER state suspend/resume."""

from __future__ import annotations

import io
import json

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.persistence import dump_state, load_state
from repro.errors import DatasetError


def make_pipeline(ds, threshold=None):
    classifier = (
        ThresholdClassifier(threshold)
        if threshold is not None
        else OracleClassifier.from_pairs(ds.ground_truth)
    )
    return StreamERPipeline(
        StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            clean_clean=ds.clean_clean,
            classifier=classifier,
        ),
        instrument=False,
    )


class TestRoundTrip:
    def test_resume_equals_uninterrupted(self, tiny_dirty_dataset, tmp_path):
        ds = tiny_dirty_dataset
        entities = list(ds.stream())
        half = len(entities) // 2

        uninterrupted = make_pipeline(ds)
        uninterrupted.process_many(entities)

        first = make_pipeline(ds)
        first.process_many(entities[:half])
        path = tmp_path / "state.json"
        dump_state(first, path)

        resumed = make_pipeline(ds)
        load_state(resumed, path)
        assert resumed.entities_processed == half
        resumed.process_many(entities[half:])

        assert resumed.cl.matches.pairs() == uninterrupted.cl.matches.pairs()
        assert dict(resumed.bb.blocks.items()) == dict(
            uninterrupted.bb.blocks.items()
        )
        assert resumed.bb.blacklist.keys == uninterrupted.bb.blacklist.keys

    def test_clean_clean_tuple_ids_round_trip(self, tiny_clean_dataset, tmp_path):
        ds = tiny_clean_dataset
        entities = list(ds.stream())
        pipeline = make_pipeline(ds)
        pipeline.process_many(entities[:100])
        path = tmp_path / "state.json"
        dump_state(pipeline, path)

        restored = make_pipeline(ds)
        load_state(restored, path)
        assert restored.cl.matches.pairs() == pipeline.cl.matches.pairs()
        assert len(restored.lm.profiles) == len(pipeline.lm.profiles)

    def test_dump_to_stream(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        pipeline = make_pipeline(ds, threshold=0.9)
        pipeline.process_many(list(ds.stream())[:20])
        buffer = io.StringIO()
        dump_state(pipeline, buffer)
        buffer.seek(0)
        restored = make_pipeline(ds, threshold=0.9)
        load_state(restored, buffer)
        assert restored.entities_processed == 20


class TestGuards:
    def test_load_into_used_pipeline_rejected(self, tiny_dirty_dataset, tmp_path):
        ds = tiny_dirty_dataset
        pipeline = make_pipeline(ds, threshold=0.9)
        pipeline.process_many(list(ds.stream())[:5])
        path = tmp_path / "state.json"
        dump_state(pipeline, path)
        with pytest.raises(DatasetError, match="fresh"):
            load_state(pipeline, path)

    def test_rejects_foreign_document(self, tiny_dirty_dataset, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        pipeline = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        with pytest.raises(DatasetError, match="not a repro"):
            load_state(pipeline, path)

    def test_rejects_future_version(self, tiny_dirty_dataset, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"format": "repro-er-state", "version": 99}')
        pipeline = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        with pytest.raises(DatasetError, match="version"):
            load_state(pipeline, path)


class TestTokenIdStability:
    """Regression: v1 re-interned tokens on load, which assigns ids in
    iteration order of each profile's token set and can reorder them.
    The v2 format persists the dictionary itself, in id order."""

    def make_interned(self, n: int):
        return StreamERPipeline(
            StreamERConfig.interned(
                alpha=StreamERConfig.alpha_for(n, 0.05),
                beta=0.05,
                classifier=ThresholdClassifier(0.5),
            ),
            instrument=False,
        )

    def test_interned_ids_survive_the_round_trip(self, tiny_dirty_dataset, tmp_path):
        entities = list(tiny_dirty_dataset.stream())[:80]
        first = self.make_interned(len(entities))
        first.process_many(entities)
        path = tmp_path / "state.json"
        dump_state(first, path)

        restored = self.make_interned(len(entities))
        load_state(restored, path)
        assert list(restored.backend.dictionary) == list(first.backend.dictionary)
        originals = {p.eid: p for p in first.backend.profiles.values()}
        for profile in restored.backend.profiles.values():
            assert profile.token_ids == originals[profile.eid].token_ids

    def test_dump_is_the_snapshot_format(self, tiny_dirty_dataset, tmp_path):
        entities = list(tiny_dirty_dataset.stream())[:10]
        pipeline = self.make_interned(len(entities))
        pipeline.process_many(entities)
        path = tmp_path / "state.json"
        dump_state(pipeline, path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro-er-snapshot"
        assert document["version"] == 2
        assert document["dictionary"]  # the fix: ids ship with the state


class TestLegacyV1:
    def test_v1_document_loads_through_the_shim(self, tiny_dirty_dataset, tmp_path):
        document = {
            "format": "repro-er-state",
            "version": 1,
            "entities_processed": 2,
            "blocks": {"lamp": [1, 2]},
            "blacklist": ["common"],
            "profiles": [
                {
                    "eid": 1,
                    "attributes": [["title", "red lamp"]],
                    "tokens": ["red", "lamp"],
                    "source": None,
                },
                {
                    "eid": 2,
                    "attributes": [["title", "red lamp"]],
                    "tokens": ["red", "lamp"],
                    "source": None,
                },
            ],
            "matches": [{"left": 1, "right": 2, "similarity": 1.0}],
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(document))
        pipeline = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        load_state(pipeline, path)
        assert pipeline.entities_processed == 2
        assert pipeline.backend.blocks.block("lamp") == [1, 2]
        assert "common" in pipeline.backend.blacklist
        assert pipeline.backend.matches.pairs() == {(1, 2)}


class TestIntegrity:
    def test_tampered_document_is_rejected(self, tiny_dirty_dataset, tmp_path):
        pipeline = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        pipeline.process_many(list(tiny_dirty_dataset.stream())[:10])
        path = tmp_path / "state.json"
        dump_state(pipeline, path)
        document = json.loads(path.read_text())
        document["entities_processed"] = 999
        path.write_text(json.dumps(document))
        fresh = make_pipeline(tiny_dirty_dataset, threshold=0.9)
        with pytest.raises(DatasetError, match="integrity"):
            load_state(fresh, path)
