"""Unit tests for the pipeline stages, including the paper's worked example
of Figure 4 (block pruning with α=5 and block ghosting with β=0.6)."""

from __future__ import annotations

import pytest

from repro.core.stages import (
    BlockBuildingStage,
    BlockGhostingStage,
    BlockedEntity,
    CandidateComparisons,
    ClassificationStage,
    CleanedComparisons,
    ComparisonCleaningStage,
    ComparisonGenerationStage,
    ComparisonStage,
    DataReadingStage,
    LoadManagementStage,
    MaterializedComparisons,
)
from repro.classification import ThresholdClassifier
from repro.errors import UnknownProfileError
from repro.types import Comparison, Profile, ScoredComparison


def make_profile(eid, tokens, source=None):
    return Profile(
        eid=eid,
        attributes=(("v", " ".join(sorted(tokens))),),
        tokens=frozenset(tokens),
        source=source,
    )


class TestDataReadingStage:
    def test_produces_profile_with_keys(self, paper_entities):
        stage = DataReadingStage()
        p1 = stage(paper_entities[0])
        assert p1.eid == 1
        assert {"wood", "top", "panel", "pavilion", "john"} <= p1.tokens


class TestBlockBuildingStage:
    def test_adds_entity_to_all_key_blocks(self):
        stage = BlockBuildingStage(alpha=10)
        stage(make_profile(1, {"a", "b"}))
        assert stage.blocks.block("a") == [1]
        assert stage.blocks.block("b") == [1]

    def test_singletons_removed_from_snapshot_but_kept_globally(self):
        stage = BlockBuildingStage(alpha=10)
        out = stage(make_profile(1, {"a"}))
        assert out.others == {}          # snapshot: no partner yet
        assert stage.blocks.block("a") == [1]  # global: kept (may grow)

    def test_snapshot_contains_earlier_members(self):
        stage = BlockBuildingStage(alpha=10)
        stage(make_profile(1, {"a"}))
        out = stage(make_profile(2, {"a"}))
        assert out.others == {"a": (1,)}
        assert out.block_size("a") == 2

    def test_block_pruning_at_alpha(self):
        stage = BlockBuildingStage(alpha=3)
        stage(make_profile(1, {"k"}))
        stage(make_profile(2, {"k"}))
        out = stage(make_profile(3, {"k"}))  # reaches size 3 = α → pruned
        assert "k" not in stage.blocks
        assert "k" in stage.blacklist
        assert out.others == {}
        assert stage.pruned_blocks == 1

    def test_blacklisted_key_is_skipped_for_later_entities(self):
        stage = BlockBuildingStage(alpha=2)
        stage(make_profile(1, {"k"}))
        stage(make_profile(2, {"k"}))  # prunes and blacklists "k"
        out = stage(make_profile(3, {"k"}))
        assert "k" not in stage.blocks
        assert out.others == {}

    def test_disabled_pruning_keeps_oversized_blocks(self):
        stage = BlockBuildingStage(alpha=2, enabled=False)
        for eid in range(5):
            out = stage(make_profile(eid, {"k"}))
        assert len(stage.blocks.block("k")) == 5
        assert out.others["k"] == (0, 1, 2, 3)

    def test_paper_example_pavilion_pruned_at_e5(self, paper_entities):
        dr = DataReadingStage()
        bb = BlockBuildingStage(alpha=5)
        outputs = [bb(dr(e)) for e in paper_entities]
        # Processing e5 makes "pavilion" reach size 5 = α → pruned (the
        # paper's narrative; faithfully applying Algorithm 1 also prunes
        # "panel", which reaches size 5 with e5 as well).
        assert "pavilion" in bb.blacklist
        assert "panel" in bb.blacklist
        assert "pavilion" not in bb.blocks
        assert "pavilion" not in outputs[-1].others
        # The singleton "side" block is not part of e5's snapshot either.
        assert "side" not in outputs[-1].others
        # Surviving snapshot: the "wood" block (e1's "wooden" and e5's
        # "timber" both standardized to "wood", as in Figure 2).
        assert set(outputs[-1].others) == {"wood"}
        assert set(outputs[-1].others["wood"]) == {1, 3}


class TestBlockGhostingStage:
    def test_keeps_all_when_within_threshold(self):
        stage = BlockGhostingStage(beta=0.5)
        blocked = BlockedEntity(
            profile=make_profile(9, {"a", "b"}),
            others={"a": (1,), "b": (2, 3)},
        )
        out = stage(blocked)
        assert set(out.others) == {"a", "b"}
        assert stage.ghosted_keys == 0

    def test_ghosts_keys_of_general_blocks(self):
        stage = BlockGhostingStage(beta=0.6)
        # b_min = 2, threshold = 2/0.6 ≈ 3.33 → the size-4 block is ghosted.
        blocked = BlockedEntity(
            profile=make_profile(9, set("ab")),
            others={"small": (1,), "big": (1, 2, 3)},
        )
        out = stage(blocked)
        assert set(out.others) == {"small"}
        assert stage.ghosted_keys == 1

    def test_smallest_block_never_ghosted(self):
        stage = BlockGhostingStage(beta=0.01)
        blocked = BlockedEntity(
            profile=make_profile(9, {"a"}), others={"only": (1, 2, 3, 4)}
        )
        out = stage(blocked)
        assert set(out.others) == {"only"}

    def test_disabled_passes_through(self):
        stage = BlockGhostingStage(beta=0.6, enabled=False)
        blocked = BlockedEntity(
            profile=make_profile(9, set()),
            others={"small": (1,), "big": (1, 2, 3, 4, 5, 6)},
        )
        assert set(stage(blocked).others) == {"small", "big"}

    def test_empty_snapshot_is_noop(self):
        stage = BlockGhostingStage(beta=0.5)
        blocked = BlockedEntity(profile=make_profile(9, set()), others={})
        assert stage(blocked).others == {}

    def test_paper_example_e4_pavilion_ghosted(self, paper_entities):
        """At e4, b_min = 2 ("fibre"), pavilion has size 4 > 2/0.6 → ghosted.

        The paper walks through exactly this pruning for "pavilion"; with
        all five entities sharing "panel" that block is size 4 at e4 too,
        so Algorithm 2 ghosts it as well — the surviving snapshot is the
        two discriminative blocks "fibre" and "glass".
        """
        dr = DataReadingStage()
        bb = BlockBuildingStage(alpha=5)
        bg = BlockGhostingStage(beta=0.6)
        out = None
        for e in paper_entities[:4]:
            out = bg(bb(dr(e)))
        assert out is not None
        assert "pavilion" not in out.others
        assert set(out.others) == {"fibre", "glass"}
        assert set(out.others["fibre"]) == {2}


class TestComparisonGenerationStage:
    def test_emits_partner_per_shared_block(self):
        stage = ComparisonGenerationStage()
        blocked = BlockedEntity(
            profile=make_profile(9, set()),
            others={"a": (1, 2), "b": (2,)},
        )
        out = stage(blocked)
        assert sorted(out.candidates, key=repr) == [1, 2, 2]
        assert stage.generated == 3

    def test_clean_clean_skips_same_source(self):
        stage = ComparisonGenerationStage(clean_clean=True)
        blocked = BlockedEntity(
            profile=make_profile(("x", 9), set()),
            others={"a": (("x", 1), ("y", 2))},
        )
        out = stage(blocked)
        assert out.candidates == [("y", 2)]

    def test_skips_self(self):
        stage = ComparisonGenerationStage()
        blocked = BlockedEntity(profile=make_profile(9, set()), others={"a": (9, 1)})
        assert stage(blocked).candidates == [1]


class TestComparisonCleaningStage:
    def test_keeps_counts_at_or_above_average(self):
        stage = ComparisonCleaningStage()
        generated = CandidateComparisons(
            profile=make_profile(4, set()), candidates=[1, 2, 2]
        )
        out = stage(generated)
        # counts: 1→1, 2→2; avg = 1.5 → only 2 survives (the paper's C'_4).
        assert out.candidates == [2]

    def test_all_equal_counts_all_survive(self):
        stage = ComparisonCleaningStage()
        generated = CandidateComparisons(
            profile=make_profile(4, set()), candidates=[1, 2, 3]
        )
        assert sorted(stage(generated).candidates) == [1, 2, 3]

    def test_empty_input(self):
        stage = ComparisonCleaningStage()
        generated = CandidateComparisons(profile=make_profile(4, set()), candidates=[])
        assert stage(generated).candidates == []

    def test_disabled_only_deduplicates(self):
        stage = ComparisonCleaningStage(enabled=False)
        generated = CandidateComparisons(
            profile=make_profile(4, set()), candidates=[1, 2, 2]
        )
        assert sorted(stage(generated).candidates) == [1, 2]


class TestLoadManagementStage:
    def test_registers_then_resolves(self):
        stage = LoadManagementStage()
        p1 = make_profile(1, {"a"})
        stage(CleanedComparisons(profile=p1, candidates=[]))
        p2 = make_profile(2, {"a"})
        out = stage(CleanedComparisons(profile=p2, candidates=[1]))
        assert len(out.comparisons) == 1
        assert out.comparisons[0].right.eid == 1

    def test_unknown_partner_raises(self):
        stage = LoadManagementStage()
        with pytest.raises(UnknownProfileError):
            stage(CleanedComparisons(profile=make_profile(2, set()), candidates=[99]))


class TestComparisonStage:
    def test_scores_jaccard(self):
        stage = ComparisonStage()
        a, b = make_profile(1, {"x", "y"}), make_profile(2, {"y", "z"})
        out = stage(
            MaterializedComparisons(profile=a, comparisons=[Comparison(a, b)])
        )
        assert out.scored[0].similarity == pytest.approx(1 / 3)
        assert stage.compared == 1


class TestClassificationStage:
    def test_collects_new_matches_only(self):
        stage = ClassificationStage(ThresholdClassifier(0.5))
        a, b = make_profile(1, {"x"}), make_profile(2, {"x"})
        scored = ScoredComparison(Comparison(a, b), similarity=1.0)
        from repro.core.stages import ScoredComparisons

        first = stage(ScoredComparisons(profile=a, scored=[scored]))
        second = stage(ScoredComparisons(profile=a, scored=[scored]))
        assert len(first) == 1
        assert second == []  # duplicate pair not re-reported
        assert len(stage.matches) == 1
