"""Property-based equivalence: optimized pipeline ≡ pure functional model.

The optimized stage implementation (local state, id-only blocks, profile
map) must discover exactly the matches the paper's pure functional model
(§III) prescribes, on arbitrary inputs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.model import ModelConfig, fold_er
from repro.types import EntityDescription

# Small token alphabet so entities actually collide in blocks.
tokens = st.sampled_from(
    ["glass", "panel", "wood", "fibre", "roof", "window", "door", "steel"]
)
values = st.lists(tokens, min_size=1, max_size=4).map(" ".join)
attributes = st.dictionaries(
    st.sampled_from(["title", "material", "part", "desc"]), values,
    min_size=1, max_size=3,
)


@st.composite
def entity_lists(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    return [
        EntityDescription.create(i, draw(attributes)) for i in range(n)
    ]


@given(
    entities=entity_lists(),
    alpha=st.integers(min_value=2, max_value=8),
    beta=st.sampled_from([0.1, 0.5, 0.9]),
    threshold=st.sampled_from([0.2, 0.5]),
    enable_bc=st.booleans(),
    enable_cc=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_pipeline_matches_functional_model(
    entities, alpha, beta, threshold, enable_bc, enable_cc
):
    classifier = ThresholdClassifier(threshold)
    pipeline = StreamERPipeline(
        StreamERConfig(
            alpha=alpha,
            beta=beta,
            enable_block_cleaning=enable_bc,
            enable_comparison_cleaning=enable_cc,
            classifier=classifier,
        ),
        instrument=False,
    )
    result = pipeline.process_many(entities)

    model_state = fold_er(
        entities,
        ModelConfig(
            alpha=alpha,
            beta=beta,
            enable_block_cleaning=enable_bc,
            enable_comparison_cleaning=enable_cc,
            classifier=classifier,
        ),
    )
    assert result.match_pairs == set(model_state.matches)


@given(entities=entity_lists())
@settings(max_examples=30, deadline=None)
def test_blocks_agree_between_pipeline_and_model(entities):
    """The block collections (and blacklists) coincide too."""
    pipeline = StreamERPipeline(
        StreamERConfig(alpha=4, beta=0.5, classifier=ThresholdClassifier(0.5)),
        instrument=False,
    )
    pipeline.process_many(entities)
    model_state = fold_er(
        entities, ModelConfig(alpha=4, beta=0.5, classifier=ThresholdClassifier(0.5))
    )
    pipeline_blocks = {
        key: tuple(block) for key, block in pipeline.state.blocks.items()
    }
    assert pipeline_blocks == dict(model_state.blocks)
    assert pipeline.state.blacklist.keys == set(model_state.blacklist)
