"""Unit tests for the clean-clean ER support."""

from __future__ import annotations

import pytest

from repro.core.cleanclean import combine, source_of, tag, tag_pairs
from repro.errors import DatasetError
from repro.types import EntityDescription


def entities(prefix: str, n: int) -> list[EntityDescription]:
    return [EntityDescription.create(i, {"a": f"{prefix}{i}"}) for i in range(n)]


class TestTag:
    def test_wraps_identifier(self):
        e = tag(EntityDescription.create(3, {"a": "x"}), "web")
        assert e.eid == ("web", 3)
        assert e.source == "web"


class TestCombine:
    def test_interleaves_round_robin(self):
        combined = list(combine(entities("l", 2), entities("r", 2)))
        assert [e.eid for e in combined] == [("x", 0), ("y", 0), ("x", 1), ("y", 1)]

    def test_handles_uneven_lengths(self):
        combined = list(combine(entities("l", 3), entities("r", 1)))
        assert len(combined) == 4
        assert combined[-1].eid == ("x", 2)

    def test_right_longer(self):
        combined = list(combine(entities("l", 1), entities("r", 3)))
        assert [e.eid for e in combined].count(("y", 2)) == 1

    def test_sequential_mode(self):
        combined = list(combine(entities("l", 2), entities("r", 2), interleave=False))
        assert [e.eid[0] for e in combined] == ["x", "x", "y", "y"]

    def test_custom_names(self):
        combined = list(combine(entities("l", 1), entities("r", 1), "amazon", "google"))
        assert combined[0].eid[0] == "amazon"

    def test_same_name_rejected(self):
        with pytest.raises(DatasetError):
            list(combine(entities("l", 1), entities("r", 1), "a", "a"))

    def test_empty_inputs(self):
        assert list(combine([], [])) == []


class TestHelpers:
    def test_source_of(self):
        assert source_of(("x", 5)) == "x"

    def test_source_of_rejects_plain_id(self):
        with pytest.raises(DatasetError):
            source_of(5)

    def test_tag_pairs(self):
        tagged = tag_pairs([(1, 2)])
        assert tagged == {(("x", 1), ("y", 2))}
