"""Tests for pipeline monitoring."""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.monitoring import PipelineMonitor, Snapshot
from repro.errors import ConfigurationError
from repro.observability import MetricsRegistry
from repro.parallel import MultiprocessERPipeline, ParallelERPipeline
from repro.types import EntityDescription


def make_monitor(interval=10, on_snapshot=None):
    pipeline = StreamERPipeline(
        StreamERConfig(alpha=100, beta=0.1, classifier=ThresholdClassifier(0.5)),
        instrument=False,
    )
    return PipelineMonitor(pipeline, interval=interval, on_snapshot=on_snapshot)


def entities(n):
    return [
        EntityDescription.create(i, {"t": f"token{i % 7} shared words"})
        for i in range(n)
    ]


class TestValidation:
    def test_rejects_bad_interval(self):
        pipeline = StreamERPipeline(instrument=False)
        with pytest.raises(ConfigurationError):
            PipelineMonitor(pipeline, interval=0)

    def test_rejects_tiny_window(self):
        pipeline = StreamERPipeline(instrument=False)
        with pytest.raises(ConfigurationError):
            PipelineMonitor(pipeline, window=1)


class TestSnapshots:
    def test_emitted_on_schedule(self):
        received: list[Snapshot] = []
        monitor = make_monitor(interval=10, on_snapshot=received.append)
        monitor.process_many(entities(35))
        assert len(received) == 3
        assert [s.entities_processed for s in received] == [10, 20, 30]

    def test_manual_snapshot(self):
        monitor = make_monitor(interval=1000)
        monitor.process_many(entities(5))
        snap = monitor.snapshot()
        assert snap.entities_processed == 5
        assert snap.profiles_stored == 5
        assert snap.blocks > 0

    def test_recent_rates_use_previous_snapshot(self):
        monitor = make_monitor(interval=10)
        monitor.process_many(entities(30))
        last = monitor.history[-1]
        assert last.throughput_recent > 0
        assert last.comparisons_per_entity_recent >= 0

    def test_history_bounded(self):
        monitor = make_monitor(interval=1)
        monitor.history = type(monitor.history)(maxlen=5)
        monitor.process_many(entities(20))
        assert len(monitor.history) == 5

    def test_matches_pass_through(self):
        monitor = make_monitor(interval=100)
        out = monitor.process_many(
            [
                EntityDescription.create(1, {"a": "alpha beta gamma"}),
                EntityDescription.create(2, {"a": "alpha beta gamma"}),
            ]
        )
        assert [m.key() for m in out] == [(1, 2)]

    def test_summary_readable(self):
        monitor = make_monitor(interval=1000)
        monitor.process_many(entities(3))
        text = monitor.snapshot().summary()
        assert "3 entities" in text
        assert "blocks" in text


def _snap(entities_processed: int, elapsed: float, executed: int,
          throughput: float = 0.0) -> Snapshot:
    return Snapshot(
        entities_processed=entities_processed,
        elapsed_seconds=elapsed,
        throughput_recent=throughput,
        comparisons_generated=executed,
        comparisons_executed=executed,
        comparisons_per_entity_recent=0.0,
        matches_found=0,
        blocks=0,
        blacklisted_keys=0,
        profiles_stored=0,
    )


class TestRecentRates:
    def test_rates_span_whole_retained_window(self):
        # Regression: the docstring promises rates over the retained
        # window, but the old code diffed against history[-1] (one
        # interval).  Base must be the *oldest* retained snapshot.
        monitor = make_monitor(interval=1000)
        monitor.history.append(_snap(0, 0.0, 0))
        monitor.history.append(_snap(150, 1.0, 0, throughput=150.0))
        throughput, _ = monitor._recent_rates(200, 2.0, 0)
        assert throughput == pytest.approx(100.0)  # (200-0)/(2-0), not 50/s

    def test_zero_time_span_carries_previous_rate(self):
        # Regression: two snapshots inside timer resolution must not
        # report a rate of 0.0 — that reads as a stall.
        monitor = make_monitor(interval=1000)
        monitor.history.append(_snap(100, 1.0, 0, throughput=100.0))
        monitor.history.append(_snap(120, 1.2, 0, throughput=100.0))
        throughput, _ = monitor._recent_rates(120, 1.0, 0)
        assert throughput == pytest.approx(100.0)


def monitored_config():
    return StreamERConfig(alpha=100, beta=0.1, classifier=ThresholdClassifier(0.5))


class TestNonSequentialExecutors:
    """The monitor must read any executor, not poke sequential attributes."""

    def test_thread_parallel_pipeline(self):
        pipeline = ParallelERPipeline(monitored_config(), processes=8)
        pipeline.run(entities(30))
        snap = PipelineMonitor(pipeline, interval=10).snapshot()
        assert snap.entities_processed == 30
        assert snap.profiles_stored == 30
        assert snap.blocks > 0
        assert snap.comparisons_generated > 0

    def test_multiprocess_pipeline(self):
        pipeline = MultiprocessERPipeline(
            monitored_config(), workers=2, chunk_size=16
        )
        pipeline.run(entities(30))
        snap = PipelineMonitor(pipeline, interval=10).snapshot()
        assert snap.entities_processed == 30
        assert snap.profiles_stored == 30
        assert snap.comparisons_executed > 0

    def test_registry_backed_counters(self):
        registry = MetricsRegistry()
        pipeline = ParallelERPipeline(
            monitored_config(), processes=8, registry=registry
        )
        pipeline.run(entities(30))
        monitor = PipelineMonitor(pipeline, interval=10)
        snap = monitor.snapshot()
        assert monitor.registry is registry
        assert snap.comparisons_generated > 0
        assert snap.comparisons_executed > 0
