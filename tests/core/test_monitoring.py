"""Tests for pipeline monitoring."""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.monitoring import PipelineMonitor, Snapshot
from repro.errors import ConfigurationError
from repro.types import EntityDescription


def make_monitor(interval=10, on_snapshot=None):
    pipeline = StreamERPipeline(
        StreamERConfig(alpha=100, beta=0.1, classifier=ThresholdClassifier(0.5)),
        instrument=False,
    )
    return PipelineMonitor(pipeline, interval=interval, on_snapshot=on_snapshot)


def entities(n):
    return [
        EntityDescription.create(i, {"t": f"token{i % 7} shared words"})
        for i in range(n)
    ]


class TestValidation:
    def test_rejects_bad_interval(self):
        pipeline = StreamERPipeline(instrument=False)
        with pytest.raises(ConfigurationError):
            PipelineMonitor(pipeline, interval=0)

    def test_rejects_tiny_window(self):
        pipeline = StreamERPipeline(instrument=False)
        with pytest.raises(ConfigurationError):
            PipelineMonitor(pipeline, window=1)


class TestSnapshots:
    def test_emitted_on_schedule(self):
        received: list[Snapshot] = []
        monitor = make_monitor(interval=10, on_snapshot=received.append)
        monitor.process_many(entities(35))
        assert len(received) == 3
        assert [s.entities_processed for s in received] == [10, 20, 30]

    def test_manual_snapshot(self):
        monitor = make_monitor(interval=1000)
        monitor.process_many(entities(5))
        snap = monitor.snapshot()
        assert snap.entities_processed == 5
        assert snap.profiles_stored == 5
        assert snap.blocks > 0

    def test_recent_rates_use_previous_snapshot(self):
        monitor = make_monitor(interval=10)
        monitor.process_many(entities(30))
        last = monitor.history[-1]
        assert last.throughput_recent > 0
        assert last.comparisons_per_entity_recent >= 0

    def test_history_bounded(self):
        monitor = make_monitor(interval=1)
        monitor.history = type(monitor.history)(maxlen=5)
        monitor.process_many(entities(20))
        assert len(monitor.history) == 5

    def test_matches_pass_through(self):
        monitor = make_monitor(interval=100)
        out = monitor.process_many(
            [
                EntityDescription.create(1, {"a": "alpha beta gamma"}),
                EntityDescription.create(2, {"a": "alpha beta gamma"}),
            ]
        )
        assert [m.key() for m in out] == [(1, 2)]

    def test_summary_readable(self):
        monitor = make_monitor(interval=1000)
        monitor.process_many(entities(3))
        text = monitor.snapshot().summary()
        assert "3 entities" in text
        assert "blocks" in text
