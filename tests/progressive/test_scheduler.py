"""Tests for progressive ER scheduling."""

from __future__ import annotations

import pytest

from repro.blocking import block_purging, token_blocking
from repro.classification import OracleClassifier, ThresholdClassifier
from repro.errors import ConfigurationError
from repro.progressive import ProgressiveConfig, ProgressiveResolver, recall_curve
from repro.reading.profiles import ProfileBuilder
from repro.types import Profile


def profile(eid, tokens):
    return Profile(eid=eid, attributes=(), tokens=frozenset(tokens))


SMALL_BLOCKS = {
    "a": [1, 2],
    "b": [1, 2, 3],
    "c": [2, 3],
    "d": [3, 4],
}
PROFILES = {
    1: profile(1, {"a", "b"}),
    2: profile(2, {"a", "b", "c"}),
    3: profile(3, {"b", "c", "d"}),
    4: profile(4, {"d"}),
}


class TestConfig:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            ProgressiveConfig(scheduler="random")


class TestSchedule:
    def test_global_orders_by_weight(self):
        resolver = ProgressiveResolver(ProgressiveConfig(scheduler="global"))
        schedule = resolver.schedule(SMALL_BLOCKS)
        weights = [w for _, w in schedule]
        assert weights == sorted(weights, reverse=True)

    def test_round_robin_covers_all_pairs_once(self):
        resolver = ProgressiveResolver(ProgressiveConfig(scheduler="round-robin"))
        schedule = resolver.schedule(SMALL_BLOCKS)
        pairs = [pair for pair, _ in schedule]
        assert len(pairs) == len(set(pairs)) == 4

    def test_both_schedulers_same_pair_set(self):
        g = {p for p, _ in ProgressiveResolver(
            ProgressiveConfig(scheduler="global")).schedule(SMALL_BLOCKS)}
        rr = {p for p, _ in ProgressiveResolver(
            ProgressiveConfig(scheduler="round-robin")).schedule(SMALL_BLOCKS)}
        assert g == rr


class TestResolve:
    def test_budget_caps_comparisons(self):
        resolver = ProgressiveResolver(
            ProgressiveConfig(classifier=ThresholdClassifier(0.5))
        )
        steps = list(resolver.resolve(SMALL_BLOCKS, PROFILES, budget=2))
        assert len(steps) == 2

    def test_negative_budget_rejected(self):
        resolver = ProgressiveResolver()
        with pytest.raises(ConfigurationError):
            list(resolver.resolve(SMALL_BLOCKS, PROFILES, budget=-1))

    def test_executes_everything_without_budget(self):
        resolver = ProgressiveResolver(
            ProgressiveConfig(classifier=ThresholdClassifier(0.5))
        )
        steps = list(resolver.resolve(SMALL_BLOCKS, PROFILES))
        assert len(steps) == 4
        assert all(0.0 <= s.similarity <= 1.0 for s in steps)


class TestRecallCurve:
    def _steps(self, dataset, budget=None, scheduler="global"):
        builder = ProfileBuilder()
        profiles = {e.eid: builder.build(e) for e in dataset.entities}
        blocks = block_purging(token_blocking(profiles.values()), r=0.1)
        resolver = ProgressiveResolver(
            ProgressiveConfig(
                scheduler=scheduler,
                classifier=OracleClassifier.from_pairs(dataset.ground_truth),
            )
        )
        return list(resolver.resolve(blocks, profiles, budget=budget))

    def test_curve_monotone_nondecreasing(self, tiny_dirty_dataset):
        steps = self._steps(tiny_dirty_dataset, budget=3000)
        curve = recall_curve(steps, tiny_dirty_dataset.ground_truth)
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_progressive_beats_reversed_order_early(self, tiny_dirty_dataset):
        """The point of progressive ER: early budget finds more matches."""
        steps = self._steps(tiny_dirty_dataset)
        early = steps[: max(1, len(steps) // 10)]
        anti = list(reversed(steps))[: len(early)]
        found_early = sum(1 for s in early if s.match is not None)
        found_anti = sum(1 for s in anti if s.match is not None)
        assert found_early >= found_anti

    def test_empty_steps(self):
        assert recall_curve([], set()) == []
