"""Tests for center and merge-center clustering."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    center_clustering,
    clusters_from_matches,
    merge_center_clustering,
)
from repro.types import Match


def m(a, b, sim=1.0):
    return Match(left=a, right=b, similarity=sim)


class TestCenterClustering:
    def test_simple_cluster(self):
        clusters = center_clustering([m(1, 2), m(1, 3)])
        assert clusters == [frozenset({1, 2, 3})]

    def test_non_center_edges_ignored(self):
        # (1,2) forms cluster with center 1; (2,3) attaches to member 2 → no.
        clusters = center_clustering([m(1, 2, 0.9), m(2, 3, 0.5)])
        assert frozenset({1, 2}) in clusters
        assert all(3 not in c for c in clusters)

    def test_similarity_order_determines_centers(self):
        # Strongest edge first: (2,3) creates center 2; then (1,2) joins 1.
        clusters = center_clustering([m(1, 2, 0.5), m(2, 3, 0.9)])
        assert clusters == [frozenset({1, 2, 3})]

    def test_empty(self):
        assert center_clustering([]) == []


class TestMergeCenterClustering:
    def test_center_edges_merge_clusters(self):
        matches = [m(1, 2, 0.9), m(3, 4, 0.8), m(1, 3, 0.7)]
        clusters = merge_center_clustering(matches)
        assert clusters == [frozenset({1, 2, 3, 4})]

    def test_at_least_as_fine_as_connected_components(self):
        matches = [m(1, 2, 0.9), m(2, 3, 0.5), m(4, 5, 0.8)]
        merge = merge_center_clustering(matches)
        cc = clusters_from_matches(matches)
        merged_entities = {e for c in merge for e in c}
        cc_entities = {e for c in cc for e in c}
        assert merged_entities <= cc_entities

    def test_empty(self):
        assert merge_center_clustering([]) == []


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 15), st.integers(0, 15),
            st.floats(min_value=0.01, max_value=1.0),
        ).filter(lambda t: t[0] != t[1]),
        max_size=25,
    )
)
def test_all_algorithms_produce_disjoint_refinements(raw):
    matches = [m(a, b, s) for a, b, s in raw]
    cc_entities = {e for c in clusters_from_matches(matches) for e in c}
    for algorithm in (center_clustering, merge_center_clustering):
        clusters = algorithm(matches)
        seen: set = set()
        for cluster in clusters:
            assert len(cluster) >= 2
            assert not (cluster & seen)
            seen |= cluster
        # Conservative algorithms never cluster entities CC would not.
        assert seen <= cc_entities
