"""Tests for the incremental match clusterer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import IncrementalClusterer, clusters_from_matches
from repro.types import Match


class TestIncrementalClusterer:
    def test_transitive_merging(self):
        c = IncrementalClusterer()
        c.add_match((1, 2))
        c.add_match((2, 3))
        assert c.same_entity(1, 3)
        assert c.cluster_of(1) == frozenset({1, 2, 3})

    def test_add_match_reports_effective_merges(self):
        c = IncrementalClusterer()
        assert c.add_match((1, 2)) is True
        assert c.add_match((2, 1)) is False
        assert c.merges == 1

    def test_accepts_match_objects(self):
        c = IncrementalClusterer()
        c.add_match(Match(left=1, right=2, similarity=0.9))
        assert c.same_entity(1, 2)

    def test_unknown_entities_are_singletons(self):
        c = IncrementalClusterer()
        assert c.cluster_of(42) == frozenset({42})
        assert c.same_entity(42, 42)
        assert not c.same_entity(42, 43)

    def test_clusters_sorted_by_size(self):
        c = IncrementalClusterer()
        c.add_matches([(1, 2), (2, 3), (10, 11)])
        clusters = c.clusters()
        assert clusters[0] == frozenset({1, 2, 3})
        assert clusters[1] == frozenset({10, 11})

    def test_add_matches_counts_merges(self):
        c = IncrementalClusterer()
        assert c.add_matches([(1, 2), (1, 2), (3, 4)]) == 2

    def test_tuple_identifiers(self):
        c = IncrementalClusterer()
        c.add_match((("x", 1), ("y", 2)))
        assert c.same_entity(("x", 1), ("y", 2))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=40,
        )
    )
    def test_clusters_partition_matched_entities(self, match_pairs):
        clusters = clusters_from_matches(match_pairs)
        seen: set = set()
        for cluster in clusters:
            assert len(cluster) >= 2
            assert not (cluster & seen)  # disjoint
            seen |= cluster
        matched_entities = {e for pair in match_pairs for e in pair}
        assert seen <= matched_entities

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=30,
        )
    )
    def test_order_independent(self, match_pairs):
        forward = set(clusters_from_matches(match_pairs))
        backward = set(clusters_from_matches(list(reversed(match_pairs))))
        assert forward == backward
