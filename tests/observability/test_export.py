"""Exporter golden tests: Prometheus text format and JSON snapshots."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.observability import (
    MetricsRegistry,
    SnapshotFileSink,
    to_json,
    to_prometheus,
    write_json_snapshot,
)


def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("er_items_total", stage="dr").inc(3)
    registry.counter("er_items_total", stage="co").inc(5)
    registry.gauge("er_queue_depth", stage="co").set(2)
    h = registry.histogram("er_latency_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return registry


GOLDEN_PROMETHEUS = """\
# TYPE er_items_total counter
er_items_total{stage="co"} 5
er_items_total{stage="dr"} 3
# TYPE er_latency_seconds histogram
er_latency_seconds_bucket{le="0.1"} 1
er_latency_seconds_bucket{le="1"} 2
er_latency_seconds_bucket{le="+Inf"} 3
er_latency_seconds_sum 5.55
er_latency_seconds_count 3
# TYPE er_queue_depth gauge
er_queue_depth{stage="co"} 2
"""


class TestPrometheusExport:
    def test_golden(self):
        assert to_prometheus(small_registry()) == GOLDEN_PROMETHEUS

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert to_prometheus(MetricsRegistry(enabled=False)) == ""

    def test_type_line_once_per_family(self):
        text = to_prometheus(small_registry())
        assert text.count("# TYPE er_items_total counter") == 1

    def test_well_formed_lines(self):
        # Every non-comment line is "<name>{labels} <number>"; the
        # CI smoke check relies on this shape.
        for line in to_prometheus(small_registry()).splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value.replace("+Inf", "inf"))

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x_total", stage='we"ird\\name').inc()
        text = to_prometheus(registry)
        assert 'stage="we\\"ird\\\\name"' in text


class TestJsonExport:
    def test_structure(self):
        snapshot = to_json(small_registry())
        assert {c["name"] for c in snapshot["counters"]} == {"er_items_total"}
        assert snapshot["gauges"] == [
            {"name": "er_queue_depth", "labels": {"stage": "co"}, "value": 2.0}
        ]
        (hist,) = snapshot["histograms"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(5.55)
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 3}

    def test_json_roundtrip(self):
        snapshot = to_json(small_registry())
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_write_json_snapshot(self, tmp_path):
        path = write_json_snapshot(small_registry(), tmp_path / "metrics.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == to_json(small_registry())


@dataclass
class _FakeSnapshot:
    entities: int
    rate: float


class TestSnapshotFileSink:
    def test_appends_jsonl(self, tmp_path):
        sink = SnapshotFileSink(tmp_path / "snapshots.jsonl")
        sink(_FakeSnapshot(entities=10, rate=5.0))
        sink({"entities": 20})
        lines = (tmp_path / "snapshots.jsonl").read_text().splitlines()
        assert sink.written == 2
        assert json.loads(lines[0]) == {"entities": 10, "rate": 5.0}
        assert json.loads(lines[1]) == {"entities": 20}

    def test_accepts_to_dict_objects(self, tmp_path):
        class WithToDict:
            def to_dict(self):
                return {"a": 1}

        sink = SnapshotFileSink(tmp_path / "s.jsonl")
        sink(WithToDict())
        assert json.loads((tmp_path / "s.jsonl").read_text()) == {"a": 1}

    def test_rejects_unknown_types(self, tmp_path):
        sink = SnapshotFileSink(tmp_path / "s.jsonl")
        with pytest.raises(TypeError):
            sink(object())
