"""Tests for the metrics registry and its instruments."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.observability import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total")
        assert c.value == 0.0
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x_total").inc(-1)

    def test_same_identity_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", stage="dr")
        b = registry.counter("x_total", stage="dr")
        other = registry.counter("x_total", stage="co")
        assert a is b
        assert a is not other

    def test_label_order_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        # Prometheus "le" semantics: a value exactly on a bound lands in
        # that bucket, not the next one.
        h = MetricsRegistry().histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        cumulative = dict(h.bucket_counts())
        assert cumulative[1.0] == 2  # 0.5, 1.0
        assert cumulative[2.0] == 4  # + 1.5, 2.0
        assert cumulative[4.0] == 6  # + 3.0, 4.0
        assert cumulative[float("inf")] == 7  # + 100.0
        assert h.count == 7
        assert h.sum == pytest.approx(112.0)

    def test_cumulative_counts_monotone(self):
        h = MetricsRegistry().histogram("t_seconds")
        for v in (1e-6, 1e-4, 1e-2, 1.0, 100.0):
            h.observe(v)
        counts = [c for _, c in h.bucket_counts()]
        assert counts == sorted(counts)
        assert counts[-1] == 5
        assert len(counts) == len(DEFAULT_TIME_BUCKETS) + 1

    def test_quantile_estimate(self):
        h = MetricsRegistry().histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(90):
            h.observe(0.5)
        for _ in range(10):
            h.observe(3.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 4.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("t_seconds", buckets=())
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("t_seconds", buckets=(2.0, 1.0))


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_names_and_value(self):
        registry = MetricsRegistry()
        registry.counter("a_total", stage="dr").inc(2)
        registry.gauge("b_depth").set(7)
        assert registry.names() == {"a_total", "b_depth"}
        assert registry.value("a_total", stage="dr") == 2.0
        assert registry.value("missing") == 0.0

    def test_collect_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total", stage="co")
        registry.counter("a_total", stage="bb+bp")
        names = [(m.name, m.labels) for m in registry.collect()]
        assert names == sorted(names)

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x_total")
        c.inc(100)
        assert c.value == 0.0
        assert registry.names() == set()
        assert list(registry.collect()) == []
        # All instrument kinds share the same do-nothing singleton.
        assert registry.gauge("g") is c
        assert registry.histogram("h") is c

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False

    def test_instrument_types(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c_total"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h_seconds"), Histogram)


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        histogram = registry.histogram("t_seconds", buckets=(0.5, 1.0))
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(0.25)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread
        assert histogram.count == n_threads * per_thread
        assert histogram.bucket_counts()[0][1] == n_threads * per_thread

    def test_concurrent_creation_is_idempotent(self):
        registry = MetricsRegistry()
        seen: list[object] = []

        def create():
            seen.append(registry.counter("x_total", stage="co"))

        threads = [threading.Thread(target=create) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(obj is seen[0] for obj in seen)
