"""Tests for span-style entity tracing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability import EntityTrace, Tracer


class TestStageSpan:
    def test_wait_and_service(self):
        trace = EntityTrace(seq=0, created_at=0.0)
        trace.record_enqueue("co", at=1.0)
        trace.record_start("co", at=1.5)
        trace.record_finish("co", at=2.5)
        span = trace.spans["co"]
        assert span.wait_seconds == pytest.approx(0.5)
        assert span.service_seconds == pytest.approx(1.0)

    def test_start_without_enqueue_means_no_wait(self):
        # Sequential executor: no queues, enqueue == start.
        trace = EntityTrace(seq=0)
        trace.record_start("dr", at=3.0)
        span = trace.spans["dr"]
        assert span.enqueued_at == 3.0
        assert span.wait_seconds == 0.0

    def test_partial_span_is_zero(self):
        trace = EntityTrace(seq=0)
        trace.record_enqueue("co", at=1.0)
        span = trace.spans["co"]
        assert span.wait_seconds == 0.0
        assert span.service_seconds == 0.0


class TestEntityTrace:
    def trace_with_two_stages(self) -> EntityTrace:
        trace = EntityTrace(seq=4, eid=7, created_at=0.0)
        trace.record_start("dr", at=0.0)
        trace.record_finish("dr", at=0.1)
        trace.record_enqueue("co", at=0.1)
        trace.record_start("co", at=0.4)
        trace.record_finish("co", at=1.0)
        trace.complete(at=1.0)
        return trace

    def test_total_latency(self):
        assert self.trace_with_two_stages().total_latency == pytest.approx(1.0)

    def test_breakdown_and_dominant_stage(self):
        trace = self.trace_with_two_stages()
        parts = trace.breakdown()
        assert parts["dr"] == pytest.approx(0.1)
        assert parts["co"] == pytest.approx(0.9)  # 0.3 wait + 0.6 service
        assert trace.dominant_stage() == "co"

    def test_incomplete_trace_has_zero_latency(self):
        trace = EntityTrace(seq=0, created_at=5.0)
        assert trace.total_latency == 0.0

    def test_dead_letter_marker(self):
        trace = EntityTrace(seq=0)
        trace.dead_letter("cg")
        assert trace.dead_lettered_at == "cg"

    def test_to_dict_is_jsonable(self):
        import json

        payload = self.trace_with_two_stages().to_dict()
        text = json.dumps(payload)
        assert '"seq": 4' in text
        assert payload["stages"][0]["stage"] == "dr"

    def test_to_dict_tuple_eid(self):
        trace = EntityTrace(seq=0, eid=("a", 3))
        assert trace.to_dict()["eid"] == ["a", 3]


class TestTracer:
    def test_samples_every_nth(self):
        tracer = Tracer(every=3)
        traced = [seq for seq in range(9) if tracer.start(seq) is not None]
        assert traced == [0, 3, 6]

    def test_capacity_evicts_oldest(self):
        tracer = Tracer(every=1, capacity=3)
        for seq in range(5):
            tracer.start(seq)
        retained = [t.seq for t in tracer.traces()]
        assert retained == [2, 3, 4]
        assert tracer.get(0) is None
        assert tracer.get(4) is not None

    def test_slowest_orders_completed_traces(self):
        tracer = Tracer()
        fast = tracer.start(0, at=0.0)
        slow = tracer.start(1, at=0.0)
        unfinished = tracer.start(2, at=0.0)
        assert unfinished is not None
        fast.complete(at=0.1)
        slow.complete(at=2.0)
        slowest = tracer.slowest(2)
        assert [t.seq for t in slowest] == [1, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Tracer(every=0)
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)
