"""Unit and property tests for the interned comparison kernel.

The kernel's contract is *bit-identical* scores and match decisions versus
the string-set similarity functions — not approximate equality — so every
parity assertion here uses ``==`` on floats deliberately.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comparison import (
    SET_SIMILARITIES,
    InternedComparator,
    galloping_intersect_size,
    intersect_size,
    merge_intersect_size,
    similarity_bound,
    similarity_from_intersection,
)
from repro.errors import ConfigurationError
from repro.reading import TokenDictionary
from repro.types import Comparison, Profile

id_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=30)
token_sets = st.sets(st.sampled_from([f"tok{i}" for i in range(40)]), max_size=12)
measures = st.sampled_from(sorted(SET_SIMILARITIES))


def interned_profile(eid, tokens, dictionary):
    tokens = frozenset(tokens)
    return Profile(
        eid=eid,
        attributes=(("t", " ".join(sorted(tokens))),),
        tokens=tokens,
        token_ids=dictionary.intern_set(tokens),
    )


def string_profile(eid, tokens):
    tokens = frozenset(tokens)
    return Profile(
        eid=eid, attributes=(("t", " ".join(sorted(tokens))),), tokens=tokens
    )


class TestIntersectHelpers:
    @given(id_sets, id_sets)
    def test_merge_equals_set_intersection(self, a, b):
        assert merge_intersect_size(sorted(a), sorted(b)) == len(a & b)

    @given(id_sets, id_sets)
    def test_galloping_equals_set_intersection(self, a, b):
        small, large = sorted(a), sorted(b)
        if len(small) > len(large):
            small, large = large, small
        assert galloping_intersect_size(small, large) == len(a & b)

    @given(id_sets, id_sets)
    def test_dispatcher_equals_set_intersection(self, a, b):
        assert intersect_size(sorted(a), sorted(b)) == len(a & b)

    def test_numpy_path_for_large_inputs(self):
        a = list(range(0, 600, 2))  # 300 elements: combined size >= 256
        b = list(range(0, 600, 3))
        assert intersect_size(a, b) == len(set(a) & set(b))

    def test_galloping_path_for_skewed_inputs(self):
        small = [10, 500, 9000]
        large = list(range(10000))
        assert intersect_size(small, large) == 3
        assert intersect_size(large, small) == 3

    def test_empty_sides(self):
        assert intersect_size([], [1, 2]) == 0
        assert intersect_size([1, 2], []) == 0
        assert merge_intersect_size([], []) == 0
        assert galloping_intersect_size([], [1]) == 0


class TestBounds:
    def test_known_values(self):
        assert similarity_bound("jaccard", 2, 4) == 0.5
        assert similarity_bound("dice", 2, 4) == pytest.approx(2 / 3)
        assert similarity_bound("cosine", 1, 4) == 0.5
        assert similarity_bound("overlap", 1, 1000) == 1.0

    @given(measures, token_sets, token_sets)
    def test_bound_dominates_actual_similarity(self, measure, a, b):
        if not a or not b:
            return
        bound = similarity_bound(measure, len(a), len(b))
        assert SET_SIMILARITIES[measure](a, b) <= bound + 1e-12


class TestSimilarityFromIntersection:
    @given(measures, token_sets, token_sets)
    def test_bitwise_parity_with_set_functions(self, measure, a, b):
        value = similarity_from_intersection(measure, len(a & b), len(a), len(b))
        assert value == SET_SIMILARITIES[measure](a, b)

    def test_two_empty_sets_score_one(self):
        for measure in SET_SIMILARITIES:
            assert similarity_from_intersection(measure, 0, 0, 0) == 1.0

    def test_unknown_measure_raises(self):
        with pytest.raises(ConfigurationError):
            similarity_from_intersection("hamming", 1, 2, 3)


class TestInternedComparatorValidation:
    def test_rejects_unknown_measure(self):
        with pytest.raises(ConfigurationError):
            InternedComparator(measure="hamming")

    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(ConfigurationError):
            InternedComparator(threshold=1.5)
        with pytest.raises(ConfigurationError):
            InternedComparator(threshold=-0.1)

    def test_accepts_none_threshold(self):
        assert InternedComparator(threshold=None).threshold is None


class TestInternedComparatorScore:
    @given(measures, token_sets, token_sets)
    def test_score_on_ids_equals_string_similarity(self, measure, a, b):
        d = TokenDictionary()
        left = interned_profile(1, a, d)
        right = interned_profile(2, b, d)
        comparator = InternedComparator(measure=measure)
        assert comparator.score(left, right) == SET_SIMILARITIES[measure](a, b)

    def test_mixed_pair_falls_back_to_strings(self):
        d = TokenDictionary()
        left = interned_profile(1, {"x", "y"}, d)
        right = string_profile(2, {"y", "z"})
        assert InternedComparator().score(left, right) == pytest.approx(1 / 3)

    def test_compare_preserves_comparison_identity(self):
        d = TokenDictionary()
        comparison = Comparison(
            interned_profile(1, {"x"}, d), interned_profile(2, {"x"}, d)
        )
        scored = InternedComparator().compare(comparison)
        assert scored.comparison is comparison
        assert scored.similarity == 1.0


def batch_for(pairs, dictionary=None):
    comparisons = []
    for eid, (a, b) in enumerate(pairs):
        if dictionary is not None:
            left = interned_profile((eid, "l"), a, dictionary)
            right = interned_profile((eid, "r"), b, dictionary)
        else:
            left = string_profile((eid, "l"), a)
            right = string_profile((eid, "r"), b)
        comparisons.append(Comparison(left, right))
    return comparisons


class TestCompareBatch:
    @given(
        measures,
        st.lists(st.tuples(token_sets, token_sets), max_size=12),
        st.booleans(),
    )
    def test_no_threshold_emits_every_pair_exactly(self, measure, pairs, interned):
        d = TokenDictionary() if interned else None
        comparisons = batch_for(pairs, d)
        comparator = InternedComparator(measure=measure, threshold=None)
        scored = comparator.compare_batch(comparisons)
        assert [s.comparison for s in scored] == comparisons
        assert [s.similarity for s in scored] == [
            SET_SIMILARITIES[measure](a, b) for a, b in pairs
        ]

    @given(
        measures,
        st.lists(st.tuples(token_sets, token_sets), max_size=12),
        st.sampled_from([0.0, 0.3, 0.5, 0.7, 1.0]),
        st.booleans(),
        st.booleans(),
    )
    def test_threshold_emits_exactly_the_matchable_pairs(
        self, measure, pairs, threshold, prefilter, interned
    ):
        d = TokenDictionary() if interned else None
        comparisons = batch_for(pairs, d)
        comparator = InternedComparator(
            measure=measure, threshold=threshold, prefilter=prefilter
        )
        scored = comparator.compare_batch(comparisons)
        expected = [
            (c, SET_SIMILARITIES[measure](a, b))
            for c, (a, b) in zip(comparisons, pairs)
            if SET_SIMILARITIES[measure](a, b) >= threshold
        ]
        assert [(s.comparison, s.similarity) for s in scored] == expected

    def test_prefilter_on_and_off_agree(self):
        d = TokenDictionary()
        pairs = [
            ({"a"}, {"a", "b", "c", "d"}),  # prefiltered at 0.5
            ({"a", "b"}, {"a", "b"}),
            (set(), set()),
            ({"a"}, set()),
            ({"q", "r", "s"}, {"q", "r", "t"}),
        ]
        comparisons = batch_for(pairs, d)
        on = InternedComparator(threshold=0.5, prefilter=True)
        off = InternedComparator(threshold=0.5, prefilter=False)
        assert [
            (s.comparison, s.similarity) for s in on.compare_batch(comparisons)
        ] == [(s.comparison, s.similarity) for s in off.compare_batch(comparisons)]

    def test_two_empty_sets_emit_at_any_threshold(self):
        d = TokenDictionary()
        comparisons = batch_for([(set(), set())], d)
        scored = InternedComparator(threshold=1.0).compare_batch(comparisons)
        assert [s.similarity for s in scored] == [1.0]

    def test_alternating_lefts_defeat_run_caching_safely(self):
        # The jaccard hot loop caches the left profile across a run of
        # pairs; alternating distinct lefts must still score each pair on
        # its own sets.
        d = TokenDictionary()
        p1 = interned_profile(1, {"a", "b"}, d)
        p2 = interned_profile(2, {"c", "d"}, d)
        p3 = interned_profile(3, {"a", "b"}, d)
        comparisons = [
            Comparison(p1, p3),
            Comparison(p2, p3),
            Comparison(p1, p3),
        ]
        scored = InternedComparator(threshold=None).compare_batch(comparisons)
        assert [s.similarity for s in scored] == [1.0, 0.0, 1.0]

    def test_mixed_interned_and_plain_profiles_in_one_batch(self):
        d = TokenDictionary()
        interned_left = interned_profile(1, {"x", "y"}, d)
        plain = string_profile(2, {"x", "y"})
        interned_other = interned_profile(3, {"x", "z"}, d)
        comparisons = [
            Comparison(interned_left, plain),  # falls back to strings
            Comparison(interned_left, interned_other),  # back on ids
            Comparison(plain, interned_other),  # strings again
        ]
        scored = InternedComparator(threshold=None).compare_batch(comparisons)
        assert [s.similarity for s in scored] == [
            1.0,
            pytest.approx(1 / 3),
            pytest.approx(1 / 3),
        ]
