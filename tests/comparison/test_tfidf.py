"""Tests for the incremental TF-IDF comparator."""

from __future__ import annotations

import pytest

from repro.comparison import IncrementalTfIdfComparator
from repro.types import Comparison, Profile


def profile(eid, tokens):
    return Profile(eid=eid, attributes=(), tokens=frozenset(tokens))


class TestObservation:
    def test_observe_is_idempotent(self):
        comparator = IncrementalTfIdfComparator()
        p = profile(1, {"a", "b"})
        comparator.observe(p)
        comparator.observe(p)
        assert comparator.documents == 1

    def test_compare_observes_both_sides(self):
        comparator = IncrementalTfIdfComparator()
        comparator.compare(Comparison(profile(1, {"a"}), profile(2, {"b"})))
        assert comparator.documents == 2


class TestScoring:
    def test_identical_profiles_score_one(self):
        comparator = IncrementalTfIdfComparator()
        assert comparator.score(profile(1, {"a", "b"}), profile(2, {"a", "b"})) == 1.0

    def test_disjoint_profiles_score_zero(self):
        comparator = IncrementalTfIdfComparator()
        assert comparator.score(profile(1, {"a"}), profile(2, {"b"})) == 0.0

    def test_empty_profiles_score_one(self):
        comparator = IncrementalTfIdfComparator()
        assert comparator.score(profile(1, set()), profile(2, set())) == 1.0

    def test_rare_shared_token_outweighs_common_one(self):
        comparator = IncrementalTfIdfComparator()
        # Make "common" appear in many documents, "rare" in few.
        for i in range(50):
            comparator.observe(profile(100 + i, {"common", f"noise{i}"}))
        share_rare = comparator.score(
            profile(1, {"rare", "x"}), profile(2, {"rare", "y"})
        )
        share_common = comparator.score(
            profile(3, {"common", "x2"}), profile(4, {"common", "y2"})
        )
        assert share_rare > share_common

    def test_symmetric(self):
        comparator = IncrementalTfIdfComparator()
        a, b = profile(1, {"a", "b", "c"}), profile(2, {"b", "c", "d"})
        assert comparator.score(a, b) == pytest.approx(comparator.score(b, a))

    def test_bounded_unit_interval(self):
        comparator = IncrementalTfIdfComparator()
        for i in range(10):
            comparator.observe(profile(i, {f"t{i}", "shared"}))
        s = comparator.score(profile(90, {"shared", "t1"}), profile(91, {"shared"}))
        assert 0.0 <= s <= 1.0

    def test_matches_closed_form(self):
        import math

        comparator = IncrementalTfIdfComparator()
        a, b = profile(1, {"a", "b"}), profile(2, {"b", "c"})
        # Two documents: df(a)=df(c)=1, df(b)=2, N=2.
        idf_rare = math.log(1 + 2 / 1)
        idf_shared = math.log(1 + 2 / 2)
        expected = idf_shared / (idf_shared + 2 * idf_rare)
        assert comparator.score(a, b) == pytest.approx(expected)


class TestPipelineIntegration:
    def test_usable_as_pipeline_comparator(self, tiny_dirty_dataset):
        from repro.classification import ThresholdClassifier
        from repro.core import StreamERConfig, StreamERPipeline

        ds = tiny_dirty_dataset
        config = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            comparator=IncrementalTfIdfComparator(),  # type: ignore[arg-type]
            classifier=ThresholdClassifier(0.5),
        )
        pipeline = StreamERPipeline(config, instrument=False)
        result = pipeline.process_many(ds.stream())
        assert result.matches
