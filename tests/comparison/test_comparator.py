"""Unit tests for profile comparators."""

from __future__ import annotations

import pytest

from repro.comparison import AttributeWeightedComparator, TokenSetComparator, dice
from repro.types import Comparison, Profile


def profile(eid, attrs):
    tokens = frozenset(t for _, v in attrs for t in v.split())
    return Profile(eid=eid, attributes=tuple(attrs), tokens=tokens)


class TestTokenSetComparator:
    def test_default_is_jaccard(self):
        a = profile(1, [("t", "x y")])
        b = profile(2, [("t", "y z")])
        scored = TokenSetComparator().compare(Comparison(a, b))
        assert scored.similarity == pytest.approx(1 / 3)

    def test_named_construction(self):
        comparator = TokenSetComparator.named("dice")
        assert comparator.similarity is dice

    def test_preserves_comparison_identity(self):
        a, b = profile(1, [("t", "x")]), profile(2, [("t", "x")])
        comparison = Comparison(a, b)
        scored = TokenSetComparator().compare(comparison)
        assert scored.comparison is comparison


class TestAttributeWeightedComparator:
    def test_averages_over_shared_attributes(self):
        a = profile(1, [("title", "x y"), ("year", "1999")])
        b = profile(2, [("title", "x y"), ("year", "2000")])
        score = AttributeWeightedComparator().score(a, b)
        assert score == pytest.approx((1.0 + 0.0) / 2)

    def test_falls_back_to_profile_tokens_without_shared_names(self):
        a = profile(1, [("name", "x y")])
        b = profile(2, [("label", "x y")])
        score = AttributeWeightedComparator().score(a, b)
        assert score == 1.0

    def test_compare_wraps_score(self):
        a, b = profile(1, [("t", "x")]), profile(2, [("t", "x")])
        scored = AttributeWeightedComparator().compare(Comparison(a, b))
        assert scored.similarity == 1.0


class TestAttributeIndexCache:
    def test_cache_hit_reuses_the_index(self):
        comparator = AttributeWeightedComparator()
        p = profile(1, [("title", "x y"), ("year", "1999")])
        first = comparator._attribute_index(p)
        assert comparator._attribute_index(p) is first

    def test_cache_is_identity_keyed(self):
        comparator = AttributeWeightedComparator()
        p1 = profile(1, [("t", "x")])
        p2 = profile(1, [("t", "x")])  # equal, but a distinct object
        assert comparator._attribute_index(p1) is not comparator._attribute_index(p2)

    def test_cache_clears_when_full_and_keeps_scoring(self):
        comparator = AttributeWeightedComparator(cache_size=2)
        profiles = [profile(i, [("t", f"x{i}")]) for i in range(5)]
        for p in profiles:
            comparator._attribute_index(p)
        assert len(comparator._index_cache) <= 2
        a = profile(10, [("title", "x y"), ("year", "1999")])
        b = profile(11, [("title", "x y"), ("year", "2000")])
        assert comparator.score(a, b) == pytest.approx(0.5)

    def test_cached_and_fresh_comparators_agree(self):
        a = profile(1, [("title", "glass panel"), ("year", "1999")])
        b = profile(2, [("title", "glass fibre panel"), ("year", "1999")])
        warm = AttributeWeightedComparator()
        warm.score(a, b)  # populate the cache
        assert warm.score(a, b) == AttributeWeightedComparator().score(a, b)
