"""Unit tests for profile comparators."""

from __future__ import annotations

import pytest

from repro.comparison import AttributeWeightedComparator, TokenSetComparator, dice
from repro.types import Comparison, Profile


def profile(eid, attrs):
    tokens = frozenset(t for _, v in attrs for t in v.split())
    return Profile(eid=eid, attributes=tuple(attrs), tokens=tokens)


class TestTokenSetComparator:
    def test_default_is_jaccard(self):
        a = profile(1, [("t", "x y")])
        b = profile(2, [("t", "y z")])
        scored = TokenSetComparator().compare(Comparison(a, b))
        assert scored.similarity == pytest.approx(1 / 3)

    def test_named_construction(self):
        comparator = TokenSetComparator.named("dice")
        assert comparator.similarity is dice

    def test_preserves_comparison_identity(self):
        a, b = profile(1, [("t", "x")]), profile(2, [("t", "x")])
        comparison = Comparison(a, b)
        scored = TokenSetComparator().compare(comparison)
        assert scored.comparison is comparison


class TestAttributeWeightedComparator:
    def test_averages_over_shared_attributes(self):
        a = profile(1, [("title", "x y"), ("year", "1999")])
        b = profile(2, [("title", "x y"), ("year", "2000")])
        score = AttributeWeightedComparator().score(a, b)
        assert score == pytest.approx((1.0 + 0.0) / 2)

    def test_falls_back_to_profile_tokens_without_shared_names(self):
        a = profile(1, [("name", "x y")])
        b = profile(2, [("label", "x y")])
        score = AttributeWeightedComparator().score(a, b)
        assert score == 1.0

    def test_compare_wraps_score(self):
        a, b = profile(1, [("t", "x")]), profile(2, [("t", "x")])
        scored = AttributeWeightedComparator().compare(Comparison(a, b))
        assert scored.similarity == 1.0
