"""Unit and property tests for the similarity measures."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comparison import (
    SET_SIMILARITIES,
    cosine,
    dice,
    get_set_similarity,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    monge_elkan_symmetric,
    overlap,
)

token_sets = st.sets(st.sampled_from(list("abcdefgh")), max_size=6).map(
    lambda s: {f"tok_{c}" for c in s}
)


class TestJaccard:
    def test_known_value(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_identical(self):
        assert jaccard({"a"}, {"a"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard({"a"}, set()) == 0.0


class TestOtherSetMeasures:
    def test_dice_known_value(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_overlap_known_value(self):
        assert overlap({"a", "b"}, {"b"}) == 1.0

    def test_cosine_known_value(self):
        assert cosine({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    @given(token_sets, token_sets)
    def test_all_measures_in_unit_interval(self, a, b):
        for name, fn in SET_SIMILARITIES.items():
            value = fn(a, b)
            assert 0.0 <= value <= 1.0, name

    @given(token_sets, token_sets)
    def test_all_measures_symmetric(self, a, b):
        for fn in SET_SIMILARITIES.values():
            assert fn(a, b) == pytest.approx(fn(b, a))

    @given(token_sets)
    def test_all_measures_reflexive(self, a):
        for fn in SET_SIMILARITIES.values():
            assert fn(a, a) == 1.0

    def test_registry_lookup(self):
        assert get_set_similarity("jaccard") is jaccard
        with pytest.raises(KeyError):
            get_set_similarity("nope")


class TestLevenshtein:
    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("", "") == 0

    def test_similarity_normalization(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_bounded_by_longest(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))


class TestMongeElkan:
    def test_identical_sequences(self):
        assert monge_elkan(["glass", "panel"], ["glass", "panel"]) == 1.0

    def test_tolerates_typos(self):
        typo = monge_elkan(["glass", "panel"], ["glas", "pnael"])
        exact_set = jaccard({"glass", "panel"}, {"glas", "pnael"})
        assert typo > exact_set  # the point of the measure

    def test_empty_cases(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0

    def test_asymmetric(self):
        a, b = ["glass"], ["glass", "zzzz"]
        assert monge_elkan(a, b) != monge_elkan(b, a)

    @given(
        st.lists(st.text(alphabet="abcd", min_size=1, max_size=5), max_size=4),
        st.lists(st.text(alphabet="abcd", min_size=1, max_size=5), max_size=4),
    )
    def test_symmetric_variant_is_symmetric_and_bounded(self, a, b):
        s = monge_elkan_symmetric(a, b)
        assert s == pytest.approx(monge_elkan_symmetric(b, a))
        assert 0.0 <= s <= 1.0


class TestJaroWinkler:
    def test_identical(self):
        assert jaro("panel", "panel") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_winkler_prefix_boost(self):
        assert jaro_winkler("panel", "panle") >= jaro("panel", "panle")

    @given(st.text(max_size=10), st.text(max_size=10))
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestLevenshteinBoundedMode:
    """The early-exit contract: bounds may be loose, verdicts never are."""

    def test_length_gap_shortcut_returns_lower_bound(self):
        # len gap 5 > budget 2: the gap itself comes back, still > budget.
        assert levenshtein("abcdefgh", "abc", max_distance=2) == 5

    def test_row_minimum_exit_exceeds_budget(self):
        result = levenshtein("abcdef", "uvwxyz", max_distance=1)
        assert result > 1

    def test_exact_when_within_budget(self):
        assert levenshtein("kitten", "sitting", max_distance=3) == 3
        assert levenshtein("kitten", "sitting", max_distance=10) == 3

    @given(
        st.text(alphabet="abcd", max_size=10),
        st.text(alphabet="abcd", max_size=10),
        st.integers(min_value=0, max_value=10),
    )
    def test_verdict_is_exact_either_way(self, a, b, budget):
        exact = levenshtein(a, b)
        bounded = levenshtein(a, b, max_distance=budget)
        assert (bounded <= budget) == (exact <= budget)
        if bounded <= budget:
            assert bounded == exact
        else:
            assert bounded <= exact  # a lower bound, never an overestimate

    @given(
        st.text(alphabet="abcd", max_size=10),
        st.text(alphabet="abcd", max_size=10),
        st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    )
    def test_similarity_verdict_matches_unbounded(self, a, b, cutoff):
        exact = levenshtein_similarity(a, b)
        bounded = levenshtein_similarity(a, b, min_similarity=cutoff)
        assert (bounded >= cutoff) == (exact >= cutoff)
        if bounded >= cutoff:
            assert bounded == exact


class TestSetMeasureEdgeCases:
    def test_one_empty_side_scores_zero(self):
        for fn in SET_SIMILARITIES.values():
            assert fn(set(), {"a"}) == 0.0
            assert fn({"a"}, set()) == 0.0

    def test_both_empty_score_one(self):
        for fn in SET_SIMILARITIES.values():
            assert fn(set(), set()) == 1.0

    def test_disjoint_sets_score_zero(self):
        for fn in SET_SIMILARITIES.values():
            assert fn({"a", "b"}, {"c", "d"}) == 0.0

    def test_subset_overlap_is_one(self):
        assert overlap({"a"}, {"a", "b", "c"}) == 1.0
