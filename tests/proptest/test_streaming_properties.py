"""Streaming edge cases as properties: empty increments, single-entity
windows, duplicate re-arrival, and the windowing boundary."""

from __future__ import annotations

import random

import pytest

from repro.core import StreamERPipeline
from repro.invariants import InvariantChecker
from repro.proptest import (
    ERCase,
    Property,
    er_cases,
    integers,
    run_property,
)
from repro.streaming import SlidingWindowERPipeline, UpdateAwareERPipeline
from repro.types import EntityDescription

SEED = 2021


def assert_holds(prop: Property, examples: int = 8) -> None:
    report = run_property(prop, seed=SEED, examples=examples, shrink_budget=150)
    if report.failure is not None:
        pytest.fail(report.failure.describe())


def state_ok(pipeline: StreamERPipeline) -> None:
    checker = InvariantChecker(mode="raise")
    checker.bind(pipeline.config, pipeline.backend)
    checker.check_state()  # raises InvariantViolation on corruption


def with_rearrivals(case: ERCase) -> ERCase:
    """Append re-descriptions of a salt-chosen sample of the stream."""
    if not case.entities:
        return case
    rng = random.Random(case.salt)
    k = rng.randint(1, min(4, len(case.entities)))
    extra = tuple(
        EntityDescription(
            eid=e.eid,
            attributes=e.attributes + (("rev", f"v{i}"),),
            source=e.source,
        )
        for i, e in enumerate(rng.sample(case.entities, k))
    )
    return ERCase(
        entities=case.entities + extra,
        alpha=case.alpha, beta=case.beta, threshold=case.threshold,
        block_cleaning=case.block_cleaning,
        comparison_cleaning=case.comparison_cleaning,
        salt=case.salt,
    )


class TestEmptyIncrements:
    def test_empty_increment_is_a_no_op_property(self):
        def check(case: ERCase) -> None:
            pipeline = StreamERPipeline(case.config())
            for increment in case.increments():
                pipeline.process_many([])
                pipeline.process_many(increment)
            result = pipeline.process_many([])
            assert result.entities_processed == 0
            assert result.matches == []
            reference = StreamERPipeline(case.config())
            reference.process_many(list(case.entities))
            assert (
                pipeline.summary().match_pairs
                == reference.summary().match_pairs
            )

        assert_holds(Property("empty-increment-no-op", er_cases(), check))

    def test_empty_stream_yields_empty_summary(self):
        case = er_cases().sample(random.Random(0))
        pipeline = StreamERPipeline(case.config())
        summary = pipeline.summary()
        assert summary.entities_processed == 0
        assert summary.match_pairs == set()


class TestSingleEntityWindow:
    def test_window_one_never_corrupts_state_property(self):
        def check(case: ERCase) -> None:
            window = SlidingWindowERPipeline(case.config(), window=1)
            for entity in case.entities:
                window.process(entity)
                assert len(window.current_window) <= 1
            assert len(window.pipeline.lm.profiles) <= 1
            state_ok(window.pipeline)

        assert_holds(Property("window-one-bounded", er_cases(), check))

    def test_window_must_be_positive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SlidingWindowERPipeline(window=0)


class TestWindowEquivalence:
    def test_window_at_least_stream_length_equals_unbounded_property(self):
        def check(case: ERCase) -> None:
            window = SlidingWindowERPipeline(
                case.config(), window=max(1, len(case.entities))
            )
            windowed = {m.key() for m in window.process_many(case.entities)}
            reference = StreamERPipeline(case.config())
            reference.process_many(list(case.entities))
            assert windowed == reference.summary().match_pairs
            assert window.stats.evicted_entities == 0

        assert_holds(Property("window-covers-stream", er_cases(), check))


class TestDuplicateReArrival:
    def test_windowed_rearrival_keeps_state_sound_property(self):
        def check(case: ERCase) -> None:
            window = SlidingWindowERPipeline(case.config(), window=3)
            window.process_many(case.entities)  # must not raise
            assert len(window.current_window) <= 3
            assert len(set(window.current_window)) == len(window.current_window)
            state_ok(window.pipeline)

        assert_holds(
            Property(
                "window-rearrival-sound",
                er_cases().map(with_rearrivals),
                check,
            )
        )

    def test_update_pipeline_rearrival_keeps_state_sound_property(self):
        def check(case: ERCase) -> None:
            updating = UpdateAwareERPipeline(case.config())
            updating.process_many(case.entities)
            n_unique = len({e.eid for e in case.entities})
            assert updating.updates_applied == len(case.entities) - n_unique
            assert len(updating.pipeline.lm.profiles) <= n_unique
            state_ok(updating.pipeline)

        assert_holds(
            Property(
                "updates-rearrival-sound",
                er_cases().map(with_rearrivals),
                check,
            )
        )

    def test_updated_entity_matches_on_its_new_description(self):
        updating = UpdateAwareERPipeline()
        updating.process(EntityDescription.create(1, {"t": "glass roof"}))
        updating.process(EntityDescription.create(1, {"t": "steel frame"}))
        assert updating.version_of(1) == 2
        matches = updating.process(
            EntityDescription.create(2, {"t": "steel frame"})
        )
        assert {m.key() for m in matches} == {(1, 2)}


class TestWindowBoundary:
    def test_eviction_starts_exactly_past_the_window(self):
        def stream(n):
            return [
                EntityDescription.create(i, {"t": f"tok{i} shared"})
                for i in range(n)
            ]

        for window_size in (1, 2, 5):
            window = SlidingWindowERPipeline(window=window_size)
            window.process_many(stream(window_size))
            assert window.stats.evicted_entities == 0
            assert window.current_window == list(range(window_size))
            window.process(
                EntityDescription.create(window_size, {"t": "tokX shared"})
            )
            assert window.stats.evicted_entities == 1
            assert window.current_window == list(range(1, window_size + 1))

    def test_boundary_eviction_count_property(self):
        def check(pair) -> None:
            case, window_size = pair
            window = SlidingWindowERPipeline(case.config(), window=window_size)
            window.process_many(case.entities)
            n = len(case.entities)  # dirty streams carry unique ids
            assert len(window.current_window) == min(n, window_size)
            assert window.stats.evicted_entities == max(0, n - window_size)
            state_ok(window.pipeline)

        gen = er_cases().bind(
            lambda case: integers(1, 6).map(lambda w: (case, w))
        )
        assert_holds(Property("window-boundary-eviction", gen, check))
