"""The proptest engine: generators, deterministic runner, shrinking."""

from __future__ import annotations

import pytest

from repro.proptest import (
    CheckFailed,
    ERCase,
    Property,
    booleans,
    choice,
    clip_cuts,
    dirty_streams,
    er_cases,
    example_rng,
    increment_cuts,
    integers,
    lists,
    replay_command,
    run_property,
    shrink_case,
)


class TestGenerators:
    def test_integers_stay_in_bounds(self):
        gen = integers(3, 7)
        rng = example_rng(1, "bounds", 0)
        assert all(3 <= gen.sample(rng) <= 7 for _ in range(200))

    def test_map_and_bind_compose(self):
        gen = integers(1, 3).map(lambda n: n * 10).bind(
            lambda n: choice([n, n + 1])
        )
        rng = example_rng(1, "compose", 0)
        assert all(gen.sample(rng) in {10, 11, 20, 21, 30, 31} for _ in range(50))

    def test_lists_respect_size_bounds(self):
        gen = lists(booleans(), min_size=2, max_size=5)
        rng = example_rng(1, "lists", 0)
        assert all(2 <= len(gen.sample(rng)) <= 5 for _ in range(50))

    def test_sampling_is_deterministic_in_the_rng(self):
        gen = dirty_streams()
        a = gen.sample(example_rng(42, "det", 3))
        b = gen.sample(example_rng(42, "det", 3))
        assert a == b
        c = gen.sample(example_rng(42, "det", 4))
        assert a != c  # different example index, different stream

    def test_increment_cuts_are_interior_and_sorted(self):
        gen = increment_cuts(10)
        rng = example_rng(7, "cuts", 0)
        for _ in range(100):
            cuts = gen.sample(rng)
            assert list(cuts) == sorted(set(cuts))
            assert all(0 < c < 10 for c in cuts)

    def test_er_cases_draw_valid_knobs(self):
        gen = er_cases()
        rng = example_rng(5, "cases", 0)
        for _ in range(20):
            case = gen.sample(rng)
            assert case.alpha in (3, 5, 8, 1000)
            assert case.beta in (0.1, 0.3, 0.6)
            assert case.threshold in (0.2, 0.35, 0.5)
            assert not case.clean_clean

    def test_clean_clean_cases_carry_sourced_ids(self):
        gen = er_cases(clean_clean=True)
        rng = example_rng(5, "cc-cases", 1)
        case = next(
            c for _ in range(50) if (c := gen.sample(rng)).entities
        )
        assert all(e.eid[0] in ("x", "y") for e in case.entities)
        assert all(e.source == e.eid[0] for e in case.entities)


class TestERCase:
    def test_increments_cover_the_stream_in_order(self):
        case = er_cases().sample(example_rng(11, "cover", 2))
        flattened = [e for inc in case.increments() for e in inc]
        assert tuple(flattened) == case.entities
        assert all(inc for inc in case.increments())

    def test_clip_cuts_sanitizes(self):
        assert clip_cuts((5, 0, 3, 3, 9, 12), 10) == (3, 5, 9)
        assert clip_cuts((4,), 3) == ()

    def test_config_reflects_the_knobs(self):
        case = ERCase(
            entities=(), alpha=8, beta=0.1, threshold=0.5,
            block_cleaning=False, comparison_cleaning=True,
        )
        config = case.config()
        assert config.alpha == 8
        assert config.beta == 0.1
        assert not config.enable_block_cleaning
        assert config.enable_comparison_cleaning
        assert config.classifier.threshold == 0.5

    def test_describe_renders_every_entity(self):
        case = er_cases().sample(example_rng(11, "desc", 0))
        text = case.describe()
        for entity in case.entities:
            assert repr(entity.eid) in text


class TestRunner:
    def test_passing_property_reports_ok(self):
        prop = Property("always-true", integers(0, 9), lambda n: None)
        report = run_property(prop, seed=1, examples=5)
        assert report.ok
        assert report.examples == 5
        assert report.failure is None

    def test_failure_is_deterministic(self):
        def check(n: int) -> None:
            if n >= 5:
                raise CheckFailed(f"{n} too big")

        prop = Property("no-big", integers(0, 9), check)
        first = run_property(prop, seed=3, examples=30)
        second = run_property(prop, seed=3, examples=30)
        assert not first.ok
        assert first.failure.index == second.failure.index
        assert first.failure.case == second.failure.case

    def test_crash_counts_as_failure_with_location(self):
        def check(n: int) -> None:
            raise ValueError("boom")

        report = run_property(Property("crashy", integers(0, 1), check), seed=1)
        assert not report.ok
        assert "ValueError: boom" in report.failure.error
        assert " (at " in report.failure.error  # crash carries its location

    def test_check_failed_reads_clean(self):
        def check(n: int) -> None:
            raise CheckFailed("violated")

        report = run_property(Property("clean", integers(0, 1), check), seed=1)
        assert report.failure.error == "CheckFailed: violated"

    def test_replay_command_format(self):
        assert (
            replay_command("alpha-monotone", 7, 12)
            == "repro-er check --seed 7 --examples 12 --property alpha-monotone"
        )


class TestShrinking:
    @staticmethod
    def _at_least_three(case: ERCase) -> None:
        if len(case.entities) >= 3:
            raise CheckFailed(f"{len(case.entities)} entities")

    def test_shrinks_to_the_minimal_counterexample(self):
        prop = Property("small-streams", er_cases(), self._at_least_three)
        report = run_property(prop, seed=2021, examples=10, shrink_budget=400)
        assert not report.ok
        shrunk = report.failure.minimal()
        # Minimal for "has >= 3 entities": exactly 3 one-attribute
        # entities, no cuts, every knob neutralized.
        assert len(shrunk.entities) == 3
        assert all(len(e.attributes) == 1 for e in shrunk.entities)
        assert shrunk.cuts == ()
        assert not shrunk.block_cleaning
        assert not shrunk.comparison_cleaning
        assert shrunk.alpha == 1000
        assert shrunk.salt == 0

    def test_shrinking_is_deterministic(self):
        prop = Property("small-streams", er_cases(), self._at_least_three)
        a = run_property(prop, seed=2021, examples=10, shrink_budget=400)
        b = run_property(prop, seed=2021, examples=10, shrink_budget=400)
        assert a.failure.minimal() == b.failure.minimal()

    def test_zero_budget_skips_shrinking(self):
        prop = Property("small-streams", er_cases(), self._at_least_three)
        report = run_property(prop, seed=2021, examples=10, shrink_budget=0)
        assert not report.ok
        assert report.failure.shrunk is None
        assert report.failure.minimal() == report.failure.case

    def test_budget_caps_predicate_evaluations(self):
        calls = 0

        def fails(case: ERCase) -> bool:
            nonlocal calls
            calls += 1
            return len(case.entities) >= 3

        case = er_cases().sample(example_rng(2021, "budget", 0))
        if len(case.entities) < 3:
            pytest.skip("seed drew a case the predicate cannot fail on")
        shrink_case(case, fails, max_checks=7)
        assert calls <= 7

    def test_shrunk_case_still_fails(self):
        prop = Property("small-streams", er_cases(), self._at_least_three)
        report = run_property(prop, seed=2021, examples=10, shrink_budget=400)
        assert not prop.holds_on(report.failure.minimal())

    def test_describe_carries_the_minimal_case_and_seed(self):
        prop = Property("small-streams", er_cases(), self._at_least_three)
        report = run_property(prop, seed=2021, examples=10, shrink_budget=400)
        text = report.failure.describe()
        assert "seed=2021" in text
        assert "minimal counterexample" in text
        assert "3 entities" in text
