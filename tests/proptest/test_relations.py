"""The metamorphic relation suite: every oracle holds on seeded streams,
and the harness demonstrably fails, shrinks and replays when one is false."""

from __future__ import annotations

import pytest

from repro.proptest import (
    METAMORPHIC_RELATIONS,
    relation_names,
    replay_command,
    run_suite,
    self_test_relation,
)

SEED = 2021

LIGHT_RELATIONS = [r.name for r in METAMORPHIC_RELATIONS if not r.heavy]
HEAVY_RELATIONS = [r.name for r in METAMORPHIC_RELATIONS if r.heavy]


class TestSuiteComposition:
    def test_relation_names(self):
        assert relation_names() == (
            "incremental-equals-batch",
            "order-invariance-no-cleaning",
            "alpha-monotone",
            "beta-monotone",
            "dirty-self-consistency",
            "clean-clean-cross-source",
            "executors-agree",
            "partitioned-equals-chunked",
            "interned-equals-string",
            "resume-equals-uninterrupted",
            "invariants-hold",
        )

    def test_unknown_name_raises_instead_of_passing_silently(self):
        with pytest.raises(KeyError, match="no-such-relation"):
            run_suite(SEED, examples=1, names=["no-such-relation"])

    def test_heavy_relations_get_half_the_budget(self):
        report = run_suite(SEED, examples=4, names=["alpha-monotone"])
        assert report.reports[0].examples == 2

    def test_every_relation_is_described(self):
        assert all(r.description for r in METAMORPHIC_RELATIONS)


class TestRelationsHold:
    """The real oracles on a fixed seed — small budgets, this is tier 1;
    CI's proptest job runs the same suite with a bigger budget."""

    @pytest.mark.parametrize("name", LIGHT_RELATIONS)
    def test_light_relation_holds(self, name):
        report = run_suite(SEED, examples=3, names=[name])
        failures = report.failures()
        assert report.ok, failures[0].describe() if failures else ""

    @pytest.mark.parametrize("name", ["alpha-monotone", "beta-monotone"])
    def test_monotonicity_relation_holds(self, name):
        report = run_suite(SEED, examples=2, names=[name])
        failures = report.failures()
        assert report.ok, failures[0].describe() if failures else ""

    def test_executors_agree_holds(self):
        report = run_suite(SEED, examples=2, names=["executors-agree"])
        failures = report.failures()
        assert report.ok, failures[0].describe() if failures else ""

    def test_partitioned_equals_chunked_holds(self):
        report = run_suite(SEED, examples=2, names=["partitioned-equals-chunked"])
        failures = report.failures()
        assert report.ok, failures[0].describe() if failures else ""


class TestFailurePath:
    """The acceptance demonstration: an intentionally false relation must
    fail, shrink to a one-entity counterexample and print a replay line."""

    def test_self_test_relation_fails_and_shrinks(self):
        report = run_suite(
            SEED,
            examples=3,
            names=["self-test-failure"],
            extra_relations=[self_test_relation()],
            shrink_budget=120,
        )
        assert not report.ok
        failure = report.failures()[0]
        shrunk = failure.minimal()
        # Any single one-attribute entity builds a block: the true minimum.
        assert len(shrunk.entities) == 1
        assert len(shrunk.entities[0].attributes) == 1
        assert "intentional" in failure.describe()

    def test_replay_line_points_back_at_the_cli(self):
        line = replay_command("self-test-failure", SEED, 3)
        assert line == (
            "repro-er check --seed 2021 --examples 3 "
            "--property self-test-failure"
        )
