"""Randomized equivalence: InternedComparator.compare_batch vs a naive
reference comparator, including the threshold-boundary edges.

The kernel's claim is exact: with a threshold, ``compare_batch`` emits
*precisely* the pairs a ``ThresholdClassifier`` at that threshold would
accept, and every emitted similarity equals the naive per-pair score
bit-for-bit.  The reference below computes every pair's similarity with
the plain set functions and filters with ``>= threshold`` — no prefilter,
no batching — so any divergence (a prefilter that is too eager at the
float boundary, a verification off-by-one ulp) shows up as a set diff.
"""

from __future__ import annotations

import random

import pytest

from repro.comparison.kernel import InternedComparator, similarity_bound
from repro.comparison.similarity import SET_SIMILARITIES
from repro.proptest import example_rng
from repro.types import Comparison, Profile

MEASURES = ("jaccard", "dice", "cosine", "overlap")


def profile(eid: int, ids: set[int], interned: bool = True) -> Profile:
    tokens = frozenset(f"t{i}" for i in ids)
    return Profile(
        eid=eid,
        attributes=(("a", " ".join(sorted(tokens))),),
        tokens=tokens,
        token_ids=frozenset(ids) if interned else None,
    )


def random_batch(
    rng: random.Random, n_pairs: int, universe: int = 12, interned: bool = True
) -> list[Comparison]:
    """Batches share their left profile in runs, like the streaming front."""
    out: list[Comparison] = []
    eid = 0
    while len(out) < n_pairs:
        run = rng.randint(1, 4)
        left = profile(eid, set(rng.sample(range(universe), rng.randint(0, 6))),
                       interned=interned)
        eid += 1
        for _ in range(min(run, n_pairs - len(out))):
            right = profile(
                eid, set(rng.sample(range(universe), rng.randint(0, 6))),
                interned=interned and rng.random() < 0.9,
            )
            eid += 1
            out.append(Comparison(left=left, right=right))
    return out


def reference(measure: str, batch, threshold):
    """The naive oracle: score every pair, filter with >= threshold."""
    sim = SET_SIMILARITIES[measure]

    def score(c: Comparison) -> float:
        a, b = c.left.token_ids, c.right.token_ids
        if a is None or b is None:
            return sim(c.left.tokens, c.right.tokens)
        return sim(a, b)

    scored = {c.key(): score(c) for c in batch}
    if threshold is None:
        return scored
    return {k: s for k, s in scored.items() if s >= threshold}


def emitted(comparator: InternedComparator, batch):
    return {
        sc.comparison.key(): sc.similarity
        for sc in comparator.compare_batch(batch)
    }


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("measure", MEASURES)
    @pytest.mark.parametrize("threshold", [None, 0.0, 0.25, 0.5, 1.0])
    def test_batch_equals_reference(self, measure, threshold):
        for index in range(15):
            rng = example_rng(2021, f"kernel:{measure}:{threshold}", index)
            batch = random_batch(rng, rng.randint(0, 40))
            comparator = InternedComparator(measure=measure, threshold=threshold)
            assert emitted(comparator, batch) == reference(
                measure, batch, threshold
            ), f"diverged on example {index}"

    @pytest.mark.parametrize("measure", MEASURES)
    def test_prefilter_never_changes_the_answer(self, measure):
        for index in range(10):
            rng = example_rng(7, f"prefilter:{measure}", index)
            batch = random_batch(rng, 30)
            with_filter = InternedComparator(
                measure=measure, threshold=0.4, prefilter=True
            )
            without = InternedComparator(
                measure=measure, threshold=0.4, prefilter=False
            )
            assert emitted(with_filter, batch) == emitted(without, batch)

    @pytest.mark.parametrize("measure", MEASURES)
    def test_string_fallback_equals_reference(self, measure):
        for index in range(8):
            rng = example_rng(3, f"strings:{measure}", index)
            batch = random_batch(rng, 25, interned=False)
            comparator = InternedComparator(measure=measure, threshold=0.3)
            assert emitted(comparator, batch) == reference(measure, batch, 0.3)


class TestThresholdBoundary:
    """The edges where an off-by-one-ulp kernel would diverge."""

    def test_score_exactly_at_threshold_is_emitted(self):
        # |a ∩ b| = 1, |a| = 1, |b| = 2 → jaccard = 1/2 exactly.
        batch = [Comparison(left=profile(0, {1}), right=profile(1, {1, 2}))]
        comparator = InternedComparator(measure="jaccard", threshold=0.5)
        assert emitted(comparator, batch) == {(0, 1): 0.5}

    def test_score_one_ulp_below_threshold_is_dropped(self):
        batch = [Comparison(left=profile(0, {1}), right=profile(1, {1, 2}))]
        thr = 0.5 + 2 ** -53
        comparator = InternedComparator(measure="jaccard", threshold=thr)
        assert emitted(comparator, batch) == {}

    def test_prefilter_bound_exactly_at_threshold_keeps_the_pair(self):
        # la=1, lb=3: the bound la/lb is exactly the score at maximal
        # overlap.  threshold = 1/3 (the same float) must NOT prefilter
        # the pair away — inter == la reaches the bound.
        thr = 1 / 3
        batch = [Comparison(left=profile(0, {1}), right=profile(1, {1, 2, 3}))]
        comparator = InternedComparator(measure="jaccard", threshold=thr)
        assert emitted(comparator, batch) == {(0, 1): thr}
        assert similarity_bound("jaccard", 1, 3) == thr

    def test_division_form_prefilter_is_exact_for_awkward_ratios(self):
        # For every (la, lb) the pair with full overlap scores exactly
        # la/lb; thresholding at that float must keep it, for ratios where
        # a multiply-form test (la < thr * lb) could round the wrong way.
        for la, lb in [(1, 3), (2, 3), (3, 7), (5, 9), (7, 11)]:
            small = set(range(la))
            big = set(range(lb))
            thr = la / lb
            batch = [Comparison(left=profile(0, small), right=profile(1, big))]
            comparator = InternedComparator(measure="jaccard", threshold=thr)
            result = emitted(comparator, batch)
            assert result == {(0, 1): thr}, f"dropped at la={la}, lb={lb}"

    def test_two_empty_sets_score_one(self):
        batch = [Comparison(left=profile(0, set()), right=profile(1, set()))]
        for threshold in (None, 0.3, 1.0):
            comparator = InternedComparator(measure="jaccard", threshold=threshold)
            assert emitted(comparator, batch) == {(0, 1): 1.0}

    def test_one_sided_empty_set_scores_zero(self):
        batch = [Comparison(left=profile(0, set()), right=profile(1, {1}))]
        assert emitted(
            InternedComparator(measure="jaccard", threshold=None), batch
        ) == {(0, 1): 0.0}
        assert emitted(
            InternedComparator(measure="jaccard", threshold=0.1), batch
        ) == {}

    def test_threshold_zero_emits_everything(self):
        rng = example_rng(1, "thr-zero", 0)
        batch = random_batch(rng, 20)
        comparator = InternedComparator(measure="jaccard", threshold=0.0)
        assert len(comparator.compare_batch(batch)) == len(batch)

    def test_no_threshold_preserves_batch_order_and_length(self):
        rng = example_rng(1, "no-thr", 0)
        batch = random_batch(rng, 20)
        scored = InternedComparator(measure="jaccard").compare_batch(batch)
        assert [sc.comparison for sc in scored] == batch
