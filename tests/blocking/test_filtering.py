"""Unit tests for block filtering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import block_filtering, count_comparisons
from repro.errors import ConfigurationError


class TestBlockFiltering:
    def test_retains_entity_in_smallest_blocks(self):
        blocks = {
            "big": [1, 2, 3, 4],
            "mid": [1, 2, 3],
            "small": [1, 2],
        }
        filtered = block_filtering(blocks, s=0.5)
        # Every entity appears in 3 blocks → keeps floor(0.5·3)=1 smallest.
        assert set(filtered) == {"small"}
        assert filtered["small"] == [1, 2]

    def test_keeps_at_least_one_block_per_entity(self):
        blocks = {"a": [1, 2]}
        filtered = block_filtering(blocks, s=0.1)
        assert filtered == {"a": [1, 2]}

    def test_drops_blocks_reduced_below_two(self):
        blocks = {"x": [1, 2], "y": [1, 9], "z": [2, 9], "w": [1, 2, 9]}
        filtered = block_filtering(blocks, s=0.4)
        for members in filtered.values():
            assert len(members) >= 2

    def test_never_increases_comparisons(self):
        blocks = {"a": [1, 2, 3], "b": [1, 2], "c": [2, 3]}
        before = count_comparisons(blocks)
        after = count_comparisons(block_filtering(blocks, s=0.5))
        assert after <= before

    @pytest.mark.parametrize("s", [0.0, 1.0, -0.1])
    def test_rejects_bad_ratio(self, s):
        with pytest.raises(ConfigurationError):
            block_filtering({"a": [1, 2]}, s=s)

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.lists(st.integers(min_value=0, max_value=12), min_size=2, max_size=8, unique=True),
            min_size=1, max_size=8,
        ),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_filtered_blocks_are_subsets(self, blocks, s):
        filtered = block_filtering(blocks, s=s)
        for key, members in filtered.items():
            assert set(members) <= set(blocks[key])
