"""Tests for q-grams and extended q-grams blocking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blocking import extended_qgrams_blocking, qgrams, qgrams_blocking
from repro.blocking.qgrams import extended_qgram_keys
from repro.errors import ConfigurationError
from repro.types import Profile


def profile(eid, tokens):
    return Profile(eid=eid, attributes=(), tokens=frozenset(tokens))


class TestQgrams:
    def test_overlapping_grams(self):
        assert qgrams("panel", 3) == ["pan", "ane", "nel"]

    def test_short_token_returned_whole(self):
        assert qgrams("ab", 3) == ["ab"]

    @given(st.text(alphabet="abcdef", min_size=1, max_size=15))
    def test_gram_count(self, token):
        grams = qgrams(token, 3)
        assert len(grams) == max(1, len(token) - 2)


class TestQgramsBlocking:
    def test_typo_robustness(self):
        """'pavilion' and 'pavillion' share no token but share q-grams."""
        blocks = qgrams_blocking(
            [profile(1, {"pavilion"}), profile(2, {"pavillion"})]
        )
        shared = [b for b in blocks.values() if set(b) == {1, 2}]
        assert shared

    def test_rejects_bad_q(self):
        with pytest.raises(ConfigurationError):
            qgrams_blocking([], q=0)

    def test_more_blocks_than_token_blocking(self, tiny_dirty_dataset):
        from repro.blocking import token_blocking
        from repro.reading.profiles import ProfileBuilder

        builder = ProfileBuilder()
        profiles = [builder.build(e) for e in tiny_dirty_dataset.entities[:100]]
        assert len(qgrams_blocking(profiles)) > len(token_blocking(profiles))


class TestExtendedQgrams:
    def test_single_gram_token(self):
        assert extended_qgram_keys("ab", q=3) == {"ab"}

    def test_keys_tolerate_one_corrupted_gram(self):
        clean = extended_qgram_keys("pavilion", q=3, threshold=0.8)
        typo = extended_qgram_keys("paviljon", q=3, threshold=0.8)
        # Not asserted to overlap for arbitrary typos, but both sides must
        # produce multiple keys (the redundancy the method relies on).
        assert len(clean) > 1
        assert len(typo) > 1

    def test_threshold_one_concatenates_everything(self):
        keys = extended_qgram_keys("panel", q=3, threshold=1.0)
        assert keys == {"pananenel"}

    def test_blocking_validates_threshold(self):
        with pytest.raises(ConfigurationError):
            extended_qgrams_blocking([], threshold=0.0)

    def test_blocking_produces_blocks(self):
        blocks = extended_qgrams_blocking(
            [profile(1, {"pavilion"}), profile(2, {"pavilion"})]
        )
        assert any(set(b) == {1, 2} for b in blocks.values())
