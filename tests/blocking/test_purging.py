"""Unit tests for block purging."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blocking import block_purging
from repro.errors import ConfigurationError


class TestBlockPurging:
    def test_removes_oversized_blocks(self):
        blocks = {"big": list(range(10)), "small": [1, 2]}
        purged = block_purging(blocks, r=0.5)
        assert set(purged) == {"small"}

    def test_keeps_blocks_at_bound(self):
        blocks = {"a": list(range(10)), "b": list(range(5))}
        purged = block_purging(blocks, r=0.5)
        assert "b" in purged  # 5 <= 0.5·10

    def test_max_block_always_purged_when_r_below_one(self):
        blocks = {"a": list(range(10)), "b": [1, 2]}
        assert "a" not in block_purging(blocks, r=0.99)

    def test_empty_collection(self):
        assert block_purging({}, r=0.5) == {}

    def test_input_not_modified(self):
        blocks = {"a": list(range(10)), "b": [1, 2]}
        block_purging(blocks, r=0.5)
        assert set(blocks) == {"a", "b"}

    @pytest.mark.parametrize("r", [0.0, 1.0, -1.0, 2.0])
    def test_rejects_bad_ratio(self, r):
        with pytest.raises(ConfigurationError):
            block_purging({"a": [1]}, r=r)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.lists(st.integers(), min_size=1, max_size=12),
            min_size=1, max_size=8,
        ),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_smaller_r_purges_at_least_as_much(self, blocks, r):
        lax = block_purging(blocks, r=min(0.99, r * 2) if r * 2 < 1 else 0.99)
        strict = block_purging(blocks, r=r)
        assert set(strict) <= set(lax)
