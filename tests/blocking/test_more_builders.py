"""Tests for suffix, sorted-neighborhood, and attribute-clustering blocking."""

from __future__ import annotations

import pytest

from repro.blocking import (
    BLOCK_BUILDERS,
    attribute_clustering_blocking,
    cluster_attributes,
    multipass_sorted_neighborhood,
    sorted_neighborhood_blocking,
    suffix_blocking,
    suffixes,
)
from repro.blocking.sorted_neighborhood import largest_token_key, smallest_token_key
from repro.errors import ConfigurationError
from repro.types import Profile


def profile(eid, tokens, attributes=()):
    return Profile(eid=eid, attributes=tuple(attributes), tokens=frozenset(tokens))


class TestSuffixBlocking:
    def test_suffixes(self):
        assert suffixes("pavilion", 4) == ["pavilion", "avilion", "vilion", "ilion", "lion"]

    def test_short_token_whole(self):
        assert suffixes("abc", 4) == ["abc"]

    def test_prefix_variation_blocked_together(self):
        blocks = suffix_blocking(
            [profile(1, {"faerber"}), profile(2, {"ferber"})], min_length=4
        )
        assert any(set(b) == {1, 2} for b in blocks.values())

    def test_max_block_size_drops_frequent_suffixes(self):
        profiles = [profile(i, {f"x{i}ing"}) for i in range(10)]
        blocks = suffix_blocking(profiles, min_length=3, max_block_size=5)
        assert all(len(b) <= 5 for b in blocks.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            suffix_blocking([], min_length=0)
        with pytest.raises(ConfigurationError):
            suffix_blocking([], max_block_size=1)


class TestSortedNeighborhood:
    def _profiles(self):
        return [profile(i, {t}) for i, t in enumerate("alpha beta gamma delta epsilon".split())]

    def test_window_covers_adjacent_keys(self):
        blocks = sorted_neighborhood_blocking(self._profiles(), window=2)
        covered = {frozenset(b) for b in blocks.values()}
        # alpha(0) and beta(1) are adjacent in sorted key order.
        assert frozenset({0, 1}) in covered

    def test_fewer_profiles_than_window(self):
        blocks = sorted_neighborhood_blocking(self._profiles()[:2], window=4)
        assert list(blocks.values()) == [[0, 1]]

    def test_rejects_small_window(self):
        with pytest.raises(ConfigurationError):
            sorted_neighborhood_blocking([], window=1)

    def test_multipass_unions_passes(self):
        profiles = self._profiles()
        single = sorted_neighborhood_blocking(profiles, window=2)
        multi = multipass_sorted_neighborhood(
            profiles, window=2, keys=(smallest_token_key, largest_token_key)
        )
        assert len(multi) == 2 * len(single)


class TestAttributeClustering:
    def _profiles(self):
        return [
            profile(1, set(), [("title", "alpha beta"), ("year", "1999")]),
            profile(2, set(), [("name", "alpha beta gamma"), ("published", "1999")]),
            profile(3, set(), [("title", "beta delta"), ("year", "2001")]),
        ]

    def test_similar_attributes_clustered_together(self):
        from repro.blocking.attribute_clustering import attribute_vocabularies

        clusters = cluster_attributes(
            attribute_vocabularies(self._profiles()), threshold=0.2
        )
        assert clusters["title"] == clusters["name"]
        assert clusters["year"] == clusters["published"]
        assert clusters["title"] != clusters["year"]

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            cluster_attributes({}, threshold=1.0)

    def test_blocking_separates_clusters(self):
        blocks = attribute_clustering_blocking(self._profiles(), threshold=0.2)
        # "beta" under title/name co-blocks 1, 2, 3; "1999" under year
        # co-blocks 1 and 2 in a different cluster key.
        assert any(set(b) >= {1, 2} for b in blocks.values())
        keys_for_beta = [k for k in blocks if k.endswith(":beta")]
        assert keys_for_beta


class TestRegistry:
    def test_all_builders_registered(self):
        assert set(BLOCK_BUILDERS) == {
            "token", "qgrams", "extended-qgrams", "suffix",
            "sorted-neighborhood", "attribute-clustering",
        }

    def test_every_builder_runs_on_real_profiles(self, tiny_dirty_dataset):
        from repro.reading.profiles import ProfileBuilder

        builder = ProfileBuilder()
        profiles = [builder.build(e) for e in tiny_dirty_dataset.entities[:60]]
        for name, build in BLOCK_BUILDERS.items():
            blocks = build(profiles)
            assert isinstance(blocks, dict), name

    def test_batch_pipeline_accepts_builder_choice(self, tiny_dirty_dataset):
        from repro.batch import BatchERConfig, BatchERPipeline
        from repro.classification import ThresholdClassifier

        config = BatchERConfig(
            r=None, s=0.5, block_builder="qgrams",
            classifier=ThresholdClassifier(0.9),
        )
        result = BatchERPipeline(config).run(tiny_dirty_dataset.entities[:80])
        assert result.comparisons_after_bb > 0
        assert "qgrams" in result.config_label

    def test_batch_pipeline_rejects_unknown_builder(self):
        from repro.batch import BatchERConfig

        with pytest.raises(ConfigurationError, match="unknown block builder"):
            BatchERConfig(block_builder="magic")
