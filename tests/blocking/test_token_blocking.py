"""Unit tests for batch token blocking and comparison counting."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import (
    block_cardinality,
    count_comparisons,
    distinct_pairs,
    entity_block_index,
    token_blocking,
)
from repro.types import Profile


def profile(eid, tokens, source=None):
    return Profile(eid=eid, attributes=(), tokens=frozenset(tokens), source=source)


class TestTokenBlocking:
    def test_blocks_on_shared_tokens(self):
        blocks = token_blocking([profile(1, {"a", "b"}), profile(2, {"b", "c"})])
        assert set(blocks) == {"b"}
        assert blocks["b"] == [1, 2]

    def test_min_block_size_one_keeps_singletons(self):
        blocks = token_blocking([profile(1, {"a"})], min_block_size=1)
        assert blocks == {"a": [1]}

    def test_empty_input(self):
        assert token_blocking([]) == {}

    def test_paper_example_block_count(self, paper_entities):
        """Figure 2(b): token blocking over e1..e5 yields 23 comparisons."""
        from repro.reading.profiles import ProfileBuilder

        builder = ProfileBuilder()
        profiles = [builder.build(e) for e in paper_entities]
        blocks = token_blocking(profiles)
        # panel: 5 ents → 10, pavilion: 5 → 10, wood: e1,e3,e5 → 3,
        # top/john: {e1,e3} → 1 each, glass/fibre: {e2,e4} → 1 each;
        # doe/jane/side are singletons (dropped).
        assert count_comparisons(blocks) == 27  # = 23 in the paper's figure
        # (the paper's count of 23 treats "wooden"≠"wood" for e1's membership
        # of the wood block and folds top/john; our standardizer puts e1 in
        # "wood", adding comparisons (e1,e3),(e1,e5) twice over — the
        # structural point, far more than the 6 naive pairs, stands.)


class TestEntityBlockIndex:
    def test_inverts_blocks(self):
        blocks = {"a": [1, 2], "b": [2]}
        index = entity_block_index(blocks)
        assert index == {1: ["a"], 2: ["a", "b"]}


class TestBlockCardinality:
    def test_dirty(self):
        assert block_cardinality([1, 2, 3]) == 3
        assert block_cardinality([1]) == 0

    def test_clean_clean_cross_source_product(self):
        members = [("x", 1), ("x", 2), ("y", 1)]
        assert block_cardinality(members, clean_clean=True) == 2

    def test_clean_clean_single_source_is_zero(self):
        assert block_cardinality([("x", 1), ("x", 2)], clean_clean=True) == 0

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    def test_clean_clean_two_sources_formula(self, nx, ny):
        members = [("x", i) for i in range(nx)] + [("y", i) for i in range(ny)]
        assert block_cardinality(members, clean_clean=True) == nx * ny


class TestCountAndDistinct:
    def test_count_is_redundancy_positive(self):
        blocks = {"a": [1, 2], "b": [1, 2]}
        assert count_comparisons(blocks) == 2  # same pair counted twice
        assert distinct_pairs(blocks) == {(1, 2)}

    def test_distinct_pairs_clean_clean(self):
        blocks = {"a": [("x", 1), ("x", 2), ("y", 9)]}
        pairs = distinct_pairs(blocks, clean_clean=True)
        assert pairs == {(("x", 1), ("y", 9)), (("x", 2), ("y", 9))}

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.lists(st.integers(min_value=0, max_value=15), min_size=0, max_size=8, unique=True),
            max_size=6,
        )
    )
    def test_distinct_never_exceeds_count(self, blocks):
        assert len(distinct_pairs(blocks)) <= count_comparisons(blocks)
