"""Tests for the DySNI baseline."""

from __future__ import annotations

import pytest

from repro.baselines import DySNI, DySNIConfig, default_sorting_key
from repro.classification import OracleClassifier, ThresholdClassifier
from repro.errors import ConfigurationError
from repro.reading.profiles import ProfileBuilder
from repro.types import EntityDescription


def record(i, title, year="1999"):
    return EntityDescription.create(i, {"title": title, "year": year})


class TestSortingKey:
    def test_concatenates_first_tokens(self):
        profile = ProfileBuilder().build(record(1, "alpha beta", "2001"))
        key = default_sorting_key(profile, ("title", "year"))
        assert key == "alpha|2001"

    def test_missing_attributes_fall_back_to_tokens(self):
        profile = ProfileBuilder().build(
            EntityDescription.create(1, {"weird": "zulu alpha"})
        )
        key = default_sorting_key(profile, ("title", "year"))
        assert key  # non-empty: uses the smallest token
        assert "alpha" in key


class TestDySNI:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            DySNIConfig(window=0)

    def test_finds_adjacent_duplicates(self):
        dysni = DySNI(DySNIConfig(window=2, classifier=ThresholdClassifier(0.8)))
        dysni.process(record(1, "aardvark anthology"))
        matches = dysni.process(record(2, "aardvark anthology"))
        assert [m.key() for m in matches] == [(1, 2)]

    def test_window_limits_candidates(self):
        dysni = DySNI(DySNIConfig(window=1, classifier=ThresholdClassifier(0.99)))
        # Keys sort as: aaa, bbb, ccc, ddd, eee — identical twins at the ends.
        for i, t in enumerate(["aaa x", "bbb y", "ccc z", "ddd w", "eee v"]):
            dysni.process(record(i, t))
        before = dysni.comparisons
        dysni.process(record(9, "aaa x"))
        # Only window-adjacent records were compared.
        assert dysni.comparisons - before <= 2

    def test_comparisons_bounded_by_2w_per_insert(self):
        dysni = DySNI(DySNIConfig(window=3, classifier=ThresholdClassifier(0.99)))
        for i in range(50):
            dysni.process(record(i, f"title{i:03d} text"))
        assert dysni.comparisons <= 50 * 6

    def test_no_duplicate_match_pairs(self):
        dysni = DySNI(DySNIConfig(window=4, classifier=ThresholdClassifier(0.5)))
        for i in range(6):
            dysni.process(record(i, "same title every time"))
        assert len(dysni.match_pairs) == len(dysni.matches)

    def test_quality_on_relational_data(self, tiny_dirty_dataset):
        """On low-heterogeneity data with a sane key, DySNI finds matches."""
        ds = tiny_dirty_dataset
        dysni = DySNI(
            DySNIConfig(
                window=8,
                key_attributes=("title", "name", "description"),
                classifier=OracleClassifier.from_pairs(ds.ground_truth),
            )
        )
        dysni.process_many(ds.stream())
        assert len(dysni.match_pairs) > 0
        assert dysni.total_seconds > 0
