"""Tests for the DySimII baseline."""

from __future__ import annotations

import pytest

from repro.baselines import DySimII, DySimIIConfig
from repro.classification import OracleClassifier, ThresholdClassifier
from repro.errors import ConfigurationError
from repro.evaluation import pair_completeness
from repro.types import EntityDescription


def record(i, text):
    return EntityDescription.create(i, {"t": text})


class TestDySimII:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            DySimIIConfig(min_overlap_ratio=0.0)

    def test_finds_token_overlapping_duplicates(self):
        dysim = DySimII(DySimIIConfig(classifier=ThresholdClassifier(0.8)))
        dysim.process(record(1, "alpha beta gamma"))
        matches = dysim.process(record(2, "alpha beta gamma"))
        assert [m.key() for m in matches] == [(1, 2)]

    def test_overlap_threshold_prunes_weak_candidates(self):
        dysim = DySimII(
            DySimIIConfig(min_overlap_ratio=0.9, classifier=ThresholdClassifier(0.01))
        )
        dysim.process(record(1, "alpha beta gamma delta"))
        dysim.process(record(2, "alpha unrelated other things"))
        # Only 1 of 4 tokens shared < 90% → never fully compared.
        assert dysim.comparisons == 0

    def test_candidates_scanned_grows_with_hot_tokens(self):
        dysim = DySimII(DySimIIConfig(classifier=ThresholdClassifier(0.99)))
        for i in range(20):
            dysim.process(record(i, f"hot shared unique{i}"))
        # Posting lists of "hot"/"shared" are scanned in full every insert:
        # Σ_{i<20} 2i = 380 scans at minimum.
        assert dysim.candidates_scanned >= 380

    def test_no_duplicate_match_pairs(self):
        dysim = DySimII(DySimIIConfig(classifier=ThresholdClassifier(0.5)))
        for i in range(5):
            dysim.process(record(i, "same text again"))
        assert len(dysim.match_pairs) == len(dysim.matches)

    def test_high_completeness_without_cleaning(self, tiny_dirty_dataset):
        """No block cleaning → near-exhaustive candidates → high PC."""
        ds = tiny_dirty_dataset
        dysim = DySimII(
            DySimIIConfig(
                min_overlap_ratio=0.2,
                classifier=OracleClassifier.from_pairs(ds.ground_truth),
            )
        )
        dysim.process_many(ds.stream())
        pc = pair_completeness(dysim.match_pairs, ds.ground_truth)
        assert pc > 0.85
