"""Unit tests for the baseline configuration grids."""

from __future__ import annotations

from repro.batch import (
    CC_SCHEMES,
    BatchERConfig,
    block_cleaning_grid,
    comparison_cleaning_grid,
    full_grid,
)


class TestBlockCleaningGrid:
    def test_cross_product_size(self):
        grid = list(block_cleaning_grid())
        assert len(grid) == 6  # 2 r-values × 3 s-values

    def test_covers_paper_parameters(self):
        grid = {(c.r, c.s) for c in block_cleaning_grid()}
        assert (0.005, 0.1) in grid
        assert (0.05, 0.8) in grid

    def test_base_config_preserved(self):
        base = BatchERConfig(weighting="JS", pruning="RWNP")
        for config in block_cleaning_grid(base):
            assert config.weighting == "JS"
            assert config.pruning == "RWNP"


class TestComparisonCleaningGrid:
    def test_dirty_includes_rcnp_arcs(self):
        schemes = {(c.weighting, c.pruning) for c in comparison_cleaning_grid()}
        assert ("ARCS", "RCNP") in schemes
        assert len(schemes) == len(CC_SCHEMES) + 1

    def test_clean_clean_includes_rwnp_js(self):
        schemes = {
            (c.weighting, c.pruning)
            for c in comparison_cleaning_grid(clean_clean=True)
        }
        assert ("JS", "RWNP") in schemes

    def test_clean_clean_flag_propagates(self):
        for config in comparison_cleaning_grid(clean_clean=True):
            assert config.clean_clean


class TestFullGrid:
    def test_size(self):
        assert len(list(full_grid())) == 6 * 7

    def test_aggressive_only_restricts_r(self):
        for config in full_grid(aggressive_only=True):
            assert config.r == 0.005

    def test_labels_unique(self):
        labels = [c.label() for c in full_grid()]
        assert len(labels) == len(set(labels))
