"""Unit and behavioural tests for the batch baseline pipeline."""

from __future__ import annotations

import pytest

from repro.batch import BatchERConfig, BatchERPipeline, IncrementalBatchER
from repro.classification import OracleClassifier, ThresholdClassifier
from repro.errors import ConfigurationError
from repro.evaluation import pair_completeness


class TestBatchERConfig:
    def test_label(self):
        cfg = BatchERConfig(r=0.05, s=0.8, weighting="CBS", pruning="WNP")
        assert cfg.label() == "CBS+WNP r=0.05 s=0.8"

    def test_label_without_cleaning(self):
        cfg = BatchERConfig(r=None, s=None, pruning=None)
        assert cfg.label() == "no-CC"

    @pytest.mark.parametrize("bad", [{"r": 0.0}, {"r": 1.5}, {"s": 0.0}, {"s": 1.0}])
    def test_rejects_bad_ratios(self, bad):
        with pytest.raises(ConfigurationError):
            BatchERConfig(**bad)


class TestBatchERPipeline:
    def test_counts_decrease_through_workflow(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        cfg = BatchERConfig(
            r=0.05, s=0.5, classifier=ThresholdClassifier(0.9)
        )
        result = BatchERPipeline(cfg).run(ds.entities)
        assert result.n_entities == len(ds.entities)
        assert result.comparisons_after_bb >= result.comparisons_after_bc
        assert result.comparisons_after_bc >= result.comparisons_after_cc >= 0

    def test_oracle_quality(self, tiny_dirty_dataset, oracle):
        ds = tiny_dirty_dataset
        cfg = BatchERConfig(r=0.05, s=0.8, classifier=oracle)
        result = BatchERPipeline(cfg).run(ds.entities)
        pc = pair_completeness(result.match_pairs, ds.ground_truth)
        assert pc > 0.5

    def test_no_pruning_configuration(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        with_pruning = BatchERPipeline(
            BatchERConfig(r=0.05, s=0.5, pruning="WNP", classifier=ThresholdClassifier(0.99))
        ).run(ds.entities)
        without = BatchERPipeline(
            BatchERConfig(r=0.05, s=0.5, pruning=None, classifier=ThresholdClassifier(0.99))
        ).run(ds.entities)
        assert without.comparisons_after_cc >= with_pruning.comparisons_after_cc

    def test_clean_clean_candidates_cross_source(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        cfg = BatchERConfig(
            r=0.05, s=0.8, clean_clean=True, classifier=ThresholdClassifier(0.99)
        )
        result = BatchERPipeline(cfg).run(ds.entities)
        assert result.candidate_pairs
        for i, j in result.candidate_pairs:
            assert i[0] != j[0]

    def test_skip_pairs_suppresses_comparisons(self, tiny_dirty_dataset, oracle):
        ds = tiny_dirty_dataset
        cfg = BatchERConfig(r=0.05, s=0.8, classifier=oracle)
        full = BatchERPipeline(cfg).run(ds.entities)
        skipped = BatchERPipeline(cfg).run(
            ds.entities, skip_pairs=full.candidate_pairs
        )
        assert skipped.matches == []

    def test_timings_populated(self, tiny_dirty_dataset):
        cfg = BatchERConfig(classifier=ThresholdClassifier(0.99))
        result = BatchERPipeline(cfg).run(tiny_dirty_dataset.entities)
        assert result.resolution_seconds >= result.blocking_seconds


class TestIncrementalBatchER:
    def test_accumulates_matches_without_duplicates(self, tiny_dirty_dataset, oracle):
        ds = tiny_dirty_dataset
        runner = IncrementalBatchER(BatchERConfig(r=0.05, s=0.8, classifier=oracle))
        increments = ds.increments(3)
        for increment in increments:
            runner.process_increment(increment)
        pairs = runner.match_pairs
        assert len(pairs) == len(runner.matches)  # no duplicate pairs

    def test_incremental_close_to_single_batch(self, tiny_dirty_dataset, oracle):
        ds = tiny_dirty_dataset
        single = BatchERPipeline(
            BatchERConfig(r=0.05, s=0.8, classifier=oracle)
        ).run(ds.entities)
        runner = IncrementalBatchER(BatchERConfig(r=0.05, s=0.8, classifier=oracle))
        for increment in ds.increments(4):
            runner.process_increment(increment)
        # Incremental recomputation sees at least the final candidate set,
        # so it cannot find fewer matches than the single batch run.
        assert len(runner.match_pairs) >= len(single.match_pairs)

    def test_total_seconds_accumulates(self, tiny_dirty_dataset, oracle):
        runner = IncrementalBatchER(BatchERConfig(classifier=oracle))
        for increment in tiny_dirty_dataset.increments(2):
            runner.process_increment(increment)
        assert runner.total_seconds > 0
