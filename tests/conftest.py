"""Shared fixtures: the paper's running example and small synthetic data."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig
from repro.datasets import DatasetSpec, generate
from repro.types import EntityDescription


@pytest.fixture()
def paper_entities() -> list[EntityDescription]:
    """The running example of Figure 2: e1..e5 from the building sector.

    After standardization, e4's "fiber" becomes "fibre" and e5's "timber"
    becomes "wood", exactly as the paper assumes.
    """
    return [
        EntityDescription.create(1, {"title": "wooden top panel pavilion", "author": "John"}),
        EntityDescription.create(2, {"name": "glass fibre panel pavilion"}),
        EntityDescription.create(3, {"t": "wood top panel pavilion", "a": "John Doe"}),
        EntityDescription.create(4, {"desc": "fiber glass panel for pavilion"}),
        EntityDescription.create(
            5, {"material": "timber", "part": "side panel pavilion", "owner": "Jane"}
        ),
    ]


@pytest.fixture()
def paper_config() -> StreamERConfig:
    """The α=5, β=0.6 parameters used in the paper's worked example."""
    return StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3))


@pytest.fixture(scope="session")
def tiny_dirty_dataset():
    """A small deterministic dirty-ER dataset with ground truth."""
    spec = DatasetSpec(
        name="tiny-dirty", kind="dirty", size=300, matches=220,
        avg_attributes=4.0, heterogeneity=0.2, vocab_rare=3000, seed=42,
    )
    return generate(spec)


@pytest.fixture(scope="session")
def tiny_clean_dataset():
    """A small deterministic clean-clean dataset with ground truth."""
    spec = DatasetSpec(
        name="tiny-clean", kind="clean-clean", size=(150, 170), matches=120,
        avg_attributes=4.0, heterogeneity=0.4, vocab_rare=3000, seed=43,
    )
    return generate(spec)


@pytest.fixture()
def oracle(tiny_dirty_dataset) -> OracleClassifier:
    return OracleClassifier.from_pairs(tiny_dirty_dataset.ground_truth)
