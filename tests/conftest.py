"""Shared fixtures: the paper's running example and small synthetic data."""

from __future__ import annotations

import os

import pytest

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.core import StreamERConfig
from repro.datasets import DatasetSpec, generate
from repro.types import EntityDescription


def _effective_cpus() -> int:
    """CPUs this process may actually use (affinity mask, not the box)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic schedulers
            pass
    return os.cpu_count() or 1


def pytest_collection_modifyitems(config, items):
    """Auto-skip ``requires_multicore`` tests on effectively-serial hosts.

    Wall-clock speedup assertions are meaningless when the scheduler
    grants one CPU (cgroup-pinned CI, taskset-restricted sandboxes):
    process parallelism then pays IPC for no concurrency, and the tests
    would fail for reasons that have nothing to do with the code.
    """
    if _effective_cpus() >= 2:
        return
    skip = pytest.mark.skip(
        reason="requires >= 2 effective CPUs (scheduler affinity grants 1)"
    )
    for item in items:
        if "requires_multicore" in item.keywords:
            item.add_marker(skip)


@pytest.fixture()
def paper_entities() -> list[EntityDescription]:
    """The running example of Figure 2: e1..e5 from the building sector.

    After standardization, e4's "fiber" becomes "fibre" and e5's "timber"
    becomes "wood", exactly as the paper assumes.
    """
    return [
        EntityDescription.create(1, {"title": "wooden top panel pavilion", "author": "John"}),
        EntityDescription.create(2, {"name": "glass fibre panel pavilion"}),
        EntityDescription.create(3, {"t": "wood top panel pavilion", "a": "John Doe"}),
        EntityDescription.create(4, {"desc": "fiber glass panel for pavilion"}),
        EntityDescription.create(
            5, {"material": "timber", "part": "side panel pavilion", "owner": "Jane"}
        ),
    ]


@pytest.fixture()
def paper_config() -> StreamERConfig:
    """The α=5, β=0.6 parameters used in the paper's worked example."""
    return StreamERConfig(alpha=5, beta=0.6, classifier=ThresholdClassifier(0.3))


@pytest.fixture(scope="session")
def tiny_dirty_dataset():
    """A small deterministic dirty-ER dataset with ground truth."""
    spec = DatasetSpec(
        name="tiny-dirty", kind="dirty", size=300, matches=220,
        avg_attributes=4.0, heterogeneity=0.2, vocab_rare=3000, seed=42,
    )
    return generate(spec)


@pytest.fixture(scope="session")
def tiny_clean_dataset():
    """A small deterministic clean-clean dataset with ground truth."""
    spec = DatasetSpec(
        name="tiny-clean", kind="clean-clean", size=(150, 170), matches=120,
        avg_attributes=4.0, heterogeneity=0.4, vocab_rare=3000, seed=43,
    )
    return generate(spec)


@pytest.fixture()
def oracle(tiny_dirty_dataset) -> OracleClassifier:
    return OracleClassifier.from_pairs(tiny_dirty_dataset.ground_truth)
