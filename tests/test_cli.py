"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main


def run_cli(argv) -> tuple[int, list[dict]]:
    out = io.StringIO()
    code = main(argv, out=out)
    records = [json.loads(line) for line in out.getvalue().splitlines() if line]
    return code, records


@pytest.fixture()
def catalog_csv(tmp_path):
    path = tmp_path / "catalog.csv"
    path.write_text(
        "id,title,maker\n"
        "1,red table lamp vintage,acme\n"
        "2,red table lamp vintage,acme\n"
        "3,blue office chair,chairco\n"
        "4,blue office chair ergonomic,chairco\n"
    )
    return path


@pytest.fixture()
def catalog_jsonl(tmp_path):
    path = tmp_path / "catalog.jsonl"
    lines = [
        {"id": "a", "name": "red table lamp vintage"},
        {"id": "b", "name": "blue office chair"},
    ]
    path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
    return path


class TestDedupe:
    def test_emits_match_pairs(self, catalog_csv):
        code, records = run_cli(["dedupe", str(catalog_csv), "--threshold", "0.6"])
        assert code == 0
        pairs = {tuple(sorted((r["left"], r["right"]))) for r in records}
        assert ("1", "2") in pairs

    def test_clusters_mode(self, catalog_csv):
        code, records = run_cli(
            ["dedupe", str(catalog_csv), "--threshold", "0.6", "--clusters"]
        )
        assert code == 0
        clusters = [set(r["cluster"]) for r in records]
        assert {"1", "2"} in clusters

    def test_empty_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("id,title\n")
        code, records = run_cli(["dedupe", str(path)])
        assert code == 1
        assert records == []


class TestLink:
    def test_links_across_files(self, catalog_csv, catalog_jsonl):
        code, records = run_cli(
            ["link", str(catalog_csv), str(catalog_jsonl), "--threshold", "0.6"]
        )
        assert code == 0
        assert records  # the lamp / chair records link across files
        for r in records:
            left_source, _ = r["left"]
            right_source, _ = r["right"]
            assert left_source != right_source


class TestProfile:
    def test_emits_statistics(self, catalog_csv):
        code, records = run_cli(["profile", str(catalog_csv)])
        assert code == 0
        assert records[0]["entities"] == 4
        assert records[0]["distinct_attributes"] == 2
        assert 0.0 <= records[0]["heterogeneity_index"] <= 1.0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("id,a\n")
        code, _ = run_cli(["profile", str(path)])
        assert code == 1


class TestGenerate:
    def test_writes_entities_and_ground_truth(self, tmp_path):
        out_path = tmp_path / "data.jsonl"
        gt_path = tmp_path / "gt.jsonl"
        code, _ = run_cli(
            [
                "generate", "ag", "--scale", "0.02",
                "--out", str(out_path), "--ground-truth", str(gt_path),
            ]
        )
        assert code == 0
        entities = [json.loads(l) for l in out_path.read_text().splitlines()]
        assert entities and all("id" in e for e in entities)
        assert gt_path.exists()

    def test_generate_to_stdout(self):
        code, records = run_cli(["generate", "cora", "--scale", "0.02"])
        assert code == 0
        assert records

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["generate", "wikipedia"])


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, catalog_csv):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "profile", str(catalog_csv)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "entities" in proc.stdout


class TestRoundTrip:
    def test_generated_data_is_dedupable(self, tmp_path):
        out_path = tmp_path / "cora.jsonl"
        run_cli(["generate", "cora", "--scale", "0.05", "--out", str(out_path)])
        code, records = run_cli(
            ["dedupe", str(out_path), "--threshold", "0.7"]
        )
        assert code == 0
        assert records  # cora-like data is duplicate-heavy


class TestMetrics:
    def run_text(self, argv) -> tuple[int, str]:
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_prometheus_export(self, catalog_csv):
        code, text = self.run_text(
            ["metrics", str(catalog_csv), "--threshold", "0.6"]
        )
        assert code == 0
        assert "# TYPE er_entities_total counter" in text
        assert "er_entities_total 4" in text
        assert 'er_stage_service_seconds_bucket{stage="dr",le="+Inf"}' in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value)

    def test_json_export(self, catalog_csv):
        code, text = self.run_text(
            ["metrics", str(catalog_csv), "--format", "json"]
        )
        assert code == 0
        snapshot = json.loads(text)
        counters = {
            (c["name"], c["labels"].get("stage")): c["value"]
            for c in snapshot["counters"]
        }
        assert counters[("er_entities_total", None)] == 4.0
        assert snapshot["histograms"]

    def test_thread_executor(self, catalog_csv):
        code, text = self.run_text(
            ["metrics", str(catalog_csv), "--executor", "thread",
             "--threshold", "0.6"]
        )
        assert code == 0
        assert "er_queue_depth" in text
        assert "er_entities_total 4" in text

    def test_out_file(self, catalog_csv, tmp_path):
        target = tmp_path / "metrics.prom"
        code, text = self.run_text(
            ["metrics", str(catalog_csv), "--out", str(target)]
        )
        assert code == 0
        assert text == ""
        assert "er_entities_total" in target.read_text(encoding="utf-8")


class TestCheck:
    """The ``check`` subcommand: the metamorphic + invariant oracle suite."""

    def run_text(self, argv) -> tuple[int, str]:
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_list_prints_relation_names(self):
        code, text = self.run_text(["check", "--list"])
        assert code == 0
        names = text.split()
        assert "incremental-equals-batch" in names
        assert "executors-agree" in names

    def test_passing_subset_exits_zero(self):
        code, text = self.run_text(
            ["check", "--seed", "2021", "--examples", "2",
             "--property", "dirty-self-consistency",
             "--property", "interned-equals-string"]
        )
        assert code == 0

    def test_self_test_fails_with_replay_and_counterexample(self):
        code, text = self.run_text(
            ["check", "--seed", "2021", "--examples", "2",
             "--shrink-budget", "80", "--self-test-failure"]
        )
        assert code == 1
        assert "minimal counterexample" in text
        assert (
            "replay: repro-er check --seed 2021 --examples 2 "
            "--property self-test-failure" in text
        )

    def test_replay_command_is_self_contained(self):
        """The printed replay line must reproduce the failure verbatim."""
        code, text = self.run_text(
            ["check", "--seed", "2021", "--examples", "2",
             "--property", "self-test-failure"]
        )
        assert code == 1
        assert "self-test-failure" in text

    def test_unknown_property_exits_two(self):
        code, text = self.run_text(
            ["check", "--property", "no-such-relation"]
        )
        assert code == 2


class TestResume:
    """The ``resume`` subcommand: continue a durable run from its WAL dir."""

    def test_resume_replays_a_durable_run(self, catalog_csv, tmp_path):
        wal_dir = tmp_path / "wal"
        code, records = run_cli(
            [
                "dedupe", str(catalog_csv), "--threshold", "0.6",
                "--wal-dir", str(wal_dir), "--checkpoint-every", "2",
            ]
        )
        assert code == 0
        baseline = {(r["left"], r["right"], r["similarity"]) for r in records}
        assert baseline
        assert (wal_dir / "meta.json").exists()

        code, records = run_cli(["resume", str(wal_dir), str(catalog_csv)])
        assert code == 0
        resumed = {(r["left"], r["right"], r["similarity"]) for r in records}
        assert resumed == baseline

    def test_resume_of_a_missing_directory_fails(self, tmp_path):
        code, records = run_cli(
            ["resume", str(tmp_path / "nope"), str(tmp_path / "x.csv")]
        )
        assert code == 2
        assert records == []
