"""Tests for the synthetic dataset generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DatasetSpec, generate
from repro.errors import DatasetError
from repro.types import pair_key


class TestDatasetSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(DatasetError):
            DatasetSpec(name="x", kind="weird")

    def test_clean_clean_needs_pair_size(self):
        with pytest.raises(DatasetError):
            DatasetSpec(name="x", kind="clean-clean", size=100)

    def test_dirty_rejects_pair_size(self):
        with pytest.raises(DatasetError):
            DatasetSpec(name="x", kind="dirty", size=(10, 10))

    def test_total_size(self):
        assert DatasetSpec(name="x", size=10).total_size == 10
        cc = DatasetSpec(name="x", kind="clean-clean", size=(10, 20))
        assert cc.total_size == 30

    def test_scaled(self):
        spec = DatasetSpec(name="x", size=1000, matches=500)
        half = spec.scaled(0.5)
        assert half.size == 500
        assert half.matches == 250

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            DatasetSpec(name="x", size=10).scaled(0)


class TestGenerateDirty:
    SPEC = DatasetSpec(
        name="t", kind="dirty", size=400, matches=300,
        avg_attributes=4.0, vocab_rare=4000, seed=9,
    )

    def test_entity_count_exact(self):
        ds = generate(self.SPEC)
        assert len(ds.entities) == 400

    def test_match_count_close_to_target(self):
        ds = generate(self.SPEC)
        assert len(ds.ground_truth) == pytest.approx(300, rel=0.15)

    def test_ground_truth_pairs_are_canonical_and_valid(self):
        ds = generate(self.SPEC)
        ids = {e.eid for e in ds.entities}
        for i, j in ds.ground_truth:
            assert (i, j) == pair_key(i, j)
            assert i in ids and j in ids

    def test_deterministic_in_seed(self):
        a, b = generate(self.SPEC), generate(self.SPEC)
        assert [e.eid for e in a.entities] == [e.eid for e in b.entities]
        assert a.ground_truth == b.ground_truth
        assert a.entities[0].attributes == b.entities[0].attributes

    def test_different_seeds_differ(self):
        other = DatasetSpec(
            name="t", kind="dirty", size=400, matches=300,
            avg_attributes=4.0, vocab_rare=4000, seed=10,
        )
        assert generate(self.SPEC).ground_truth != generate(other).ground_truth

    def test_average_attributes_near_spec(self):
        ds = generate(self.SPEC)
        assert ds.average_attributes() == pytest.approx(4.0, rel=0.25)

    def test_duplicates_share_tokens(self):
        """Matched pairs must co-occur in blocks — they share rare tokens."""
        from repro.reading.profiles import ProfileBuilder

        ds = generate(self.SPEC)
        builder = ProfileBuilder()
        profiles = {e.eid: builder.build(e) for e in ds.entities}
        shared = [
            len(profiles[i].tokens & profiles[j].tokens)
            for i, j in list(ds.ground_truth)[:50]
        ]
        assert sum(1 for s in shared if s >= 2) / len(shared) > 0.9


class TestGenerateCleanClean:
    SPEC = DatasetSpec(
        name="t", kind="clean-clean", size=(120, 140), matches=100,
        avg_attributes=4.0, vocab_rare=4000, seed=11,
    )

    def test_source_sizes(self):
        ds = generate(self.SPEC)
        x = [e for e in ds.entities if e.eid[0] == "x"]
        y = [e for e in ds.entities if e.eid[0] == "y"]
        assert len(x) == 120
        assert len(y) == 140

    def test_ground_truth_is_cross_source(self):
        ds = generate(self.SPEC)
        for i, j in ds.ground_truth:
            assert {i[0], j[0]} == {"x", "y"}

    def test_match_count_close(self):
        ds = generate(self.SPEC)
        assert len(ds.ground_truth) == pytest.approx(100, rel=0.15)


class TestIncrements:
    def test_splits_evenly(self):
        ds = generate(TestGenerateDirty.SPEC)
        increments = ds.increments(4)
        assert len(increments) == 4
        assert sum(len(i) for i in increments) == len(ds.entities)

    def test_rejects_bad_count(self):
        ds = generate(TestGenerateDirty.SPEC)
        with pytest.raises(DatasetError):
            ds.increments(0)


@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(min_value=10, max_value=120),
    matches=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_generator_respects_entity_budget(size, matches, seed):
    spec = DatasetSpec(
        name="p", kind="dirty", size=size, matches=matches,
        vocab_rare=1000, seed=seed,
    )
    ds = generate(spec)
    assert len(ds.entities) == size
    # Pair budget is respected approximately from above: never > target by
    # more than one cluster's worth.
    max_pairs = matches + size * 2
    assert len(ds.ground_truth) <= max_pairs
