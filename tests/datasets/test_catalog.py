"""Tests for the Table II dataset catalog."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASET_NAMES,
    TABLE_II,
    characteristics,
    load,
    spec,
)
from repro.errors import DatasetError


class TestCatalog:
    def test_five_datasets(self):
        assert set(DATASET_NAMES) == {"cora", "cddb", "ag", "movies", "dbpedia"}

    def test_table_ii_characteristics_nominal(self):
        assert TABLE_II["cora"].size == 1290
        assert TABLE_II["cora"].matches == 17100
        assert TABLE_II["cddb"].avg_attributes == 17.8
        assert TABLE_II["movies"].kind == "clean-clean"
        assert TABLE_II["dbpedia"].size == (1_190_000, 2_160_000)

    def test_spec_applies_default_scale(self):
        s = spec("dbpedia")
        assert s.total_size < 100_000  # scaled down for one box

    def test_spec_custom_scale(self):
        s = spec("cora", scale=0.1)
        assert s.size == 129

    def test_spec_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            spec("wikipedia")

    def test_load_memoizes(self):
        a = load("cora", scale=0.1)
        b = load("cora", scale=0.1)
        assert a is b

    def test_relative_ordering_preserved(self):
        sizes = {name: spec(name).total_size for name in DATASET_NAMES}
        assert sizes["dbpedia"] == max(sizes.values())

    def test_characteristics_row(self):
        ds = load("cora", scale=0.2)
        row = characteristics(ds)
        assert row["name"] == "cora"
        assert row["type"] == "dirty ER"
        assert row["entities"] == len(ds.entities)

    def test_cora_has_large_clusters(self):
        """cora: 1.29k entities but 17.1k matches → clusters of ~27."""
        ds = load("cora", scale=0.3)
        ratio = len(ds.ground_truth) / len(ds.entities)
        assert ratio > 5

    def test_cddb_mostly_unique(self):
        ds = load("cddb", scale=0.3)
        ratio = len(ds.ground_truth) / len(ds.entities)
        assert ratio < 0.1
