"""Tests for ground-truth persistence and oracle construction."""

from __future__ import annotations

from repro.datasets import load_ground_truth, oracle_for, save_ground_truth
from repro.types import Comparison, Profile, ScoredComparison


class TestRoundTrip:
    def test_plain_ids(self, tmp_path):
        pairs = {(1, 2), (3, 9)}
        path = tmp_path / "gt.jsonl"
        save_ground_truth(pairs, path)
        assert load_ground_truth(path) == pairs

    def test_tuple_ids(self, tmp_path):
        pairs = {(("x", 1), ("y", 2))}
        path = tmp_path / "gt.jsonl"
        save_ground_truth(pairs, path)
        assert load_ground_truth(path) == pairs

    def test_canonicalizes_on_load(self, tmp_path):
        path = tmp_path / "gt.jsonl"
        save_ground_truth([(9, 1)], path)
        assert load_ground_truth(path) == {(1, 9)}

    def test_empty_file(self, tmp_path):
        path = tmp_path / "gt.jsonl"
        save_ground_truth([], path)
        assert load_ground_truth(path) == set()


class TestOracleFor:
    def test_produces_working_oracle(self):
        oracle = oracle_for([(1, 2)])
        a = Profile(eid=1, attributes=(), tokens=frozenset())
        b = Profile(eid=2, attributes=(), tokens=frozenset())
        assert oracle.classify(ScoredComparison(Comparison(a, b), 0.0)) is not None
