"""Tests for the pluggable perturbation model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.perturbations import (
    PerturbationProfile,
    perturb_record,
    perturb_token,
    perturb_value,
)
from repro.errors import DatasetError


class TestPerturbationProfile:
    def test_defaults_valid(self):
        PerturbationProfile()

    @pytest.mark.parametrize("field", ["token_drop", "typo", "attribute_drop"])
    def test_rejects_out_of_range(self, field):
        with pytest.raises(DatasetError):
            PerturbationProfile(**{field: 1.5})

    def test_none_profile_is_identity(self):
        rng = random.Random(1)
        profile = PerturbationProfile.none()
        for _ in range(50):
            assert perturb_value("fibre wood panel", profile, rng) == "fibre wood panel"

    def test_scaled(self):
        doubled = PerturbationProfile(token_drop=0.1).scaled(2.0)
        assert doubled.token_drop == pytest.approx(0.2)
        assert PerturbationProfile(token_drop=0.9).scaled(2.0).token_drop == 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(DatasetError):
            PerturbationProfile().scaled(-1.0)


class TestPerturbToken:
    def test_drop(self):
        profile = PerturbationProfile(token_drop=1.0)
        assert perturb_token("panel", profile, random.Random(1)) is None

    def test_typo_changes_one_char(self):
        profile = PerturbationProfile(token_drop=0.0, typo=1.0)
        rng = random.Random(3)
        out = perturb_token("panel", profile, rng)
        assert out is not None and len(out) == 5
        assert sum(a != b for a, b in zip(out, "panel")) <= 1

    def test_spelling_variant(self):
        profile = PerturbationProfile(
            token_drop=0.0, typo=0.0, spelling_variant=1.0
        )
        assert perturb_token("fibre", profile, random.Random(1)) == "fiber"

    def test_synonym_variant(self):
        profile = PerturbationProfile(
            token_drop=0.0, typo=0.0, spelling_variant=0.0, synonym_variant=1.0
        )
        out = perturb_token("wood", profile, random.Random(1))
        assert out in ("timber", "wooden", "lumber", "oak", "pine")


class TestPerturbRecord:
    RECORD = [("title", "glass fibre panel"), ("year", "1999")]

    def test_attribute_drop(self):
        profile = PerturbationProfile.none()
        profile = PerturbationProfile(attribute_drop=1.0)
        out = perturb_record(list(self.RECORD), profile, 0.0, random.Random(1))
        assert len(out) >= 1  # never fully empty

    def test_rename_scaled_by_heterogeneity(self):
        profile = PerturbationProfile(
            token_drop=0.0, typo=0.0, attribute_drop=0.0, attribute_rename=1.0
        )
        renamed = perturb_record(list(self.RECORD), profile, 1.0, random.Random(1))
        assert any(name.endswith("_alt") for name, _ in renamed)
        unrenamed = perturb_record(list(self.RECORD), profile, 0.0, random.Random(1))
        assert not any(name.endswith("_alt") for name, _ in unrenamed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_never_produces_empty_record(self, seed):
        profile = PerturbationProfile(attribute_drop=1.0, token_drop=1.0)
        out = perturb_record(list(self.RECORD), profile, 1.0, random.Random(seed))
        assert out
        assert all(value for _, value in out)


class TestSpecIntegration:
    def test_exact_duplicates_with_none_profile(self):
        from repro.datasets import DatasetSpec, generate

        spec = DatasetSpec(
            name="exact", kind="dirty", size=60, matches=40,
            vocab_rare=1000, perturbations=PerturbationProfile.none(), seed=5,
        )
        ds = generate(spec)
        by_id = {e.eid: e for e in ds.entities}
        for i, j in list(ds.ground_truth)[:20]:
            assert by_id[i].values() == by_id[j].values()

    def test_heavier_corruption_lowers_pc(self):
        from repro.classification import OracleClassifier
        from repro.core import StreamERConfig, StreamERPipeline
        from repro.datasets import DatasetSpec, generate
        from repro.evaluation import pair_completeness

        def pc_for(profile):
            spec = DatasetSpec(
                name="x", kind="dirty", size=400, matches=250,
                vocab_rare=4000, perturbations=profile, seed=6,
            )
            ds = generate(spec)
            pipeline = StreamERPipeline(
                StreamERConfig(
                    alpha=StreamERConfig.alpha_for(len(ds), 0.05),
                    beta=0.05,
                    classifier=OracleClassifier.from_pairs(ds.ground_truth),
                ),
                instrument=False,
            )
            result = pipeline.process_many(ds.stream())
            return pair_completeness(result.match_pairs, ds.ground_truth)

        clean = pc_for(PerturbationProfile.none())
        heavy = pc_for(PerturbationProfile(token_drop=0.4, typo=0.4))
        assert clean >= heavy
