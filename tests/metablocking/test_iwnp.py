"""Unit tests for the standalone I-WNP algorithm."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.metablocking import iwnp, iwnp_counts, iwnp_select


class TestIwnpCounts:
    def test_counts_multiplicities(self):
        assert iwnp_counts([1, 2, 2, 3]) == {1: 1, 2: 2, 3: 1}

    def test_empty(self):
        assert iwnp_counts([]) == {}


class TestIwnpSelect:
    def test_average_threshold(self):
        assert iwnp_select({1: 1, 2: 2}) == [2]  # avg 1.5

    def test_uniform_counts_all_kept(self):
        assert sorted(iwnp_select({1: 3, 2: 3})) == [1, 2]

    def test_empty(self):
        assert iwnp_select({}) == []


class TestIwnp:
    def test_paper_example(self):
        """C_4 = {(e4,e1), (e4,e2), (e4,e2)} → C'_4 = {(e4,e2)}."""
        assert iwnp([1, 2, 2]) == [2]

    @given(st.lists(st.integers(min_value=0, max_value=10)))
    def test_output_is_deduplicated_subset(self, candidates):
        kept = iwnp(candidates)
        assert len(kept) == len(set(kept))
        assert set(kept) <= set(candidates)

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1))
    def test_max_count_candidate_always_survives(self, candidates):
        counts = iwnp_counts(candidates)
        best = max(counts, key=lambda c: counts[c])
        assert best in iwnp(candidates)

    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1))
    def test_survivors_meet_threshold(self, candidates):
        counts = iwnp_counts(candidates)
        avg = sum(counts.values()) / len(counts)
        for survivor in iwnp(candidates):
            assert counts[survivor] >= avg
