"""Unit tests for blocking-graph construction."""

from __future__ import annotations

import pytest

from repro.metablocking import build_blocking_graph


class TestBuildBlockingGraph:
    def test_edges_count_common_blocks(self):
        blocks = {"a": [1, 2], "b": [1, 2, 3]}
        graph = build_blocking_graph(blocks)
        assert graph.cbs[(1, 2)] == 2
        assert graph.cbs[(1, 3)] == 1
        assert graph.cbs[(2, 3)] == 1

    def test_deduplicates_redundant_comparisons(self):
        blocks = {"a": [1, 2], "b": [1, 2], "c": [1, 2]}
        graph = build_blocking_graph(blocks)
        assert graph.num_edges == 1  # one edge, weight 3

    def test_arcs_accumulates_reciprocal_cardinality(self):
        blocks = {"a": [1, 2], "b": [1, 2, 3]}
        graph = build_blocking_graph(blocks)
        # block a: ||b||=1 → 1.0; block b: ||b||=3 → 1/3
        assert graph.arcs[(1, 2)] == pytest.approx(1.0 + 1 / 3)

    def test_entity_block_counts(self):
        blocks = {"a": [1, 2], "b": [1, 3]}
        graph = build_blocking_graph(blocks)
        assert graph.entity_blocks == {1: 2, 2: 1, 3: 1}
        assert graph.num_blocks == 2
        assert graph.total_assignments == 4

    def test_clean_clean_skips_same_source_edges(self):
        blocks = {"a": [("x", 1), ("x", 2), ("y", 1)]}
        graph = build_blocking_graph(blocks, clean_clean=True)
        assert set(graph.cbs) == {
            (("x", 1), ("y", 1)),
            (("x", 2), ("y", 1)),
        }

    def test_degrees(self):
        blocks = {"a": [1, 2, 3]}
        graph = build_blocking_graph(blocks)
        assert graph.degrees() == {1: 2, 2: 2, 3: 2}

    def test_neighbors_adjacency(self):
        blocks = {"a": [1, 2], "b": [2, 3]}
        graph = build_blocking_graph(blocks)
        adjacency = graph.neighbors()
        assert {other for other, _ in adjacency[2]} == {1, 3}

    def test_empty_blocks(self):
        graph = build_blocking_graph({})
        assert graph.num_edges == 0
        assert graph.num_entities == 0
