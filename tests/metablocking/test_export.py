"""Tests for the networkx export."""

from __future__ import annotations

import pytest

from repro.metablocking import build_blocking_graph, js_weights
from repro.metablocking.export import graph_diagnostics, to_networkx

BLOCKS = {"a": [1, 2], "b": [1, 2, 3], "c": [3, 4]}


class TestToNetworkx:
    def test_edges_and_weights(self):
        graph = build_blocking_graph(BLOCKS)
        g = to_networkx(graph)
        assert g.number_of_edges() == graph.num_edges
        assert g[1][2]["weight"] == 2.0  # CBS default

    def test_custom_weighting(self):
        graph = build_blocking_graph(BLOCKS)
        g = to_networkx(graph, js_weights(graph))
        assert 0.0 < g[1][2]["weight"] <= 1.0

    def test_empty(self):
        g = to_networkx(build_blocking_graph({}))
        assert g.number_of_nodes() == 0


class TestDiagnostics:
    def test_component_structure(self):
        # {1,2,3} connected via blocks a/b; {3,4} links 4 in too.
        stats = graph_diagnostics(build_blocking_graph(BLOCKS))
        assert stats["nodes"] == 4
        assert stats["components"] == 1
        assert stats["largest_component"] == 4

    def test_disconnected_components(self):
        blocks = {"a": [1, 2], "z": [10, 11]}
        stats = graph_diagnostics(build_blocking_graph(blocks))
        assert stats["components"] == 2

    def test_empty(self):
        stats = graph_diagnostics(build_blocking_graph({}))
        assert stats["nodes"] == 0

    def test_avg_degree(self):
        stats = graph_diagnostics(build_blocking_graph({"a": [1, 2]}))
        assert stats["avg_degree"] == pytest.approx(1.0)
