"""Unit tests for the five meta-blocking weighting schemes."""

from __future__ import annotations

import math

import pytest

from repro.metablocking import (
    WEIGHTING_SCHEMES,
    arcs_weights,
    build_blocking_graph,
    cbs_weights,
    ecbs_weights,
    ejs_weights,
    get_weighting_scheme,
    js_weights,
)

BLOCKS = {
    "a": [1, 2],
    "b": [1, 2, 3],
    "c": [2, 3],
}


@pytest.fixture()
def graph():
    return build_blocking_graph(BLOCKS)


class TestCBS:
    def test_counts(self, graph):
        weights = cbs_weights(graph)
        assert weights[(1, 2)] == 2.0
        assert weights[(2, 3)] == 2.0
        assert weights[(1, 3)] == 1.0


class TestECBS:
    def test_formula(self, graph):
        weights = ecbs_weights(graph)
        # |B|=3; |B_1|=2, |B_2|=3 → log(3/2)·log(3/3)=0 ⇒ weight 0 for (1,2)
        assert weights[(1, 2)] == pytest.approx(2 * math.log(3 / 2) * math.log(1))
        assert weights[(1, 3)] == pytest.approx(
            1 * math.log(3 / 2) * math.log(3 / 2)
        )


class TestJS:
    def test_formula(self, graph):
        weights = js_weights(graph)
        # (1,2): common=2, |B_1|=2, |B_2|=3 → 2/(2+3-2)
        assert weights[(1, 2)] == pytest.approx(2 / 3)
        # (1,3): common=1, |B_1|=2, |B_3|=2 → 1/(2+2-1)
        assert weights[(1, 3)] == pytest.approx(1 / 3)

    def test_bounded_by_one(self, graph):
        assert all(0 <= w <= 1 for w in js_weights(graph).values())


class TestARCS:
    def test_formula(self, graph):
        weights = arcs_weights(graph)
        # (1,2): block a (||b||=1) + block b (||b||=3) → 1 + 1/3
        assert weights[(1, 2)] == pytest.approx(4 / 3)
        # (1,3): only block b → 1/3
        assert weights[(1, 3)] == pytest.approx(1 / 3)


class TestEJS:
    def test_dampens_high_degree_nodes(self, graph):
        js = js_weights(graph)
        ejs = ejs_weights(graph)
        # 3 edges, all degrees 2 → factor log(3/2)² on every edge
        factor = math.log(3 / 2) ** 2
        for pair in js:
            assert ejs[pair] == pytest.approx(js[pair] * factor)


class TestRegistry:
    def test_all_schemes_present(self):
        assert set(WEIGHTING_SCHEMES) == {"CBS", "ECBS", "JS", "ARCS", "EJS"}

    def test_lookup_case_insensitive(self):
        assert get_weighting_scheme("cbs") is cbs_weights

    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="unknown weighting"):
            get_weighting_scheme("nope")

    def test_every_scheme_covers_every_edge(self, graph):
        for scheme in WEIGHTING_SCHEMES.values():
            assert set(scheme(graph)) == set(graph.cbs)
