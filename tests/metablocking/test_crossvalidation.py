"""Cross-validation of meta-blocking against an independent implementation.

Weights and pruning are recomputed from scratch with networkx and plain
set arithmetic; our graph/weighting/pruning modules must agree exactly.
This guards the subtle parts (redundancy handling, per-node thresholds,
reciprocal semantics) against silent drift.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metablocking import (
    build_blocking_graph,
    cbs_weights,
    ecbs_weights,
    js_weights,
    rwnp,
    wep,
    wnp,
)
from repro.types import pair_key

blocks_strategy = st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=2),
    st.lists(st.integers(min_value=0, max_value=12), min_size=2, max_size=7, unique=True),
    min_size=1,
    max_size=8,
)


def reference_graph(blocks):
    """Independent blocking-graph construction via networkx."""
    g = nx.Graph()
    entity_blocks: dict[int, int] = {}
    for members in blocks.values():
        for eid in members:
            entity_blocks[eid] = entity_blocks.get(eid, 0) + 1
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                i, j = members[a], members[b]
                if g.has_edge(i, j):
                    g[i][j]["cbs"] += 1
                else:
                    g.add_edge(i, j, cbs=1)
    return g, entity_blocks


@settings(max_examples=40, deadline=None)
@given(blocks=blocks_strategy)
def test_cbs_agrees_with_networkx(blocks):
    ours = cbs_weights(build_blocking_graph(blocks))
    reference, _ = reference_graph(blocks)
    assert len(ours) == reference.number_of_edges()
    for i, j, data in reference.edges(data=True):
        assert ours[pair_key(i, j)] == data["cbs"]


@settings(max_examples=40, deadline=None)
@given(blocks=blocks_strategy)
def test_js_agrees_with_direct_formula(blocks):
    graph = build_blocking_graph(blocks)
    ours = js_weights(graph)
    reference, entity_blocks = reference_graph(blocks)
    for i, j, data in reference.edges(data=True):
        common = data["cbs"]
        union = entity_blocks[i] + entity_blocks[j] - common
        assert ours[pair_key(i, j)] == pytest.approx(common / union)


@settings(max_examples=40, deadline=None)
@given(blocks=blocks_strategy)
def test_ecbs_agrees_with_direct_formula(blocks):
    graph = build_blocking_graph(blocks)
    ours = ecbs_weights(graph)
    reference, entity_blocks = reference_graph(blocks)
    n_blocks = len(blocks)
    for i, j, data in reference.edges(data=True):
        expected = (
            data["cbs"]
            * math.log(n_blocks / entity_blocks[i])
            * math.log(n_blocks / entity_blocks[j])
        )
        assert ours[pair_key(i, j)] == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(blocks=blocks_strategy)
def test_wep_agrees_with_direct_average(blocks):
    graph = build_blocking_graph(blocks)
    weights = cbs_weights(graph)
    ours = set(wep(graph, weights))
    threshold = sum(weights.values()) / len(weights)
    expected = {pair for pair, w in weights.items() if w >= threshold}
    assert ours == expected


@settings(max_examples=40, deadline=None)
@given(blocks=blocks_strategy)
def test_wnp_and_rwnp_agree_with_networkx_neighborhoods(blocks):
    graph = build_blocking_graph(blocks)
    weights = cbs_weights(graph)
    reference, _ = reference_graph(blocks)

    thresholds = {}
    for node in reference.nodes:
        adjacent = [weights[pair_key(node, nbr)] for nbr in reference.neighbors(node)]
        thresholds[node] = sum(adjacent) / len(adjacent)

    expected_wnp = {
        pair_key(i, j)
        for i, j in reference.edges
        if weights[pair_key(i, j)] >= thresholds[i]
        or weights[pair_key(i, j)] >= thresholds[j]
    }
    expected_rwnp = {
        pair_key(i, j)
        for i, j in reference.edges
        if weights[pair_key(i, j)] >= thresholds[i]
        and weights[pair_key(i, j)] >= thresholds[j]
    }
    assert set(wnp(graph, weights)) == expected_wnp
    assert set(rwnp(graph, weights)) == expected_rwnp
