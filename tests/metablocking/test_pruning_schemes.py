"""Unit tests for the six meta-blocking pruning schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metablocking import (
    PRUNING_SCHEMES,
    build_blocking_graph,
    cbs_weights,
    cep,
    cnp,
    get_pruning_scheme,
    rcnp,
    rwnp,
    wep,
    wnp,
)

BLOCKS = {
    "a": [1, 2],
    "b": [1, 2, 3],
    "c": [2, 3],
    "d": [3, 4],
}
# CBS: (1,2)=2, (1,3)=1, (2,3)=2, (3,4)=1


@pytest.fixture()
def graph():
    return build_blocking_graph(BLOCKS)


@pytest.fixture()
def weights(graph):
    return cbs_weights(graph)


class TestWEP:
    def test_global_average_threshold(self, graph, weights):
        kept = wep(graph, weights)
        # avg = (2+1+2+1)/4 = 1.5 → keep the two weight-2 edges
        assert set(kept) == {(1, 2), (2, 3)}

    def test_empty_graph(self):
        empty = build_blocking_graph({})
        assert wep(empty, {}) == {}


class TestWNP:
    def test_either_endpoint_suffices(self, graph, weights):
        kept = wnp(graph, weights)
        # thresholds: 1→1.5, 2→2.0, 3→(1+2+1)/3≈1.33, 4→1.0
        # (1,2): 2 ≥ 1.5 ✓;  (1,3): 1 < 1.5 and 1 < 1.33 ✗
        # (2,3): 2 ≥ 2.0 ✓;  (3,4): 1 < 1.33 but 1 ≥ 1.0 (node 4) ✓
        assert set(kept) == {(1, 2), (2, 3), (3, 4)}

    def test_reciprocal_is_stricter(self, graph, weights):
        assert set(rwnp(graph, weights)) <= set(wnp(graph, weights))

    def test_rwnp_needs_both(self, graph, weights):
        kept = rwnp(graph, weights)
        assert (3, 4) not in kept  # fails node 3's threshold
        assert (1, 2) in kept


class TestCEP:
    def test_keeps_top_half_of_assignments(self, graph, weights):
        kept = cep(graph, weights)
        # total assignments = 2+3+2+2 = 9 → k = 4 → all 4 edges retained
        assert len(kept) == 4

    def test_truncates_to_k(self):
        blocks = {"a": [1, 2]}  # assignments 2 → k = 1
        graph = build_blocking_graph(blocks)
        kept = cep(graph, cbs_weights(graph))
        assert len(kept) == 1

    def test_deterministic_tie_break(self, graph, weights):
        assert cep(graph, weights) == cep(graph, dict(weights))


class TestCNP:
    def test_top_k_per_node(self, graph, weights):
        kept = cnp(graph, weights)
        # k = max(1, 9 // 4) = 2 → every node keeps its 2 best edges.
        assert (1, 2) in kept
        assert (2, 3) in kept

    def test_reciprocal_is_stricter(self, graph, weights):
        assert set(rcnp(graph, weights)) <= set(cnp(graph, weights))


class TestRegistry:
    def test_all_schemes_present(self):
        assert set(PRUNING_SCHEMES) == {"WEP", "WNP", "RWNP", "CEP", "CNP", "RCNP"}

    def test_lookup_case_insensitive(self):
        assert get_pruning_scheme("wnp") is wnp

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown pruning"):
            get_pruning_scheme("XYZ")


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.text(min_size=1, max_size=2),
        st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=6, unique=True),
        min_size=1, max_size=6,
    )
)
def test_every_scheme_returns_subset_with_same_weights(blocks):
    graph = build_blocking_graph(blocks)
    weights = cbs_weights(graph)
    for scheme in PRUNING_SCHEMES.values():
        kept = scheme(graph, weights)
        assert set(kept) <= set(weights)
        for pair, w in kept.items():
            assert w == weights[pair]
