"""Tests for the incremental comparison harness (Figure 10 machinery)."""

from __future__ import annotations

import pytest

from repro.classification import OracleClassifier
from repro.incremental import APPROACHES, run_incremental_comparison


@pytest.fixture(scope="module")
def runs(request):
    return None


class TestRunIncrementalComparison:
    def test_all_approaches_run(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        oracle = OracleClassifier.from_pairs(ds.ground_truth)
        runs = run_incremental_comparison(ds, 3, oracle)
        assert [r.approach for r in runs] == list(APPROACHES)
        for run in runs:
            assert run.n_increments == 3
            assert len(run.per_increment_seconds) == 3
            assert run.total_seconds == pytest.approx(
                sum(run.per_increment_seconds)
            )

    def test_no_bc_variants_find_at_least_as_many_matches(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        oracle = OracleClassifier.from_pairs(ds.ground_truth)
        runs = {r.approach: r for r in run_incremental_comparison(ds, 3, oracle)}
        assert (
            runs["I-WNP (No BC)"].pair_completeness
            >= runs["I-WNP"].pair_completeness
        )

    def test_subset_of_approaches(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        oracle = OracleClassifier.from_pairs(ds.ground_truth)
        runs = run_incremental_comparison(ds, 2, oracle, approaches=("I-WNP",))
        assert len(runs) == 1

    def test_unknown_approach_rejected(self, tiny_dirty_dataset):
        oracle = OracleClassifier.from_pairs(tiny_dirty_dataset.ground_truth)
        with pytest.raises(ValueError):
            run_incremental_comparison(
                tiny_dirty_dataset, 2, oracle, approaches=("nope",)
            )

    def test_clean_clean_dataset(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        oracle = OracleClassifier.from_pairs(ds.ground_truth)
        runs = run_incremental_comparison(
            ds, 2, oracle, approaches=("I-WNP", "PI-Block")
        )
        for run in runs:
            assert 0.0 <= run.pair_completeness <= 1.0
