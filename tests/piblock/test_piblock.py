"""Unit and behavioural tests for the PI-Block baseline."""

from __future__ import annotations

from repro.classification import OracleClassifier, ThresholdClassifier
from repro.evaluation import pair_completeness
from repro.piblock import PIBlockConfig, PIBlockER
from repro.types import EntityDescription


def entities_with_shared_tokens():
    return [
        EntityDescription.create(1, {"t": "alpha beta gamma"}),
        EntityDescription.create(2, {"t": "alpha beta gamma"}),
        EntityDescription.create(3, {"t": "delta epsilon"}),
        EntityDescription.create(4, {"t": "beta delta"}),
    ]


class TestPIBlockER:
    def test_finds_heavily_cooccurring_pair(self):
        runner = PIBlockER(PIBlockConfig(classifier=ThresholdClassifier(0.9)))
        result = runner.process_increment(entities_with_shared_tokens())
        assert (1, 2) in runner.match_pairs
        assert result.comparisons_generated > 0

    def test_no_duplicate_comparisons_across_increments(self):
        runner = PIBlockER(PIBlockConfig(classifier=ThresholdClassifier(0.9)))
        data = entities_with_shared_tokens()
        runner.process_increment(data[:2])
        second = runner.process_increment(data[2:])
        # The (1,2) pair was compared in increment 1; only new pairs later.
        assert (1, 2) not in {
            tuple(sorted(m.key())) for m in second.matches
        } or len(runner.match_pairs) == len(set(runner.match_pairs))

    def test_state_grows_across_increments(self):
        runner = PIBlockER(PIBlockConfig(classifier=ThresholdClassifier(0.99)))
        data = entities_with_shared_tokens()
        runner.process_increment(data[:2])
        result = runner.process_increment(data[2:])
        # e4 shares "beta" with e1/e2 (earlier increment) and "delta" with e3.
        assert result.comparisons_generated >= 3

    def test_wnp_prunes_weak_edges(self):
        runner = PIBlockER(PIBlockConfig(classifier=ThresholdClassifier(0.99)))
        result = runner.process_increment(entities_with_shared_tokens())
        assert result.comparisons_after_pruning <= result.comparisons_generated

    def test_clean_clean_restricts_to_cross_source(self, tiny_clean_dataset):
        ds = tiny_clean_dataset
        runner = PIBlockER(
            PIBlockConfig(
                clean_clean=True,
                classifier=OracleClassifier.from_pairs(ds.ground_truth),
            )
        )
        for increment in ds.increments(3):
            runner.process_increment(increment)
        for i, j in runner.match_pairs:
            assert i[0] != j[0]

    def test_quality_without_block_cleaning_is_high(self, tiny_dirty_dataset):
        """No block cleaning → high PC (the paper's PC ≈ 0.97 regime)."""
        ds = tiny_dirty_dataset
        runner = PIBlockER(
            PIBlockConfig(classifier=OracleClassifier.from_pairs(ds.ground_truth))
        )
        for increment in ds.increments(4):
            runner.process_increment(increment)
        pc = pair_completeness(runner.match_pairs, ds.ground_truth)
        assert pc > 0.8

    def test_total_seconds_accumulates(self):
        runner = PIBlockER(PIBlockConfig(classifier=ThresholdClassifier(0.9)))
        runner.process_increment(entities_with_shared_tokens())
        assert runner.total_seconds > 0
