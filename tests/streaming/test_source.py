"""Tests for stream sources."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.streaming import RateLimitedSource, arrival_schedule
from repro.types import EntityDescription


def entities(n):
    return [EntityDescription.create(i, {"a": "x"}) for i in range(n)]


class TestRateLimitedSource:
    def test_yields_all_in_order(self):
        source = RateLimitedSource(entities(5), rate=1e6)
        assert [e.eid for e in source] == [0, 1, 2, 3, 4]

    def test_paces_emissions(self):
        source = RateLimitedSource(entities(6), rate=100)  # 10 ms apart
        start = time.perf_counter()
        list(source)
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.04  # at least 5 inter-arrival gaps minus jitter

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            RateLimitedSource(entities(1), rate=0)


class TestArrivalSchedule:
    def test_uniform_spacing(self):
        times = arrival_schedule(4, rate=2.0)
        assert times == [0.0, 0.5, 1.0, 1.5]

    def test_burst_groups_share_timestamps(self):
        times = arrival_schedule(6, rate=2.0, burst=3)
        assert times == [0.0, 0.0, 0.0, 1.5, 1.5, 1.5]

    def test_average_rate_preserved_with_burst(self):
        times = arrival_schedule(100, rate=50.0, burst=10)
        span = times[-1] - times[0]
        assert span == pytest.approx((100 - 10) / 50.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            arrival_schedule(5, rate=-1)
        with pytest.raises(ConfigurationError):
            arrival_schedule(5, rate=1, burst=0)
