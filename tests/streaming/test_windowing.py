"""Tests for the sliding-window pipeline."""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.errors import ConfigurationError
from repro.streaming import SlidingWindowERPipeline
from repro.types import EntityDescription


def entity(i, text):
    return EntityDescription.create(i, {"t": text})


def config(threshold=0.5):
    return StreamERConfig(alpha=1000, beta=0.05, classifier=ThresholdClassifier(threshold))


class TestWindowSemantics:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowERPipeline(config(), window=0)

    def test_matches_within_window_found(self):
        windowed = SlidingWindowERPipeline(config(), window=10)
        windowed.process(entity(1, "alpha beta gamma"))
        matches = windowed.process(entity(2, "alpha beta gamma"))
        assert [m.key() for m in matches] == [(1, 2)]

    def test_matches_beyond_window_missed(self):
        windowed = SlidingWindowERPipeline(config(), window=2)
        windowed.process(entity(1, "alpha beta gamma"))
        windowed.process(entity(2, "unrelated tokens here"))
        windowed.process(entity(3, "more unrelated things"))  # evicts 1
        matches = windowed.process(entity(4, "alpha beta gamma"))
        assert matches == []

    def test_state_stays_bounded(self):
        windowed = SlidingWindowERPipeline(config(0.99), window=25)
        for i in range(200):
            windowed.process(entity(i, f"token{i} shared common"))
        assert len(windowed.current_window) == 25
        assert len(windowed.pipeline.lm.profiles) <= 25
        assert windowed.pipeline.bb.blocks.total_assignments() <= 25 * 5
        assert windowed.stats.evicted_entities == 175

    def test_block_membership_removed_on_eviction(self):
        windowed = SlidingWindowERPipeline(config(0.99), window=1)
        windowed.process(entity(1, "alpha beta"))
        windowed.process(entity(2, "gamma delta"))  # evicts 1
        blocks = windowed.pipeline.bb.blocks
        assert 1 not in blocks.block("alpha")
        assert 1 not in blocks.block("beta")

    def test_empty_blocks_dropped(self):
        windowed = SlidingWindowERPipeline(config(0.99), window=1)
        windowed.process(entity(1, "unique1"))
        windowed.process(entity(2, "unique2"))
        assert "unique1" not in windowed.pipeline.bb.blocks

    def test_matches_survive_eviction(self):
        """M is the output: evicting state never removes found matches."""
        windowed = SlidingWindowERPipeline(config(), window=2)
        windowed.process(entity(1, "alpha beta gamma"))
        windowed.process(entity(2, "alpha beta gamma"))
        for i in range(3, 10):
            windowed.process(entity(i, f"junk{i} stuff{i}"))
        assert (1, 2) in windowed.pipeline.cl.matches.pairs()


class TestWindowEquivalenceProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    tokens = st.sampled_from(["glass", "panel", "wood", "roof", "door", "lamp"])
    values = st.lists(tokens, min_size=1, max_size=4).map(" ".join)

    @given(
        texts=st.lists(values, max_size=18),
        alpha=st.sampled_from([4, 1000]),
    )
    @settings(max_examples=25, deadline=None)
    def test_window_covering_stream_equals_unbounded(self, texts, alpha):
        cfg = lambda: StreamERConfig(  # noqa: E731
            alpha=alpha, beta=0.5, classifier=ThresholdClassifier(0.4)
        )
        stream = [entity(i, t) for i, t in enumerate(texts)]
        unbounded = StreamERPipeline(cfg(), instrument=False)
        unbounded.process_many(stream)
        windowed = SlidingWindowERPipeline(cfg(), window=len(stream) + 1)
        windowed.process_many(stream)
        assert (
            windowed.pipeline.cl.matches.pairs() == unbounded.cl.matches.pairs()
        )

    # Note: a *smaller* window does NOT find a subset of the unbounded
    # run's matches — eviction changes I-WNP's average threshold and can
    # keep blocks below the α pruning bound, so cleaning is non-monotone
    # in the candidate set.  Only the covering-window equivalence holds.


class TestEquivalenceWithinWindow:
    def test_large_window_equals_unbounded(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        cfg = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=ThresholdClassifier(0.6),
        )
        unbounded = StreamERPipeline(cfg, instrument=False)
        unbounded.process_many(ds.stream())
        windowed = SlidingWindowERPipeline(
            StreamERConfig(
                alpha=StreamERConfig.alpha_for(len(ds), 0.05),
                beta=0.05,
                classifier=ThresholdClassifier(0.6),
            ),
            window=len(ds) + 1,
        )
        windowed.process_many(ds.stream())
        assert (
            windowed.pipeline.cl.matches.pairs() == unbounded.cl.matches.pairs()
        )
