"""Tests for the streaming evaluation runners."""

from __future__ import annotations

import pytest

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig
from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel import ServiceModel, SimulatorConfig
from repro.streaming import LiveStreamRunner, SimulatedStreamRunner, StreamRunReport


def flat_service(mean: float = 1e-4) -> ServiceModel:
    return ServiceModel(
        mean_seconds={s: mean for s in STAGE_ORDER}, cv=0.0, spike_probability=0.0
    )


class TestSimulatedStreamRunner:
    def test_run_produces_report(self):
        runner = SimulatedStreamRunner(flat_service(), processes=19)
        report = runner.run(500, rate=500.0)
        assert isinstance(report, StreamRunReport)
        assert report.entities == 500
        assert report.latency.count == 500
        assert report.throughput

    def test_underload_throughput_tracks_source(self):
        runner = SimulatedStreamRunner(
            flat_service(), processes=19, config=SimulatorConfig(comm_overhead=0.0)
        )
        report = runner.run(2000, rate=400.0, window=1.0)
        assert report.stable_throughput == pytest.approx(400.0, rel=0.2)

    def test_overload_throughput_below_source(self):
        runner = SimulatedStreamRunner(
            flat_service(mean=1e-3), processes=19,
            config=SimulatorConfig(comm_overhead=0.0),
        )
        report = runner.run(2000, rate=1e6, window=0.1)
        assert report.stable_throughput < 1e6 / 2

    def test_calibrated_from_real_run(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=ThresholdClassifier(0.9),
        )
        runner = SimulatedStreamRunner.calibrated(
            list(ds.stream())[:100], config, processes=19
        )
        assert runner.service.mean_total() > 0
        report = runner.run(200, rate=1000.0)
        assert report.entities == 200

    def test_calibration_requires_samples(self):
        with pytest.raises(ConfigurationError):
            SimulatedStreamRunner.calibrated([], StreamERConfig())


class TestLiveStreamRunner:
    def test_live_run_small(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=ThresholdClassifier(0.9),
        )
        runner = LiveStreamRunner(config, processes=8)
        report = runner.run(list(ds.stream())[:60], rate=2000.0)
        assert report.entities == 60
        assert report.latency.count == 60
        assert report.latency.mean > 0


class TestStreamRunReport:
    def test_stable_throughput_ignores_warmup_and_partial_tail(self):
        report = StreamRunReport(
            source_rate=10.0,
            entities=0,
            latency=None,  # type: ignore[arg-type]
            throughput=[(1, 2.0), (2, 9.0), (3, 10.0), (4, 11.0), (5, 3.0)],
        )
        assert report.stable_throughput == pytest.approx(10.5)

    def test_stable_throughput_empty(self):
        report = StreamRunReport(
            source_rate=1.0, entities=0, latency=None, throughput=[]  # type: ignore[arg-type]
        )
        assert report.stable_throughput == 0.0

    def test_stable_throughput_from_completions(self):
        # 11 completions 0.1 s apart: interquartile span (indices 2..8)
        # is 0.6 s for 6 completions → 10/s.
        completions = [i * 0.1 for i in range(11)]
        report = StreamRunReport(
            source_rate=10.0,
            entities=11,
            latency=None,  # type: ignore[arg-type]
            completions=completions,
        )
        assert report.stable_throughput == pytest.approx(10.0)

    def test_identical_completion_times_fall_back_to_windowed_series(self):
        # Regression: >= 8 completions sharing one timestamp (coarse
        # clock / batch drain) used to short-circuit to 0.0 even though a
        # perfectly good windowed series was available.
        report = StreamRunReport(
            source_rate=10.0,
            entities=10,
            latency=None,  # type: ignore[arg-type]
            throughput=[(1, 2.0), (2, 9.0), (3, 10.0), (4, 11.0), (5, 3.0)],
            completions=[5.0] * 10,
        )
        assert report.stable_throughput == pytest.approx(10.5)
