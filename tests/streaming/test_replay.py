"""Tests for timestamped stream replay."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.streaming.replay import arrival_times_from_events, replay
from repro.types import EntityDescription


def events(gaps):
    ts = 0.0
    out = []
    for i, gap in enumerate(gaps):
        ts += gap
        out.append((ts, EntityDescription.create(i, {"a": "x"})))
    return out


class TestReplay:
    def test_preserves_order_and_content(self):
        out = list(replay(events([0, 0.001, 0.001]), speed=1000))
        assert [e.eid for e in out] == [0, 1, 2]

    def test_respects_gaps(self):
        stream = events([0, 0.05, 0.05])
        start = time.perf_counter()
        list(replay(stream, speed=1.0))
        assert time.perf_counter() - start >= 0.08

    def test_speed_compresses_gaps(self):
        stream = events([0, 0.2, 0.2])
        start = time.perf_counter()
        list(replay(stream, speed=100.0))
        assert time.perf_counter() - start < 0.1

    def test_rejects_out_of_order(self):
        bad = [(1.0, EntityDescription.create(0, {})), (0.5, EntityDescription.create(1, {}))]
        with pytest.raises(ConfigurationError, match="out of order"):
            list(replay(bad, speed=100))

    def test_rejects_bad_speed(self):
        with pytest.raises(ConfigurationError):
            list(replay([], speed=0))


class TestArrivalTimes:
    def test_relative_schedule(self):
        stream = events([5.0, 1.0, 2.0])
        assert arrival_times_from_events(stream) == [0.0, 1.0, 3.0]

    def test_speed_scaling(self):
        stream = events([0.0, 2.0])
        assert arrival_times_from_events(stream, speed=2.0) == [0.0, 1.0]

    def test_empty(self):
        assert arrival_times_from_events([]) == []

    def test_out_of_order_rejected(self):
        bad = [(1.0, EntityDescription.create(0, {})), (0.5, EntityDescription.create(1, {}))]
        with pytest.raises(ConfigurationError):
            arrival_times_from_events(bad)
