"""Tests for update-aware ER."""

from __future__ import annotations

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.streaming.updates import UpdateAwareERPipeline
from repro.types import EntityDescription


def entity(i, text):
    return EntityDescription.create(i, {"t": text})


def make(threshold=0.5, alpha=1000):
    return UpdateAwareERPipeline(
        StreamERConfig(alpha=alpha, beta=0.1, classifier=ThresholdClassifier(threshold))
    )


class TestInsertThenUpdate:
    def test_update_replaces_block_memberships(self):
        pipeline = make()
        pipeline.process(entity(1, "alpha beta"))
        pipeline.process(entity(1, "gamma delta"))  # update
        blocks = pipeline.pipeline.bb.blocks
        assert 1 not in blocks.block("alpha")
        assert 1 in blocks.block("gamma")
        assert pipeline.updates_applied == 1
        assert pipeline.version_of(1) == 2

    def test_update_replaces_profile(self):
        pipeline = make()
        pipeline.process(entity(1, "alpha beta"))
        pipeline.process(entity(1, "gamma delta"))
        profile = pipeline.pipeline.lm.profiles.get(1)
        assert profile is not None
        assert "gamma" in profile.tokens
        assert "alpha" not in profile.tokens

    def test_new_description_matches_current_not_old(self):
        pipeline = make()
        pipeline.process(entity(1, "alpha beta gamma"))
        pipeline.process(entity(1, "completely different words"))  # update
        matches = pipeline.process(entity(2, "alpha beta gamma"))
        # e2 must NOT match e1's *old* description.
        assert matches == []

    def test_updated_entity_can_match_anew(self):
        pipeline = make()
        pipeline.process(entity(1, "old tokens here"))
        pipeline.process(entity(2, "fresh shiny words"))
        matches = pipeline.process(entity(1, "fresh shiny words"))  # update
        assert [m.key() for m in matches] == [(1, 2)]

    def test_no_self_match_on_update(self):
        pipeline = make()
        pipeline.process(entity(1, "alpha beta"))
        matches = pipeline.process(entity(1, "alpha beta"))
        assert all(m.left != m.right for m in matches)


class TestStaleness:
    def test_match_becomes_stale_after_update(self):
        pipeline = make()
        pipeline.process(entity(1, "alpha beta gamma"))
        pipeline.process(entity(2, "alpha beta gamma"))
        assert pipeline.stale_matches() == []
        pipeline.process(entity(1, "totally new content"))  # invalidates
        stale = pipeline.stale_matches()
        assert [m.key() for m in stale] == [(1, 2)]

    def test_fresh_rematch_not_stale(self):
        pipeline = make()
        pipeline.process(entity(1, "alpha beta gamma"))
        pipeline.process(entity(2, "alpha beta gamma"))
        pipeline.process(entity(1, "alpha beta gamma"))  # update, same text
        # Match (1,2) was found at version (1,1); e1 is now version 2, so
        # the old evidence is stale even though the text is identical.
        assert [m.key() for m in pipeline.stale_matches()] == [(1, 2)]


class TestInsertOnlyEquivalence:
    def test_matches_reference_pipeline_without_updates(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = lambda: StreamERConfig(  # noqa: E731
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=ThresholdClassifier(0.6),
        )
        reference = StreamERPipeline(config(), instrument=False)
        reference.process_many(ds.stream())
        update_aware = UpdateAwareERPipeline(config())
        update_aware.process_many(ds.stream())
        assert (
            update_aware.pipeline.cl.matches.pairs()
            == reference.cl.matches.pairs()
        )
        assert update_aware.updates_applied == 0
