"""Tests for the self-tuning β controller."""

from __future__ import annotations

import pytest

from repro.adaptive import BetaController, SelfTuningERPipeline
from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig
from repro.errors import ConfigurationError
from repro.types import EntityDescription


class TestBetaController:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BetaController(target_comparisons=0)
        with pytest.raises(ConfigurationError):
            BetaController(target_comparisons=10, rate=1.0)
        with pytest.raises(ConfigurationError):
            BetaController(target_comparisons=10, min_beta=0.5, max_beta=0.4)
        with pytest.raises(ConfigurationError):
            BetaController(target_comparisons=10, smoothing=0.0)

    def test_raises_beta_under_overload(self):
        controller = BetaController(
            target_comparisons=10, interval=1, smoothing=1.0
        )
        beta = controller.update(0.05, comparisons=100)
        assert beta > 0.05  # larger β ghosts more

    def test_lowers_beta_with_headroom(self):
        controller = BetaController(
            target_comparisons=100, interval=1, smoothing=1.0
        )
        beta = controller.update(0.5, comparisons=1)
        assert beta < 0.5

    def test_dead_band_keeps_beta(self):
        controller = BetaController(
            target_comparisons=100, interval=1, smoothing=1.0
        )
        assert controller.update(0.1, comparisons=100) == 0.1

    def test_clamped_to_band(self):
        controller = BetaController(
            target_comparisons=1, interval=1, smoothing=1.0, max_beta=0.2
        )
        beta = 0.19
        for _ in range(20):
            beta = controller.update(beta, comparisons=1000)
        assert beta == pytest.approx(0.2)

    def test_interval_batches_adjustments(self):
        controller = BetaController(target_comparisons=1, interval=5, smoothing=1.0)
        betas = [controller.update(0.1, comparisons=100) for _ in range(4)]
        assert betas == [0.1] * 4  # no adjustment before the interval
        assert controller.update(0.1, comparisons=100) > 0.1

    def test_ewma_tracks_observations(self):
        controller = BetaController(target_comparisons=10, smoothing=0.5)
        controller.update(0.1, comparisons=100)
        controller.update(0.1, comparisons=100)
        assert controller.observed == pytest.approx(75.0)


class TestSelfTuningERPipeline:
    def _noisy_stream(self, n):
        # Every entity shares the "common" tokens, creating an ever-growing
        # hot block — exactly the overload the controller should counter.
        return [
            EntityDescription.create(
                i, {"t": f"common shared hot token{i} extra{i % 7}"}
            )
            for i in range(n)
        ]

    def test_beta_rises_under_comparison_overload(self):
        config = StreamERConfig(
            alpha=10_000, beta=0.01, classifier=ThresholdClassifier(0.99)
        )
        tuned = SelfTuningERPipeline(
            config,
            BetaController(target_comparisons=3, interval=10, smoothing=0.5),
        )
        tuned.process_many(self._noisy_stream(300))
        assert tuned.beta > 0.01
        assert tuned.controller.adjustments > 0

    def test_tuning_reduces_comparisons_vs_static(self):
        def run(tuning: bool) -> int:
            config = StreamERConfig(
                alpha=10_000, beta=0.01, classifier=ThresholdClassifier(0.99)
            )
            if tuning:
                pipeline = SelfTuningERPipeline(
                    config,
                    BetaController(target_comparisons=2, interval=5, smoothing=0.5),
                )
                pipeline.process_many(self._noisy_stream(400))
                return pipeline.pipeline.cg.generated
            static = SelfTuningERPipeline(
                config, BetaController(target_comparisons=1e9, interval=5)
            )
            static.process_many(self._noisy_stream(400))
            return static.pipeline.cg.generated

        assert run(tuning=True) < run(tuning=False)

    def test_matches_still_found_while_tuning(self, tiny_dirty_dataset):
        ds = tiny_dirty_dataset
        config = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.05),
            beta=0.05,
            classifier=ThresholdClassifier(0.6),
        )
        tuned = SelfTuningERPipeline(
            config, BetaController(target_comparisons=30, interval=20)
        )
        matches = tuned.process_many(ds.stream())
        assert matches  # duplicates still detected under adaptation
