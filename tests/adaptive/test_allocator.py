"""Tests for the dynamic process allocator."""

from __future__ import annotations

import pytest

from repro.adaptive import DynamicAllocator
from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel import allocate_processes, paper_example_times


def uniform_allocation(total: int = 8) -> dict[str, int]:
    return {s: 1 for s in STAGE_ORDER} | (
        {} if total == 8 else {}
    )


def times(co: float = 1.0, cc: float = 1.0) -> dict[str, float]:
    base = {s: 0.1 for s in STAGE_ORDER}
    base["co"] = co
    base["cc"] = cc
    return base


class TestDynamicAllocator:
    def test_rejects_incomplete_allocation(self):
        with pytest.raises(ConfigurationError):
            DynamicAllocator({"co": 2})

    def test_no_recommendation_before_interval(self):
        allocator = DynamicAllocator(uniform_allocation(), interval=10)
        for _ in range(9):
            assert allocator.observe(times()) is None

    def test_moves_worker_toward_live_bottleneck(self):
        start = allocate_processes(paper_example_times(), 15)
        assert start["co"] == 6
        allocator = DynamicAllocator(start, interval=5, min_improvement=0.01)
        # Live behaviour differs from the offline profile: cc explodes.
        change = None
        for _ in range(30):
            change = allocator.observe(times(co=0.3, cc=3.0)) or change
        assert change is not None
        assert change.to_stage == "cc"
        assert sum(allocator.allocation.values()) == 15
        assert allocator.allocation["cc"] > start["cc"]

    def test_never_strips_fixed_or_last_worker(self):
        allocator = DynamicAllocator(uniform_allocation(), interval=1)
        for _ in range(20):
            allocator.observe(times(co=5.0))
        assert all(v >= 1 for v in allocator.allocation.values())
        assert allocator.allocation["bb+bp"] == 1

    def test_stable_when_already_optimal(self):
        profile = paper_example_times()
        start = allocate_processes(profile, 15)
        allocator = DynamicAllocator(start, interval=2, smoothing=1.0)
        moves = [allocator.observe(profile) for _ in range(10)]
        assert all(m is None for m in moves)
        assert allocator.allocation == start

    def test_improvement_metric(self):
        start = allocate_processes(paper_example_times(), 12)
        allocator = DynamicAllocator(start, interval=1, min_improvement=0.0)
        change = None
        for _ in range(10):
            change = allocator.observe(times(co=4.0)) or change
        if change is not None:
            assert 0.0 <= change.improvement <= 1.0
            assert change.bottleneck_after <= change.bottleneck_before

    def test_history_records_moves(self):
        start = allocate_processes(paper_example_times(), 15)
        allocator = DynamicAllocator(start, interval=1, min_improvement=0.01)
        for _ in range(50):
            allocator.observe(times(co=0.2, cc=5.0))
        assert allocator.history
        assert allocator.history[0].after != allocator.history[0].before
