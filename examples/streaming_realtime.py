"""Real-time streaming ER: latency and throughput under a live source.

Part 1 drives the *real* task-parallel framework (threads, bounded queues,
micro-batching) from a rate-limited source and reports per-entity latency.
Part 2 calibrates the discrete-event simulator from measured stage times
and explores source rates far beyond what one interpreter can emit —
the paper's 5 000–100 000 descriptions/s regime.

Run:  python examples/streaming_realtime.py
"""

from __future__ import annotations

from repro import StreamERConfig
from repro.classification import ThresholdClassifier
from repro.datasets import DatasetSpec, generate
from repro.streaming import LiveStreamRunner, SimulatedStreamRunner


def main() -> None:
    dataset = generate(
        DatasetSpec(
            name="stream", kind="dirty", size=3_000, matches=1_000,
            avg_attributes=5.0, vocab_rare=20_000, seed=5,
        )
    )
    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        classifier=ThresholdClassifier(0.6),
    )

    # -- Part 1: live run on the thread framework ------------------------
    print("live streaming through the thread framework (rate 1500/s) ...")
    live = LiveStreamRunner(config, processes=10, micro_batch_size=20)
    report = live.run(list(dataset.stream())[:1_500], rate=1_500.0)
    lat = report.latency
    print(f"  processed {report.entities} descriptions")
    print(f"  latency: mean={lat.mean * 1e3:.1f}ms p50={lat.p50 * 1e3:.1f}ms "
          f"p99={lat.p99 * 1e3:.1f}ms max={lat.maximum * 1e3:.1f}ms")

    # -- Part 2: simulated high source rates -----------------------------
    print("\ncalibrating the simulator from a sequential run ...")
    simulated = SimulatedStreamRunner.calibrated(
        list(dataset.stream()), config, processes=25
    )
    capacity_hint = 1.0 / max(simulated.service.mean_seconds.values())
    print(f"  (single-stage capacity hint: ~{capacity_hint:,.0f}/s)")

    for rate in (5_000.0, 10_000.0, 50_000.0, 100_000.0):
        rep = simulated.run(40_000, rate, window=0.5)
        print(
            f"  source {rate:>9,.0f}/s -> stable output "
            f"{rep.stable_throughput:>9,.0f}/s, latency p50 "
            f"{rep.latency.p50 * 1e3:6.2f}ms  p99 {rep.latency.p99 * 1e3:6.2f}ms"
        )
    print("\nbelow capacity the output follows the source; above it, the "
          "framework saturates at its service rate while latency stays flat.")


if __name__ == "__main__":
    main()
