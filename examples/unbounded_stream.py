"""Operating on a truly unbounded stream: windowed state + self-tuning β.

The paper's state σ = ⟨M, B⟩ grows forever, which is fine for incremental
maintenance of a finite dataset but not for an endless feed.  This example
combines the two extension mechanisms that make long-running deployments
practical:

* a sliding window bounds the block collection and profile map to the
  most recent entities (a new description can only match recent ones);
* the self-tuning β controller (the paper's stated future work) reacts to
  workload drift — here, a sudden burst of near-identical "hot topic"
  descriptions that would otherwise flood comparison generation.

Run:  python examples/unbounded_stream.py
"""

from __future__ import annotations

import random

from repro.adaptive import BetaController
from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig
from repro.datasets import DatasetSpec, generate
from repro.streaming import SlidingWindowERPipeline
from repro.types import EntityDescription


def endless_feed(seed: int = 11):
    """A synthetic feed: steady product descriptions + a mid-stream burst."""
    base = generate(
        DatasetSpec(
            name="feed", kind="dirty", size=4_000, matches=1_200,
            avg_attributes=5.0, vocab_rare=25_000, seed=seed,
        )
    )
    rng = random.Random(seed)
    for index, entity in enumerate(base.entities):
        yield entity
        if 1_500 <= index < 1_900:  # the burst segment
            yield EntityDescription.create(
                ("hot", index),
                {
                    "headline": "flash sale everything must go",
                    "detail": f"offer {rng.randint(0, 20)}",
                },
            )


def main() -> None:
    window = 1_000
    config = StreamERConfig(
        alpha=400, beta=0.02, classifier=ThresholdClassifier(0.6)
    )
    windowed = SlidingWindowERPipeline(config, window=window)
    controller = BetaController(target_comparisons=40, interval=25, smoothing=0.3)

    matches = 0
    processed = 0
    for entity in endless_feed():
        before = windowed.pipeline.cg.generated
        matches += len(windowed.process(entity))
        generated = windowed.pipeline.cg.generated - before
        new_beta = controller.update(windowed.pipeline.bg.beta, generated)
        windowed.pipeline.bg.beta = new_beta
        processed += 1
        if processed % 1_000 == 0:
            print(
                f"t={processed:5d}: window={len(windowed.current_window)}, "
                f"evicted={windowed.stats.evicted_entities}, "
                f"β={windowed.pipeline.bg.beta:.3f}, "
                f"matches so far={matches}, "
                f"profile-map size={len(windowed.pipeline.lm.profiles)}"
            )

    print(
        f"\ndone: {processed} descriptions, {matches} matches, state bounded at "
        f"{len(windowed.current_window)} profiles "
        f"({windowed.stats.evicted_entities} evicted); final β "
        f"{windowed.pipeline.bg.beta:.3f} (started at 0.02, raised during the burst)"
    )


if __name__ == "__main__":
    main()
