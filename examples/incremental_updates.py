"""Incremental maintenance vs periodic recomputation.

A finite dataset is updated in increments (the paper's incremental-ER
setting).  This example contrasts three strategies on the same updates:

* our incremental pipeline (state carried across increments),
* the batch workflow recomputed over all collected data per increment,
* PI-Block, the incremental meta-blocking baseline (no block cleaning).

It prints per-increment and cumulative runtimes — the paper's Figure 10
in miniature — plus final quality for each strategy.

Run:  python examples/incremental_updates.py
"""

from __future__ import annotations

from repro.classification import OracleClassifier
from repro.datasets import DatasetSpec, generate
from repro.incremental import run_incremental_comparison


def main() -> None:
    dataset = generate(
        DatasetSpec(
            name="updates", kind="clean-clean", size=(1_200, 1_000),
            matches=900, avg_attributes=5.0, heterogeneity=0.5,
            vocab_rare=15_000, seed=31,
        )
    )
    oracle = OracleClassifier.from_pairs(dataset.ground_truth)
    n_increments = 6
    print(
        f"dataset: {len(dataset)} descriptions arriving in "
        f"{n_increments} increments\n"
    )

    runs = run_incremental_comparison(dataset, n_increments, oracle)
    for run in runs:
        per_inc = " ".join(f"{s * 1e3:7.0f}" for s in run.per_increment_seconds)
        print(f"{run.approach:14s} total={run.total_seconds:6.2f}s  "
              f"PC={run.pair_completeness:.3f}")
        print(f"{'':14s} per-increment ms: {per_inc}")

    ours = next(r for r in runs if r.approach == "I-WNP")
    batch = next(r for r in runs if r.approach == "Batch")
    print(
        f"\nour per-increment cost stays flat while the batch baseline's "
        f"grows with the collected data\n(ours last/first = "
        f"{ours.per_increment_seconds[-1] / ours.per_increment_seconds[0]:.1f}x, "
        f"batch last/first = "
        f"{batch.per_increment_seconds[-1] / batch.per_increment_seconds[0]:.1f}x)."
    )


if __name__ == "__main__":
    main()
