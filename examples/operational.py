"""Operating ER as a long-running service: monitoring + suspend/resume.

A resolution service needs two things the core algorithms don't provide:
visibility (is the pipeline keeping up? is pruning working?) and the
ability to stop and later resume without recomputing — e.g. for a deploy,
or to move the state to another machine.  This example shows both:

1. a :class:`PipelineMonitor` emits periodic health snapshots while a
   catalog streams in;
2. mid-stream, the full ER state is dumped to disk; a *fresh* pipeline
   loads it and continues — and ends with exactly the matches an
   uninterrupted run finds.

Run:  python examples/operational.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline, dump_state, load_state
from repro.core.monitoring import PipelineMonitor
from repro.datasets import DatasetSpec, generate


def config(n: int) -> StreamERConfig:
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(n, 0.05),
        beta=0.05,
        classifier=ThresholdClassifier(0.55),
    )


def main() -> None:
    catalog = generate(
        DatasetSpec(
            name="service-feed", kind="dirty", size=3_000, matches=1_000,
            avg_attributes=5.0, vocab_rare=20_000, seed=77,
        )
    )
    entities = list(catalog.stream())
    half = len(entities) // 2

    # --- phase 1: run with monitoring, then suspend --------------------
    pipeline = StreamERPipeline(config(len(entities)), instrument=False)
    monitor = PipelineMonitor(
        pipeline,
        interval=500,
        on_snapshot=lambda snap: print("  [monitor]", snap.summary()),
    )
    print("phase 1: processing first half with monitoring ...")
    monitor.process_many(entities[:half])

    state_file = Path(tempfile.gettempdir()) / "er_state.json"
    dump_state(pipeline, state_file)
    print(f"\nsuspended: state written to {state_file} "
          f"({state_file.stat().st_size / 1e6:.1f} MB)")

    # --- phase 2: fresh process resumes from the state ------------------
    resumed = StreamERPipeline(config(len(entities)), instrument=False)
    load_state(resumed, state_file)
    print(f"resumed: {resumed.entities_processed} entities of state loaded\n"
          "phase 2: processing second half ...")
    resumed.process_many(entities[half:])

    # --- verification against an uninterrupted run ----------------------
    reference = StreamERPipeline(config(len(entities)), instrument=False)
    reference.process_many(entities)
    same = resumed.cl.matches.pairs() == reference.cl.matches.pairs()
    print(
        f"\nresumed run found {len(resumed.cl.matches)} matches; "
        f"identical to uninterrupted run: {same}"
    )
    state_file.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
