"""Quickstart: resolve a small stream of heterogeneous entity descriptions.

Runs the paper's running example (Figure 2): five descriptions of building
components, arriving one at a time, with no fixed schema.  The pipeline
standardizes them (fiber→fibre, timber→wood), blocks on tokens, prunes
oversized blocks, cleans comparisons with I-WNP, and reports matches as
soon as they are found.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EntityDescription, StreamERConfig, StreamERPipeline
from repro.classification import ThresholdClassifier

STREAM = [
    EntityDescription.create(
        "e1", {"title": "wooden top panel pavilion", "author": "John"}
    ),
    EntityDescription.create("e2", {"name": "glass fibre panel pavilion"}),
    EntityDescription.create("e3", {"t": "wood top panel pavilion", "a": "John Doe"}),
    EntityDescription.create("e4", {"desc": "fiber glass panel for pavilion"}),
    EntityDescription.create(
        "e5", {"material": "timber", "part": "side panel pavilion", "owner": "Jane"}
    ),
]


def main() -> None:
    config = StreamERConfig(
        alpha=5,          # blocks reaching 5 members are pruned + blacklisted
        beta=0.6,         # ghost blocks >|b_min|/0.6 for each entity
        classifier=ThresholdClassifier(0.3),
    )
    pipeline = StreamERPipeline(config)

    print("processing stream ...")
    for entity, matches in pipeline.stream(STREAM):
        line = f"  {entity.eid}: "
        if matches:
            line += ", ".join(f"matches {m.left}~{m.right} (sim={m.similarity:.2f})" for m in matches)
        else:
            line += "no new matches"
        print(line)

    summary = pipeline.summary()
    print(f"\nentities processed : {summary.entities_processed}")
    print(f"comparisons made   : {summary.comparisons_after_cleaning} "
          f"(generated {summary.comparisons_generated}, naive would be 10)")
    print(f"blocks pruned      : {summary.blocks_pruned}")
    print(f"matches            : {sorted(summary.match_pairs)}")


if __name__ == "__main__":
    main()
