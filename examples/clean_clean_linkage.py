"""Clean-clean ER: link two clean catalogs against each other.

Two shops each publish a duplicate-free catalog describing overlapping
products with different schemas and conventions.  ``combine`` merges the
two streams under (source, id) identifiers and the pipeline only pairs
descriptions across sources — §III-B of the paper.

Run:  python examples/clean_clean_linkage.py
"""

from __future__ import annotations

from repro import StreamERConfig, StreamERPipeline
from repro.classification import OracleClassifier
from repro.datasets import DatasetSpec, generate
from repro.evaluation import pair_completeness


def main() -> None:
    # A clean-clean dataset: shop x (900 items) and shop y (1 100 items),
    # about 700 cross-catalog links; identifiers already carry the source.
    dataset = generate(
        DatasetSpec(
            name="two-shops", kind="clean-clean", size=(900, 1_100),
            matches=700, avg_attributes=5.0, heterogeneity=0.5,
            vocab_rare=15_000, seed=7,
        )
    )
    left = sum(1 for e in dataset.entities if e.source == "x")
    print(f"shop x: {left} items, shop y: {len(dataset) - left} items, "
          f"{len(dataset.ground_truth)} true links")

    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), 0.05),
        beta=0.05,
        clean_clean=True,
        # The paper's evaluation classifies via ground-truth lookup
        # ("perfect classifier") so PC isolates the blocking quality.
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )
    pipeline = StreamERPipeline(config, instrument=False)
    result = pipeline.process_many(dataset.stream())

    pc = pair_completeness(result.match_pairs, dataset.ground_truth)
    print(f"\nlinked {len(result.match_pairs)} pairs in {result.elapsed_seconds:.2f}s")
    print(f"pair completeness: {pc:.3f}")
    print(f"comparisons executed: {result.comparisons_after_cleaning} "
          f"(naive cross product would be {left * (len(dataset) - left)})")

    print("\nsample links:")
    for match in result.matches[:5]:
        print(f"  {match.left}  <->  {match.right}")
    # Every link is cross-source by construction:
    assert all(i[0] != j[0] for i, j in result.match_pairs)


if __name__ == "__main__":
    main()
