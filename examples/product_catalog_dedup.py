"""Deduplicate a product catalog that receives rolling updates (dirty ER).

This is the meta-search-engine scenario from the paper's introduction:
product descriptions from many shops, with no common schema, duplicated
with typos/abbreviations/synonyms, arriving in periodic increments.  The
incremental pipeline maintains the full ER result across updates and the
downstream clusterer exposes canonical product groups at any moment.

Run:  python examples/product_catalog_dedup.py
"""

from __future__ import annotations

from repro import StreamERConfig, StreamERPipeline
from repro.classification import ThresholdClassifier
from repro.clustering import IncrementalClusterer
from repro.datasets import DatasetSpec, generate
from repro.evaluation import pair_completeness, precision_recall_f1


def main() -> None:
    # A synthetic catalog: 2 000 product descriptions, ~1 500 duplicate
    # pairs, heterogeneous attribute names (web-extracted data).
    catalog = generate(
        DatasetSpec(
            name="products", kind="dirty", size=2_000, matches=1_500,
            avg_attributes=5.0, heterogeneity=0.4, vocab_rare=20_000, seed=2024,
        )
    )
    print(f"catalog: {len(catalog)} descriptions, "
          f"{len(catalog.ground_truth)} true duplicate pairs")

    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(catalog), 0.05),
        beta=0.05,
        classifier=ThresholdClassifier(0.55),
    )
    pipeline = StreamERPipeline(config, instrument=False)
    clusterer = IncrementalClusterer()

    # The catalog arrives in five updates; the result is maintained
    # incrementally — nothing is ever recomputed from scratch.
    for index, increment in enumerate(catalog.increments(5), start=1):
        result = pipeline.process_many(increment)
        clusterer.add_matches(result.matches)
        found = pipeline.cl.matches.pairs()
        pc = pair_completeness(found, catalog.ground_truth)
        print(
            f"update {index}: +{len(increment)} descriptions, "
            f"+{len(result.matches)} new matches in {result.elapsed_seconds:.2f}s "
            f"(PC so far: {pc:.3f})"
        )

    precision, recall, f1 = precision_recall_f1(
        pipeline.cl.matches.pairs(), catalog.ground_truth
    )
    print(f"\nfinal quality: precision={precision:.3f} recall={recall:.3f} f1={f1:.3f}")

    clusters = clusterer.clusters()
    print(f"product groups discovered: {len(clusters)}")
    biggest = clusters[0]
    print(f"largest group has {len(biggest)} listings; sample member attributes:")
    sample_id = next(iter(biggest))
    profile = pipeline.lm.profiles.get(sample_id)
    assert profile is not None
    for name, value in profile.attributes[:4]:
        print(f"   {name} = {value}")


if __name__ == "__main__":
    main()
