"""The blocking graph underlying meta-blocking.

Nodes are entity descriptions; an edge connects two entities that co-occur
in at least one block.  Each edge carries the raw statistics that the
weighting schemes of :mod:`repro.metablocking.weights` consume:

* ``cbs`` — number of common blocks (the CBS weight itself), and
* ``arcs`` — Σ over common blocks of ``1 / ||b||`` (the ARCS weight).

Per-node statistics (block counts, degrees) are kept alongside so ECBS/JS/
EJS can be derived without another pass over the blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.token_blocking import Blocks, block_cardinality
from repro.types import EntityId, pair_key

Pair = tuple[EntityId, EntityId]


@dataclass
class BlockingGraph:
    """Weighted blocking graph plus the statistics weighting schemes need."""

    cbs: dict[Pair, int] = field(default_factory=dict)
    arcs: dict[Pair, float] = field(default_factory=dict)
    entity_blocks: dict[EntityId, int] = field(default_factory=dict)
    num_blocks: int = 0
    total_assignments: int = 0
    clean_clean: bool = False
    _degrees: dict[EntityId, int] | None = field(default=None, repr=False)

    @property
    def num_entities(self) -> int:
        return len(self.entity_blocks)

    @property
    def num_edges(self) -> int:
        return len(self.cbs)

    def degrees(self) -> dict[EntityId, int]:
        """Node degree map (computed lazily, cached)."""
        if self._degrees is None:
            degrees: dict[EntityId, int] = {}
            for i, j in self.cbs:
                degrees[i] = degrees.get(i, 0) + 1
                degrees[j] = degrees.get(j, 0) + 1
            self._degrees = degrees
        return self._degrees

    def neighbors(self) -> dict[EntityId, list[tuple[EntityId, Pair]]]:
        """Adjacency lists: node → [(other node, canonical edge key)]."""
        adjacency: dict[EntityId, list[tuple[EntityId, Pair]]] = {}
        for pair in self.cbs:
            i, j = pair
            adjacency.setdefault(i, []).append((j, pair))
            adjacency.setdefault(j, []).append((i, pair))
        return adjacency


def build_blocking_graph(blocks: Blocks, clean_clean: bool = False) -> BlockingGraph:
    """Construct the blocking graph of a (cleaned) block collection.

    Every pair of co-occurring entities becomes an edge; for clean-clean ER
    only cross-source pairs are connected.  Building the graph inherently
    de-duplicates redundant comparisons — each pair appears once however
    many blocks it shares.
    """
    graph = BlockingGraph(clean_clean=clean_clean)
    entity_blocks: dict[EntityId, int] = {}
    for members in blocks.values():
        cardinality = block_cardinality(members, clean_clean)
        arcs_incr = 1.0 / cardinality if cardinality else 0.0
        for eid in members:
            entity_blocks[eid] = entity_blocks.get(eid, 0) + 1
        n = len(members)
        for a in range(n):
            i = members[a]
            for b in range(a + 1, n):
                j = members[b]
                if i == j:
                    continue
                if clean_clean and i[0] == j[0]:  # type: ignore[index]
                    continue
                key = pair_key(i, j)
                graph.cbs[key] = graph.cbs.get(key, 0) + 1
                if arcs_incr:
                    graph.arcs[key] = graph.arcs.get(key, 0.0) + arcs_incr
    graph.entity_blocks = entity_blocks
    graph.num_blocks = len(blocks)
    graph.total_assignments = sum(len(members) for members in blocks.values())
    return graph
