"""I-WNP — the paper's incremental variant of CBS weighting + WNP pruning.

Unlike classical meta-blocking, I-WNP never materializes a blocking graph:
it operates on the comparison list ``C_i`` of the *currently processed*
entity only (Algorithm 3).  Candidates are grouped by partner id, the group
count is the CBS weight, and the local threshold is the average count; only
groups at or above the average survive.

This module exposes the algorithm standalone so that both the core pipeline
stage and the PI-Block baseline can reuse it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


def iwnp_counts(candidates: Iterable[T]) -> dict[T, int]:
    """Group candidates and count multiplicities (the CBS weights)."""
    counts: dict[T, int] = {}
    for candidate in candidates:
        counts[candidate] = counts.get(candidate, 0) + 1
    return counts


def iwnp_select(counts: dict[T, int]) -> list[T]:
    """Keep candidates whose count is at least the average count."""
    if not counts:
        return []
    avg = sum(counts.values()) / len(counts)
    return [candidate for candidate, count in counts.items() if count >= avg]


def iwnp(candidates: Iterable[T]) -> list[T]:
    """Full I-WNP pass: dedupe by grouping, prune by average-count threshold."""
    return iwnp_select(iwnp_counts(candidates))
