"""Export the blocking graph to networkx for ad-hoc analysis.

Meta-blocking decisions are easier to debug with graph tooling: degree
distributions, connected components, community structure.  This module
converts a :class:`~repro.metablocking.graph.BlockingGraph` (plus any
weighting scheme) into a ``networkx.Graph`` whose edges carry the weights,
and provides a couple of ready-made diagnostics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metablocking.graph import BlockingGraph
from repro.metablocking.weights import WeightedEdges, cbs_weights

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx


def to_networkx(
    graph: BlockingGraph, weights: WeightedEdges | None = None
) -> "networkx.Graph":
    """Build a ``networkx.Graph`` with ``weight`` edge attributes."""
    import networkx as nx

    if weights is None:
        weights = cbs_weights(graph)
    g = nx.Graph()
    for (i, j), w in weights.items():
        g.add_edge(i, j, weight=w)
    return g


def graph_diagnostics(graph: BlockingGraph) -> dict[str, float]:
    """Headline statistics of a blocking graph (via networkx)."""
    import networkx as nx

    g = to_networkx(graph)
    if g.number_of_nodes() == 0:
        return {
            "nodes": 0.0, "edges": 0.0, "avg_degree": 0.0,
            "components": 0.0, "largest_component": 0.0,
        }
    degrees = [d for _, d in g.degree()]
    components = list(nx.connected_components(g))
    return {
        "nodes": float(g.number_of_nodes()),
        "edges": float(g.number_of_edges()),
        "avg_degree": sum(degrees) / len(degrees),
        "components": float(len(components)),
        "largest_component": float(max(len(c) for c in components)),
    }
