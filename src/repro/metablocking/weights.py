"""Meta-blocking edge weighting schemes (Papadakis et al., TKDE 2014).

All five general-purpose schemes of the meta-blocking paper:

* **CBS** — Common Blocks Scheme: number of blocks the pair co-occurs in.
* **ECBS** — Enhanced CBS: CBS damped by how prolific each entity's block
  membership is, ``CBS · log(|B|/|B_i|) · log(|B|/|B_j|)``.
* **JS** — Jaccard Scheme over the two entities' block sets,
  ``CBS / (|B_i| + |B_j| − CBS)``.
* **ARCS** — Aggregate Reciprocal Comparisons Scheme: Σ over common blocks
  of ``1/||b||``; common small blocks are strong evidence.
* **EJS** — Enhanced JS: JS damped by node degrees,
  ``JS · log(|E|/deg_i) · log(|E|/deg_j)``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.metablocking.graph import BlockingGraph, Pair

WeightedEdges = dict[Pair, float]
WeightingScheme = Callable[[BlockingGraph], WeightedEdges]


def cbs_weights(graph: BlockingGraph) -> WeightedEdges:
    """Common Blocks Scheme: the raw co-occurrence counts."""
    return {pair: float(count) for pair, count in graph.cbs.items()}


def ecbs_weights(graph: BlockingGraph) -> WeightedEdges:
    """Enhanced Common Blocks Scheme."""
    num_blocks = max(graph.num_blocks, 1)
    logs = {
        eid: math.log(num_blocks / count) if count else 0.0
        for eid, count in graph.entity_blocks.items()
    }
    return {
        (i, j): count * logs[i] * logs[j] for (i, j), count in graph.cbs.items()
    }


def js_weights(graph: BlockingGraph) -> WeightedEdges:
    """Jaccard Scheme over block sets."""
    blocks_of = graph.entity_blocks
    out: WeightedEdges = {}
    for (i, j), common in graph.cbs.items():
        union = blocks_of[i] + blocks_of[j] - common
        out[(i, j)] = common / union if union else 0.0
    return out


def arcs_weights(graph: BlockingGraph) -> WeightedEdges:
    """Aggregate Reciprocal Comparisons Scheme."""
    # Pairs whose every common block had zero cardinality cannot occur
    # (co-occurrence implies ||b|| >= 1), so graph.arcs covers all edges.
    return {pair: graph.arcs.get(pair, 0.0) for pair in graph.cbs}


def ejs_weights(graph: BlockingGraph) -> WeightedEdges:
    """Enhanced Jaccard Scheme."""
    js = js_weights(graph)
    degrees = graph.degrees()
    num_edges = max(graph.num_edges, 1)
    logs = {
        eid: math.log(num_edges / degree) if degree else 0.0
        for eid, degree in degrees.items()
    }
    return {(i, j): w * logs[i] * logs[j] for (i, j), w in js.items()}


WEIGHTING_SCHEMES: dict[str, WeightingScheme] = {
    "CBS": cbs_weights,
    "ECBS": ecbs_weights,
    "JS": js_weights,
    "ARCS": arcs_weights,
    "EJS": ejs_weights,
}


def get_weighting_scheme(name: str) -> WeightingScheme:
    """Look up a weighting scheme by its paper acronym."""
    try:
        return WEIGHTING_SCHEMES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(WEIGHTING_SCHEMES))
        raise KeyError(f"unknown weighting scheme '{name}'; expected one of: {known}") from None
