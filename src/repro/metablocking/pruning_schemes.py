"""Meta-blocking edge pruning schemes (Papadakis et al., TKDE 2014 / BDR 2016).

Weight-based:

* **WEP** — Weighted Edge Pruning: keep edges with weight ≥ the global
  average edge weight.
* **WNP** — Weighted Node Pruning: per node, threshold = average weight of
  its adjacent edges; an edge survives if it clears the threshold of *at
  least one* endpoint ("redefined" WNP of the enhanced meta-blocking paper).
* **RWNP** — Reciprocal WNP: the edge must clear the thresholds of *both*
  endpoints.

Cardinality-based:

* **CEP** — Cardinality Edge Pruning: keep the globally top-k edges with
  ``k = ⌊Σ|b| / 2⌋`` (half the total block assignments).
* **CNP** — Cardinality Node Pruning: per node keep the top-k adjacent
  edges, ``k = max(1, ⌊Σ|b| / |E|⌋)``; an edge survives if retained by at
  least one endpoint.
* **RCNP** — Reciprocal CNP: retained by both endpoints.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.metablocking.graph import BlockingGraph, Pair
from repro.metablocking.weights import WeightedEdges
from repro.types import EntityId

PruningScheme = Callable[[BlockingGraph, WeightedEdges], WeightedEdges]


def _node_thresholds(graph: BlockingGraph, weights: WeightedEdges) -> dict[EntityId, float]:
    """Average adjacent-edge weight per node."""
    sums: dict[EntityId, float] = {}
    counts: dict[EntityId, int] = {}
    for (i, j), w in weights.items():
        sums[i] = sums.get(i, 0.0) + w
        counts[i] = counts.get(i, 0) + 1
        sums[j] = sums.get(j, 0.0) + w
        counts[j] = counts.get(j, 0) + 1
    return {eid: sums[eid] / counts[eid] for eid in sums}


def wep(graph: BlockingGraph, weights: WeightedEdges) -> WeightedEdges:
    """Weighted Edge Pruning."""
    if not weights:
        return {}
    threshold = sum(weights.values()) / len(weights)
    return {pair: w for pair, w in weights.items() if w >= threshold}


def wnp(graph: BlockingGraph, weights: WeightedEdges) -> WeightedEdges:
    """Weighted Node Pruning (non-reciprocal: either endpoint suffices)."""
    thresholds = _node_thresholds(graph, weights)
    return {
        (i, j): w
        for (i, j), w in weights.items()
        if w >= thresholds[i] or w >= thresholds[j]
    }


def rwnp(graph: BlockingGraph, weights: WeightedEdges) -> WeightedEdges:
    """Reciprocal Weighted Node Pruning (both endpoints must agree)."""
    thresholds = _node_thresholds(graph, weights)
    return {
        (i, j): w
        for (i, j), w in weights.items()
        if w >= thresholds[i] and w >= thresholds[j]
    }


def cep(graph: BlockingGraph, weights: WeightedEdges) -> WeightedEdges:
    """Cardinality Edge Pruning: global top-k edges."""
    k = graph.total_assignments // 2
    if k <= 0 or not weights:
        return {}
    if k >= len(weights):
        return dict(weights)
    top = heapq.nlargest(k, weights.items(), key=lambda item: (item[1], item[0]))
    return dict(top)


def _top_k_per_node(
    graph: BlockingGraph, weights: WeightedEdges, k: int
) -> dict[EntityId, set[Pair]]:
    adjacent: dict[EntityId, list[tuple[float, Pair]]] = {}
    for pair, w in weights.items():
        i, j = pair
        adjacent.setdefault(i, []).append((w, pair))
        adjacent.setdefault(j, []).append((w, pair))
    retained: dict[EntityId, set[Pair]] = {}
    for eid, edges in adjacent.items():
        top = heapq.nlargest(k, edges, key=lambda item: (item[0], item[1]))
        retained[eid] = {pair for _, pair in top}
    return retained


def _cnp_k(graph: BlockingGraph) -> int:
    entities = max(graph.num_entities, 1)
    return max(1, graph.total_assignments // entities)


def cnp(graph: BlockingGraph, weights: WeightedEdges) -> WeightedEdges:
    """Cardinality Node Pruning (either endpoint retains the edge)."""
    retained = _top_k_per_node(graph, weights, _cnp_k(graph))
    return {
        (i, j): w
        for (i, j), w in weights.items()
        if (i, j) in retained.get(i, ()) or (i, j) in retained.get(j, ())
    }


def rcnp(graph: BlockingGraph, weights: WeightedEdges) -> WeightedEdges:
    """Reciprocal Cardinality Node Pruning (both endpoints must retain)."""
    retained = _top_k_per_node(graph, weights, _cnp_k(graph))
    return {
        (i, j): w
        for (i, j), w in weights.items()
        if (i, j) in retained.get(i, ()) and (i, j) in retained.get(j, ())
    }


PRUNING_SCHEMES: dict[str, PruningScheme] = {
    "WEP": wep,
    "WNP": wnp,
    "RWNP": rwnp,
    "CEP": cep,
    "CNP": cnp,
    "RCNP": rcnp,
}


def get_pruning_scheme(name: str) -> PruningScheme:
    """Look up a pruning scheme by its paper acronym."""
    try:
        return PRUNING_SCHEMES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(PRUNING_SCHEMES))
        raise KeyError(f"unknown pruning scheme '{name}'; expected one of: {known}") from None
