"""Meta-blocking substrate: blocking graph, weighting and pruning schemes."""

from repro.metablocking.graph import BlockingGraph, build_blocking_graph
from repro.metablocking.iwnp import iwnp, iwnp_counts, iwnp_select
from repro.metablocking.pruning_schemes import (
    PRUNING_SCHEMES,
    cep,
    cnp,
    get_pruning_scheme,
    rcnp,
    rwnp,
    wep,
    wnp,
)
from repro.metablocking.weights import (
    WEIGHTING_SCHEMES,
    arcs_weights,
    cbs_weights,
    ecbs_weights,
    ejs_weights,
    get_weighting_scheme,
    js_weights,
)

__all__ = [
    "BlockingGraph",
    "build_blocking_graph",
    "cbs_weights",
    "ecbs_weights",
    "js_weights",
    "arcs_weights",
    "ejs_weights",
    "WEIGHTING_SCHEMES",
    "get_weighting_scheme",
    "wep",
    "wnp",
    "rwnp",
    "cep",
    "cnp",
    "rcnp",
    "PRUNING_SCHEMES",
    "get_pruning_scheme",
    "iwnp",
    "iwnp_counts",
    "iwnp_select",
]
