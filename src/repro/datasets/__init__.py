"""Dataset substrate: synthetic generators and the Table II catalog."""

from repro.datasets.catalog import (
    DATASET_NAMES,
    DEFAULT_SCALES,
    TABLE_II,
    characteristics,
    load,
    spec,
)
from repro.datasets.generators import DatasetSpec, GeneratedDataset, generate
from repro.datasets.groundtruth import (
    load_ground_truth,
    oracle_for,
    save_ground_truth,
)

__all__ = [
    "DatasetSpec",
    "GeneratedDataset",
    "generate",
    "load",
    "spec",
    "characteristics",
    "TABLE_II",
    "DEFAULT_SCALES",
    "DATASET_NAMES",
    "save_ground_truth",
    "load_ground_truth",
    "oracle_for",
]
