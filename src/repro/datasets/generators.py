"""Synthetic dataset generation mirroring the paper's evaluation data.

The paper evaluates on cora, cddb, amazon-google (dirty ER) and movies,
dbpedia (clean-clean ER) — none of which can be fetched here.  This module
generates datasets with the *same characteristics* (Table II): entity
counts, ground-truth match counts, average number of name-value pairs per
profile, and schema heterogeneity.  The generative process is built so the
phenomena that the paper's techniques exploit are present:

* every duplicate cluster carries a set of rare, discriminative "core"
  tokens → matching pairs co-occur in several small blocks (high CBS
  counts, surviving I-WNP);
* all entities additionally draw common tokens from a Zipf head → a few
  huge, overly general blocks exist (the targets of purging / pruning /
  ghosting);
* duplicates are perturbed copies: token drops, typos, US/GB spelling
  flips and synonym swaps (undone by the standardizer, so data reading
  matters), attribute renames and drops (schema heterogeneity).

Generation is fully deterministic given the spec's seed.
"""

from __future__ import annotations

import bisect
import math
import random
import string
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.datasets.perturbations import PerturbationProfile, perturb_record
from repro.errors import DatasetError
from repro.types import EntityDescription, EntityId, pair_key

_BASE_SCHEMA = (
    "title", "name", "description", "author", "year", "material",
    "category", "manufacturer", "price", "location",
)


@dataclass(frozen=True)
class DatasetSpec:
    """Declarative description of a synthetic ER dataset.

    Parameters
    ----------
    name:
        Human-readable dataset name.
    kind:
        ``"dirty"`` (single source, duplicates within) or ``"clean-clean"``
        (two sources, matches only across).
    size:
        Number of entity descriptions; an int for dirty ER, a (left, right)
        pair for clean-clean ER.
    matches:
        Target number of ground-truth matching pairs.
    avg_attributes:
        Average number of name-value pairs per profile (Table II column).
    heterogeneity:
        0.0 = fixed relational-ish schema; 1.0 = highly heterogeneous
        attribute names, as in the web-scale clean-clean datasets.
    vocab_common / vocab_rare:
        Sizes of the common (Zipfian head) and rare (discriminative) token
        pools.
    zipf_s:
        Zipf exponent of the common pool (larger = more skew = bigger
        oversized blocks).
    common_tokens_per_entity:
        How many common-pool tokens each entity mixes in.
    topic_groups / topic_tokens_per_entity:
        Entities belong to topical groups (genres, product categories, …)
        sharing a mid-frequency vocabulary; each entity samples a few of
        its group's tokens.  This produces the moderate-size blocks in
        which non-matching entities co-occur a *few* times — the
        superfluous comparisons that comparison cleaning exists to prune.
    seed:
        RNG seed; everything downstream is deterministic in it.
    """

    name: str
    kind: str = "dirty"
    size: int | tuple[int, int] = 1000
    matches: int = 500
    avg_attributes: float = 5.0
    heterogeneity: float = 0.2
    vocab_common: int = 200
    vocab_rare: int = 50_000
    zipf_s: float = 1.1
    common_tokens_per_entity: int = 4
    topic_groups: int = 40
    topic_tokens_per_entity: int = 3
    perturbations: PerturbationProfile = field(default_factory=PerturbationProfile)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.kind not in ("dirty", "clean-clean"):
            raise DatasetError(f"unknown dataset kind {self.kind!r}")
        if self.kind == "clean-clean" and not isinstance(self.size, tuple):
            raise DatasetError("clean-clean datasets need a (left, right) size pair")
        if self.kind == "dirty" and isinstance(self.size, tuple):
            raise DatasetError("dirty datasets take a single int size")

    @property
    def total_size(self) -> int:
        if isinstance(self.size, tuple):
            return self.size[0] + self.size[1]
        return self.size

    def scaled(self, scale: float) -> "DatasetSpec":
        """A proportionally smaller/larger copy of this spec."""
        if scale <= 0:
            raise DatasetError("scale must be positive")
        if isinstance(self.size, tuple):
            size: int | tuple[int, int] = (
                max(2, round(self.size[0] * scale)),
                max(2, round(self.size[1] * scale)),
            )
        else:
            size = max(2, round(self.size * scale))
        return DatasetSpec(
            name=self.name,
            kind=self.kind,
            size=size,
            matches=max(1, round(self.matches * scale)),
            avg_attributes=self.avg_attributes,
            heterogeneity=self.heterogeneity,
            vocab_common=self.vocab_common,
            vocab_rare=max(1000, round(self.vocab_rare * scale)),
            zipf_s=self.zipf_s,
            common_tokens_per_entity=self.common_tokens_per_entity,
            topic_groups=max(2, round(self.topic_groups * min(1.0, scale * 4))),
            topic_tokens_per_entity=self.topic_tokens_per_entity,
            perturbations=self.perturbations,
            seed=self.seed,
        )


@dataclass
class GeneratedDataset:
    """A generated dataset: the entity stream plus its ground truth.

    ``entities`` arrive in a randomized stream order; for clean-clean data
    identifiers are ``(source, local_id)`` tuples and the two sources are
    interleaved.  ``ground_truth`` holds canonical pair keys over the final
    identifiers, ready for pair-completeness computation or an oracle
    classifier.
    """

    spec: DatasetSpec
    entities: list[EntityDescription]
    ground_truth: set[tuple[EntityId, EntityId]]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def clean_clean(self) -> bool:
        return self.spec.kind == "clean-clean"

    def __len__(self) -> int:
        return len(self.entities)

    def stream(self) -> Iterator[EntityDescription]:
        """The entities as a (re-iterable) stream."""
        return iter(self.entities)

    def increments(self, count: int) -> list[list[EntityDescription]]:
        """Split the stream into ``count`` equally sized increments."""
        if count <= 0:
            raise DatasetError("increment count must be positive")
        size = math.ceil(len(self.entities) / count)
        return [self.entities[i : i + size] for i in range(0, len(self.entities), size)]

    def average_attributes(self) -> float:
        """Measured average name-value pairs per profile (Table II check)."""
        if not self.entities:
            return 0.0
        return sum(len(e.attributes) for e in self.entities) / len(self.entities)


class _Vocabulary:
    """Deterministic token pools with Zipfian sampling for the common pool."""

    def __init__(self, spec: DatasetSpec, rng: random.Random) -> None:
        self._rng = rng
        self.common = [self._word(rng, 4, 7) for _ in range(spec.vocab_common)]
        self.rare = [self._word(rng, 5, 10) for _ in range(spec.vocab_rare)]
        weights = [1.0 / (rank**spec.zipf_s) for rank in range(1, len(self.common) + 1)]
        self._cumulative: list[float] = []
        total = 0.0
        for w in weights:
            total += w
            self._cumulative.append(total)

    @staticmethod
    def _word(rng: random.Random, lo: int, hi: int) -> str:
        length = rng.randint(lo, hi)
        return "".join(rng.choice(string.ascii_lowercase) for _ in range(length))

    def common_token(self) -> str:
        """Sample a common token ∝ 1/rank^s."""
        point = self._rng.random() * self._cumulative[-1]
        index = bisect.bisect_left(self._cumulative, point)
        return self.common[min(index, len(self.common) - 1)]

    def rare_tokens(self, count: int) -> list[str]:
        return [self._rng.choice(self.rare) for _ in range(count)]


@dataclass
class _Cluster:
    """One real-world entity: its core tokens and the member descriptions."""

    core_tokens: list[str]
    members: list[EntityId] = field(default_factory=list)


def _cluster_sizes_dirty(n: int, matches: int, rng: random.Random) -> list[int]:
    """Cluster sizes summing to ``n`` with Σ C(size, 2) ≈ ``matches``.

    The average cluster size solving the constraint in expectation is
    ``c = 1 + 2·matches/n``; sizes are drawn around it, then singletons or
    small clusters patch the residuals.
    """
    sizes: list[int] = []
    remaining_entities = n
    remaining_pairs = matches
    target = 1.0 + 2.0 * matches / max(n, 1)
    while remaining_entities > 0:
        if remaining_pairs <= 0:
            sizes.append(1)
            remaining_entities -= 1
            continue
        spread = max(1.0, target / 3.0)
        size = max(1, round(rng.gauss(target, spread)))
        size = min(size, remaining_entities)
        pairs = size * (size - 1) // 2
        if pairs > remaining_pairs:
            # Largest size whose pair count still fits the budget.
            size = int((1 + math.isqrt(1 + 8 * remaining_pairs)) // 2)
            size = max(1, min(size, remaining_entities))
            pairs = size * (size - 1) // 2
        sizes.append(size)
        remaining_entities -= size
        remaining_pairs -= pairs
    return sizes


def _cluster_shapes_clean(
    left: int, right: int, matches: int, rng: random.Random
) -> list[tuple[int, int]]:
    """(left members, right members) per cluster for clean-clean data.

    Mostly 1-1 clusters (each contributing one cross-source pair); a few
    1-2 clusters absorb any surplus pair budget; remaining entities become
    single-source singletons (no pairs).
    """
    shapes: list[tuple[int, int]] = []
    l_remaining, r_remaining, p_remaining = left, right, matches
    while p_remaining > 0 and l_remaining > 0 and r_remaining > 0:
        if p_remaining >= 2 and r_remaining >= 2 and rng.random() < 0.1:
            shape = (1, 2)
        else:
            shape = (1, 1)
        pairs = shape[0] * shape[1]
        if pairs > p_remaining or shape[0] > l_remaining or shape[1] > r_remaining:
            shape, pairs = (1, 1), 1
        shapes.append(shape)
        l_remaining -= shape[0]
        r_remaining -= shape[1]
        p_remaining -= pairs
    shapes.extend((1, 0) for _ in range(l_remaining))
    shapes.extend((0, 1) for _ in range(r_remaining))
    return shapes


def _attribute_names(spec: DatasetSpec, rng: random.Random, count: int) -> list[str]:
    """Attribute names for one entity, heterogeneity-dependent."""
    names: list[str] = []
    for index in range(count):
        if rng.random() < spec.heterogeneity:
            # Invented, possibly nested names — the data-lake case.
            base = rng.choice(_BASE_SCHEMA)
            suffix = rng.randint(0, 30)
            if rng.random() < 0.3:
                names.append(f"{base}.{suffix}")
            else:
                names.append(f"{base}_{suffix}")
        else:
            names.append(_BASE_SCHEMA[index % len(_BASE_SCHEMA)])
    return names


def _base_record(
    spec: DatasetSpec,
    vocab: _Vocabulary,
    core_tokens: Sequence[str],
    topic_tokens: Sequence[str],
    rng: random.Random,
) -> list[tuple[str, str]]:
    """The canonical attribute list of a cluster, before perturbation."""
    n_attrs = max(1, round(rng.gauss(spec.avg_attributes, spec.avg_attributes / 4)))
    names = _attribute_names(spec, rng, n_attrs)
    # Distribute core tokens over the attributes, then sprinkle the topical
    # and common ones.
    token_slots: list[list[str]] = [[] for _ in range(n_attrs)]
    for token in core_tokens:
        token_slots[rng.randrange(n_attrs)].append(token)
    for _ in range(spec.topic_tokens_per_entity):
        if topic_tokens:
            token_slots[rng.randrange(n_attrs)].append(rng.choice(topic_tokens))
    for _ in range(spec.common_tokens_per_entity):
        token_slots[rng.randrange(n_attrs)].append(vocab.common_token())
    record = []
    for name, tokens in zip(names, token_slots):
        if not tokens:
            tokens = [vocab.common_token()]
        record.append((name, " ".join(tokens)))
    return record


def _perturb_record(
    record: list[tuple[str, str]],
    spec: DatasetSpec,
    rng: random.Random,
) -> list[tuple[str, str]]:
    """A duplicate's attribute list, via the spec's perturbation profile."""
    return perturb_record(record, spec.perturbations, spec.heterogeneity, rng)


def generate(spec: DatasetSpec) -> GeneratedDataset:
    """Generate a dataset according to ``spec`` (deterministic in its seed)."""
    rng = random.Random(spec.seed)
    vocab = _Vocabulary(spec, rng)
    entities: list[EntityDescription] = []
    truth: set[tuple[EntityId, EntityId]] = set()

    core_count = lambda: rng.randint(3, 7)  # noqa: E731 - tiny local sampler
    # Topical vocabularies: one mid-frequency token pool per group.
    topics = [
        [vocab._word(rng, 5, 9) for _ in range(8)] for _ in range(spec.topic_groups)
    ]
    pick_topic = lambda: topics[rng.randrange(len(topics))]  # noqa: E731

    if spec.kind == "dirty":
        assert isinstance(spec.size, int)
        sizes = _cluster_sizes_dirty(spec.size, spec.matches, rng)
        eid = 0
        for size in sizes:
            core = vocab.rare_tokens(core_count())
            record = _base_record(spec, vocab, core, pick_topic(), rng)
            member_ids: list[EntityId] = []
            for m in range(size):
                attrs = record if m == 0 else _perturb_record(record, spec, rng)
                entities.append(
                    EntityDescription(eid=eid, attributes=tuple(attrs), source=None)
                )
                member_ids.append(eid)
                eid += 1
            for a in range(len(member_ids)):
                for b in range(a + 1, len(member_ids)):
                    truth.add(pair_key(member_ids[a], member_ids[b]))
    else:
        assert isinstance(spec.size, tuple)
        left_n, right_n = spec.size
        shapes = _cluster_shapes_clean(left_n, right_n, spec.matches, rng)
        next_local = {"x": 0, "y": 0}
        for left_count, right_count in shapes:
            core = vocab.rare_tokens(core_count())
            record = _base_record(spec, vocab, core, pick_topic(), rng)
            member_ids_by_source: dict[str, list[EntityId]] = {"x": [], "y": []}
            first = True
            for source, count in (("x", left_count), ("y", right_count)):
                for _ in range(count):
                    attrs = record if first else _perturb_record(record, spec, rng)
                    first = False
                    eid = (source, next_local[source])
                    next_local[source] += 1
                    entities.append(
                        EntityDescription(eid=eid, attributes=tuple(attrs), source=source)
                    )
                    member_ids_by_source[source].append(eid)
            for i in member_ids_by_source["x"]:
                for j in member_ids_by_source["y"]:
                    truth.add(pair_key(i, j))

    rng.shuffle(entities)
    return GeneratedDataset(spec=spec, entities=entities, ground_truth=truth)
