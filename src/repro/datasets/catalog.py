"""The dataset catalog: Table II of the paper, as generator specs.

Each spec mirrors one evaluation dataset's published characteristics
(entity counts, ground-truth match pairs, average name-value pairs per
profile, dirty vs clean-clean, schema heterogeneity).  ``load`` applies a
scale factor so the big datasets fit a single box: the structure (cluster
shapes, token distributions, heterogeneity) is scale-invariant.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.generators import DatasetSpec, GeneratedDataset, generate
from repro.errors import DatasetError

#: Table II, verbatim characteristics.
TABLE_II: dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="cora",
        kind="dirty",
        size=1_290,
        matches=17_100,
        avg_attributes=5.5,
        heterogeneity=0.05,
        vocab_common=150,
        seed=101,
    ),
    "cddb": DatasetSpec(
        name="cddb",
        kind="dirty",
        size=9_760,
        matches=299,
        avg_attributes=17.8,
        heterogeneity=0.05,
        vocab_common=250,
        seed=102,
    ),
    "ag": DatasetSpec(
        name="ag",
        kind="dirty",
        size=4_390,
        matches=1_100,
        avg_attributes=3.3,
        heterogeneity=0.15,
        vocab_common=200,
        seed=103,
    ),
    "movies": DatasetSpec(
        name="movies",
        kind="clean-clean",
        size=(27_600, 23_100),
        matches=22_800,
        avg_attributes=5.6,
        heterogeneity=0.5,
        vocab_common=300,
        seed=104,
    ),
    "dbpedia": DatasetSpec(
        name="dbpedia",
        kind="clean-clean",
        size=(1_190_000, 2_160_000),
        matches=892_000,
        avg_attributes=14.2,
        heterogeneity=0.7,
        vocab_common=400,
        seed=105,
    ),
}

#: Default scales keeping every dataset tractable on one machine while
#: preserving the *relative* size ordering of the paper (dbpedia-like stays
#: by far the largest).
DEFAULT_SCALES: dict[str, float] = {
    "cora": 1.0,
    "cddb": 0.5,
    "ag": 0.5,
    "movies": 0.08,
    "dbpedia": 0.008,
}

DATASET_NAMES: tuple[str, ...] = tuple(TABLE_II)


def spec(name: str, scale: float | None = None) -> DatasetSpec:
    """The (optionally scaled) spec for a catalog dataset."""
    try:
        base = TABLE_II[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise DatasetError(f"unknown dataset '{name}'; catalog has: {known}") from None
    if scale is None:
        scale = DEFAULT_SCALES[name]
    return base.scaled(scale) if scale != 1.0 else base


@lru_cache(maxsize=16)
def _load_cached(name: str, scale: float | None) -> GeneratedDataset:
    return generate(spec(name, scale))


def load(name: str, scale: float | None = None) -> GeneratedDataset:
    """Generate (and memoize) a catalog dataset at the given scale."""
    return _load_cached(name, scale)


def characteristics(dataset: GeneratedDataset) -> dict[str, object]:
    """Table II row for a generated dataset (measured, not nominal)."""
    return {
        "name": dataset.name,
        "type": dataset.spec.kind + " ER",
        "entities": len(dataset.entities),
        "matches": len(dataset.ground_truth),
        "avg_name_value_pairs": round(dataset.average_attributes(), 1),
    }
