"""Ground-truth utilities: persistence and oracle construction."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.classification.classifiers import OracleClassifier
from repro.types import EntityId, pair_key


def save_ground_truth(
    pairs: Iterable[tuple[EntityId, EntityId]], path: str | Path
) -> None:
    """Write ground-truth pairs as JSON lines (ids must be JSON-encodable)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for i, j in pairs:
            handle.write(json.dumps([_encode(i), _encode(j)]) + "\n")


def load_ground_truth(path: str | Path) -> set[tuple[EntityId, EntityId]]:
    """Read ground-truth pairs written by :func:`save_ground_truth`."""
    path = Path(path)
    pairs: set[tuple[EntityId, EntityId]] = set()
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            i, j = json.loads(line)
            pairs.add(pair_key(_decode(i), _decode(j)))
    return pairs


def oracle_for(pairs: Iterable[tuple[EntityId, EntityId]]) -> OracleClassifier:
    """Perfect classifier over a ground-truth pair set."""
    return OracleClassifier.from_pairs(pairs)


def _encode(eid: EntityId) -> object:
    if isinstance(eid, tuple):
        return {"source": eid[0], "id": _encode(eid[1])}
    return eid


def _decode(value: object) -> EntityId:
    if isinstance(value, dict):
        return (value["source"], _decode(value["id"]))
    return value  # type: ignore[return-value]
