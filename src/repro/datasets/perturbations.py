"""Pluggable perturbation model for duplicate generation.

The generator derives duplicates from a cluster's base record by applying
perturbations; this module makes each perturbation an explicit, named,
individually-rated operation so experiments can control the corruption
mix (e.g. sweep the typo rate, or disable the spelling/synonym variation
that standardization exists to undo).

``PerturbationProfile`` holds the per-operation rates; the default profile
reproduces the rates baked into early versions of the generator.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.errors import DatasetError
from repro.reading.standardize import DEFAULT_SPELLING, DEFAULT_SYNONYMS

_SPELLING_VARIANTS = {v: k for k, v in DEFAULT_SPELLING.items()}
_SYNONYM_VARIANTS: dict[str, list[str]] = {}
for _specific, _general in DEFAULT_SYNONYMS.items():
    _SYNONYM_VARIANTS.setdefault(_general, []).append(_specific)


@dataclass(frozen=True)
class PerturbationProfile:
    """Per-operation perturbation rates, all in [0, 1].

    token_drop:
        Probability of deleting a token from a value.
    typo:
        Probability of a single-character substitution in a token.
    spelling_variant:
        Probability of replacing a token with its US/GB spelling variant
        (when one exists) — undone by the standardizer.
    synonym_variant:
        Probability of replacing a token with a more specific synonym
        (wood → timber) — undone by the standardizer.
    attribute_drop:
        Probability of omitting an attribute entirely.
    attribute_rename:
        Probability of renaming an attribute (schema heterogeneity),
        scaled further by the dataset's heterogeneity parameter.
    """

    token_drop: float = 0.04
    typo: float = 0.04
    spelling_variant: float = 0.5
    synonym_variant: float = 0.5
    attribute_drop: float = 0.064
    attribute_rename: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "token_drop", "typo", "spelling_variant",
            "synonym_variant", "attribute_drop", "attribute_rename",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {value}")

    def scaled(self, factor: float) -> "PerturbationProfile":
        """All corruption rates multiplied by ``factor`` (clamped to 1)."""
        if factor < 0:
            raise DatasetError("factor must be non-negative")
        clamp = lambda v: min(1.0, v * factor)  # noqa: E731
        return PerturbationProfile(
            token_drop=clamp(self.token_drop),
            typo=clamp(self.typo),
            spelling_variant=self.spelling_variant,
            synonym_variant=self.synonym_variant,
            attribute_drop=clamp(self.attribute_drop),
            attribute_rename=self.attribute_rename,
        )

    @classmethod
    def none(cls) -> "PerturbationProfile":
        """Exact duplicates: no corruption at all."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def perturb_token(token: str, profile: PerturbationProfile, rng: random.Random) -> str | None:
    """Apply the token-level operations; None means the token is dropped."""
    roll = rng.random()
    if roll < profile.token_drop:
        return None
    if roll < profile.token_drop + profile.typo and len(token) >= 3:
        pos = rng.randrange(len(token))
        return token[:pos] + rng.choice(string.ascii_lowercase) + token[pos + 1 :]
    if token in _SPELLING_VARIANTS and rng.random() < profile.spelling_variant:
        return _SPELLING_VARIANTS[token]
    variants = _SYNONYM_VARIANTS.get(token)
    if variants and rng.random() < profile.synonym_variant:
        return rng.choice(variants)
    return token


def perturb_value(value: str, profile: PerturbationProfile, rng: random.Random) -> str:
    """Perturb one attribute value token by token (never fully empties it)."""
    tokens = value.split()
    out = [
        t for t in (perturb_token(tok, profile, rng) for tok in tokens) if t is not None
    ]
    if not out:
        out = tokens[:1]
    return " ".join(out)


def perturb_record(
    record: list[tuple[str, str]],
    profile: PerturbationProfile,
    heterogeneity: float,
    rng: random.Random,
) -> list[tuple[str, str]]:
    """Derive one duplicate description from a base record."""
    out: list[tuple[str, str]] = []
    for name, value in record:
        if len(record) > 1 and rng.random() < profile.attribute_drop:
            continue
        if rng.random() < heterogeneity * profile.attribute_rename:
            name = f"{name}_alt" if not name.endswith("_alt") else name[:-4]
        out.append((name, perturb_value(value, profile, rng)))
    if not out:
        out = [record[0]]
    return out
