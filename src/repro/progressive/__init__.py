"""Progressive ER: best-first comparison scheduling under a budget."""

from repro.progressive.scheduler import (
    ProgressiveConfig,
    ProgressiveResolver,
    ProgressiveStep,
    recall_curve,
)

__all__ = [
    "ProgressiveConfig",
    "ProgressiveResolver",
    "ProgressiveStep",
    "recall_curve",
]
