"""Progressive ER: emit likely matches first under a comparison budget.

The paper cites schema-agnostic *progressive* ER (Simonini et al., TKDE
2018) as adjacent work: when there is not enough time to execute every
retained comparison, order them so that matches surface as early as
possible.  This module implements two standard schedulers over the
meta-blocking signal:

* **global** — all candidate pairs sorted by descending edge weight
  (Progressive Global Top-Comparisons);
* **round-robin** — each entity keeps its own best-first queue and
  entities take turns emitting their next-best comparison (Progressive
  Profile-based), which avoids starving entities with modest weights.

Both consume the same blocking-graph statistics the batch baseline builds,
so progressive resolution composes with any block-cleaning configuration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.blocking import Blocks
from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.errors import ConfigurationError
from repro.metablocking import build_blocking_graph, get_weighting_scheme
from repro.types import Comparison, EntityId, Match, Profile

Pair = tuple[EntityId, EntityId]


@dataclass(frozen=True)
class ProgressiveConfig:
    """Scheduler choice, weighting scheme, and the usual substrates."""

    scheduler: str = "global"
    weighting: str = "CBS"
    clean_clean: bool = False
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)

    def __post_init__(self) -> None:
        if self.scheduler not in ("global", "round-robin"):
            raise ConfigurationError(
                f"unknown scheduler '{self.scheduler}' (global | round-robin)"
            )


def _global_order(weights: dict[Pair, float]) -> Iterator[Pair]:
    """Pairs by descending weight (stable tie-break on the pair)."""
    yield from sorted(weights, key=lambda p: (-weights[p], repr(p)))


def _round_robin_order(weights: dict[Pair, float]) -> Iterator[Pair]:
    """Per-entity best-first queues, drained one comparison per turn."""
    queues: dict[EntityId, list[tuple[float, str, Pair]]] = {}
    for pair, weight in weights.items():
        entry = (-weight, repr(pair), pair)
        heapq.heappush(queues.setdefault(pair[0], []), entry)
        heapq.heappush(queues.setdefault(pair[1], []), entry)
    emitted: set[Pair] = set()
    order = sorted(queues, key=repr)
    while order:
        still_live = []
        for eid in order:
            queue = queues[eid]
            while queue:
                _, _, pair = heapq.heappop(queue)
                if pair not in emitted:
                    emitted.add(pair)
                    yield pair
                    break
            if queue:
                still_live.append(eid)
        order = still_live


@dataclass
class ProgressiveStep:
    """One executed comparison in progressive order."""

    pair: Pair
    weight: float
    similarity: float
    match: Match | None


class ProgressiveResolver:
    """Schedule and execute comparisons best-first over cleaned blocks."""

    def __init__(self, config: ProgressiveConfig | None = None) -> None:
        self.config = config or ProgressiveConfig()

    def schedule(self, blocks: Blocks) -> list[tuple[Pair, float]]:
        """The full comparison order with weights (no comparisons executed)."""
        graph = build_blocking_graph(blocks, clean_clean=self.config.clean_clean)
        weights = get_weighting_scheme(self.config.weighting)(graph)
        if self.config.scheduler == "global":
            ordered = _global_order(weights)
        else:
            ordered = _round_robin_order(weights)
        return [(pair, weights[pair]) for pair in ordered]

    def resolve(
        self,
        blocks: Blocks,
        profiles: dict[EntityId, Profile],
        budget: int | None = None,
    ) -> Iterator[ProgressiveStep]:
        """Lazily execute comparisons in progressive order.

        ``budget`` caps the number of executed comparisons (None = all).
        """
        if budget is not None and budget < 0:
            raise ConfigurationError("budget cannot be negative")
        executed = 0
        for pair, weight in self.schedule(blocks):
            if budget is not None and executed >= budget:
                return
            executed += 1
            left, right = profiles[pair[0]], profiles[pair[1]]
            scored = self.config.comparator.compare(Comparison(left=left, right=right))
            match = self.config.classifier.classify(scored)
            yield ProgressiveStep(
                pair=pair, weight=weight, similarity=scored.similarity, match=match
            )


def recall_curve(
    steps: Sequence[ProgressiveStep],
    truth: set[Pair],
    points: int = 10,
) -> list[tuple[int, float]]:
    """Recall after every 1/``points`` fraction of the executed comparisons.

    The quality signature of progressive ER: a good scheduler front-loads
    the matches, so the curve rises steeply and then flattens.
    """
    if not steps:
        return []
    total_truth = max(len(truth), 1)
    curve = []
    found = 0
    checkpoints = {
        max(1, round(len(steps) * k / points)) for k in range(1, points + 1)
    }
    seen: set[Pair] = set()
    for index, step in enumerate(steps, start=1):
        if step.match is not None:
            key = step.match.key()
            if key not in seen:
                seen.add(key)
                if key in truth:
                    found += 1
        if index in checkpoints:
            curve.append((index, found / total_truth))
    return curve
