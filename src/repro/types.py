"""Core value types shared across the whole framework.

The framework identifies every entity description by a hashable *entity
identifier*.  For dirty ER this is typically an ``int`` or ``str``.  For
clean-clean ER, identifiers are ``(source, local_id)`` tuples produced by
:func:`repro.core.cleanclean.combine`, so that a single identifier carries
both the dataset of origin and the local key, exactly as the paper's
``<i, x>`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

EntityId = Hashable
AttributePairs = tuple[tuple[str, str], ...]


def _freeze_attributes(
    attributes: Iterable[tuple[str, str]] | Mapping[str, str],
) -> AttributePairs:
    """Normalize attribute input into an ordered tuple of (name, value) pairs."""
    if isinstance(attributes, Mapping):
        return tuple((str(k), str(v)) for k, v in attributes.items())
    return tuple((str(k), str(v)) for k, v in attributes)


@dataclass(frozen=True, slots=True)
class EntityDescription:
    """A raw, possibly heterogeneous description of a real-world entity.

    Attributes are an ordered sequence of (name, value) pairs; names are not
    required to come from any fixed schema and may repeat (heterogeneous,
    semi-structured data as in the paper's data-lake example).
    """

    eid: EntityId
    attributes: AttributePairs
    source: str | None = None

    @classmethod
    def create(
        cls,
        eid: EntityId,
        attributes: Iterable[tuple[str, str]] | Mapping[str, str],
        source: str | None = None,
    ) -> "EntityDescription":
        """Build a description, accepting either a mapping or pair iterable."""
        return cls(eid=eid, attributes=_freeze_attributes(attributes), source=source)

    def values(self) -> tuple[str, ...]:
        """All attribute values, in attribute order."""
        return tuple(v for _, v in self.attributes)


@dataclass(frozen=True, slots=True)
class Profile:
    """The standardized representation ``p_i`` of an entity description.

    Produced by the data-reading stage: attribute values have been
    standardized and the set of blocking keys ``K_i`` (tokens) extracted.

    ``token_ids`` is the interned view of ``tokens``: when the profile was
    built against a :class:`~repro.reading.interning.TokenDictionary`, it
    holds the dense integer ids of exactly the tokens in ``tokens``, and the
    comparison kernel scores pairs on these compact int sets instead of the
    string sets.  ``None`` means the profile was built without interning
    (the string path); scoring falls back to ``tokens``.
    """

    eid: EntityId
    attributes: AttributePairs
    tokens: frozenset[str]
    source: str | None = None
    token_ids: frozenset[int] | None = None

    @property
    def keys(self) -> frozenset[str]:
        """The blocking keys ``K_i`` of this profile (alias for ``tokens``)."""
        return self.tokens

    @property
    def interned(self) -> bool:
        """Whether this profile carries the interned integer token view."""
        return self.token_ids is not None


def pair_key(i: EntityId, j: EntityId) -> tuple[EntityId, EntityId]:
    """Order-insensitive canonical key for an entity pair.

    Uses a total order over ``repr`` when the ids are not mutually orderable
    (e.g. mixing ints and tuples), so the result is deterministic.
    """
    try:
        return (i, j) if i <= j else (j, i)  # type: ignore[operator]
    except TypeError:
        return (i, j) if repr(i) <= repr(j) else (j, i)


@dataclass(frozen=True, slots=True)
class Comparison:
    """A pairwise comparison ``c_ij`` between two profiles."""

    left: Profile
    right: Profile

    @property
    def ids(self) -> tuple[EntityId, EntityId]:
        return (self.left.eid, self.right.eid)

    def key(self) -> tuple[EntityId, EntityId]:
        """Canonical (order-insensitive) pair key of this comparison."""
        return pair_key(self.left.eid, self.right.eid)


@dataclass(frozen=True, slots=True)
class ScoredComparison:
    """A comparison together with its similarity score ``sim_ij``."""

    comparison: Comparison
    similarity: float


@dataclass(frozen=True, slots=True)
class Match:
    """A pair of entity identifiers classified as referring to one entity."""

    left: EntityId
    right: EntityId
    similarity: float = 1.0

    def key(self) -> tuple[EntityId, EntityId]:
        return pair_key(self.left, self.right)


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """An item that exhausted supervision and was routed out of the pipeline.

    ``entity_id`` is the identifier extracted from the failing payload (or
    ``None`` when no identifier could be derived); ``error`` is the ``repr``
    of the last exception — a string, so dead letters stay picklable across
    process boundaries.  ``attempts`` counts every execution attempt,
    including retries.
    """

    stage: str
    entity_id: EntityId | None
    error: str
    attempts: int = 1


@dataclass(slots=True)
class StageTimings:
    """Accumulated wall-clock seconds spent in each pipeline stage."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    def total(self) -> float:
        return sum(self.seconds.values())

    def share(self) -> dict[str, float]:
        """Fraction of total time per stage (empty dict if nothing timed)."""
        total = self.total()
        if total <= 0.0:
            return {}
        return {stage: t / total for stage, t in self.seconds.items()}
