"""Self-tuning block ghosting: an online controller for β.

The paper sets β statically and notes that "changing it dynamically is an
interesting avenue for future research" (§IV-A).  This module implements
that avenue: a feedback controller that observes the comparison workload
each entity actually generates and nudges β so the pipeline tracks a
target comparisons-per-entity budget.

β semantics (Algorithm 2): a key is ghosted when ``|b_k| > |b_min|/β``, so
*larger* β ghosts more aggressively and produces fewer comparisons.  The
controller therefore raises β when the observed workload exceeds the
budget and lowers it when there is headroom (multiplicative increase /
decrease, clamped to a configurable band).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import StreamERConfig
from repro.core.pipeline import StreamERPipeline
from repro.errors import ConfigurationError
from repro.types import EntityDescription, Match


@dataclass
class BetaController:
    """Multiplicative-increase/decrease controller for the ghosting ratio.

    Parameters
    ----------
    target_comparisons:
        Desired (smoothed) number of generated comparisons per entity.
    rate:
        Multiplicative adjustment step per control interval (e.g. 1.1).
    smoothing:
        EWMA factor applied to the observed comparisons (0 < smoothing ≤ 1;
        1 means "react to the raw last observation").
    min_beta / max_beta:
        Clamp band, kept inside Algorithm 2's valid (0, 1) range.
    interval:
        Apply an adjustment every ``interval`` observations.
    """

    target_comparisons: float
    rate: float = 1.15
    smoothing: float = 0.1
    min_beta: float = 0.005
    max_beta: float = 0.9
    interval: int = 25
    _ewma: float = field(default=0.0, init=False)
    _seen: int = field(default=0, init=False)
    adjustments: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.target_comparisons <= 0:
            raise ConfigurationError("target_comparisons must be positive")
        if self.rate <= 1.0:
            raise ConfigurationError("rate must be > 1")
        if not 0.0 < self.smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        if not 0.0 < self.min_beta < self.max_beta < 1.0:
            raise ConfigurationError("need 0 < min_beta < max_beta < 1")
        if self.interval < 1:
            raise ConfigurationError("interval must be >= 1")

    @property
    def observed(self) -> float:
        """The smoothed comparisons-per-entity estimate."""
        return self._ewma

    def update(self, beta: float, comparisons: int) -> float:
        """Fold one observation in; returns the (possibly adjusted) β."""
        self._ewma += self.smoothing * (comparisons - self._ewma)
        self._seen += 1
        if self._seen % self.interval:
            return beta
        if self._ewma > self.target_comparisons * 1.1:
            adjusted = min(self.max_beta, beta * self.rate)
        elif self._ewma < self.target_comparisons * 0.9:
            adjusted = max(self.min_beta, beta / self.rate)
        else:
            return beta
        if adjusted != beta:
            self.adjustments += 1
        return adjusted


class SelfTuningERPipeline:
    """A stream pipeline whose β is adjusted online by a controller.

    The controller observes ``f_cg``'s output size per entity (the workload
    β exists to bound) and rewrites the ghosting stage's β between
    entities, which is safe: β is read once per entity.
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        controller: BetaController | None = None,
        instrument: bool = False,
    ) -> None:
        self.pipeline = StreamERPipeline(config, instrument=instrument)
        self.controller = controller or BetaController(target_comparisons=50.0)
        self.beta_history: list[float] = []

    @property
    def beta(self) -> float:
        return self.pipeline.bg.beta

    def process(self, entity: EntityDescription) -> list[Match]:
        before = self.pipeline.cg.generated
        matches = self.pipeline.process(entity)
        generated = self.pipeline.cg.generated - before
        new_beta = self.controller.update(self.pipeline.bg.beta, generated)
        if new_beta != self.pipeline.bg.beta:
            self.pipeline.bg.beta = new_beta
            self.beta_history.append(new_beta)
        return matches

    def process_many(self, entities) -> list[Match]:
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out
