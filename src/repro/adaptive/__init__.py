"""Self-tuning extensions (the paper's stated future work, §VI):
online β control for block ghosting and dynamic process reallocation."""

from repro.adaptive.allocator import DynamicAllocator, Reallocation
from repro.adaptive.beta_controller import BetaController, SelfTuningERPipeline

__all__ = [
    "BetaController",
    "SelfTuningERPipeline",
    "DynamicAllocator",
    "Reallocation",
]
