"""Self-tuning process allocation: rebalance workers from live timings.

§IV-B solves the allocation once, from an offline profiling run.  A
self-tuning framework (the paper's stated future work) should instead
watch the *live* per-stage service times and move workers from overserved
to bottleneck stages.  This module provides that policy layer: it
consumes rolling stage-time measurements and emits reallocation decisions,
which the simulator (and, in principle, a worker pool manager) applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel.allocation import FIXED_STAGES, allocate_processes, bottleneck_time


@dataclass(frozen=True)
class Reallocation:
    """One recommended change of the worker assignment."""

    from_stage: str
    to_stage: str
    before: dict[str, int]
    after: dict[str, int]
    bottleneck_before: float
    bottleneck_after: float

    @property
    def improvement(self) -> float:
        """Relative bottleneck-time reduction (0 = none)."""
        if self.bottleneck_before <= 0:
            return 0.0
        return 1.0 - self.bottleneck_after / self.bottleneck_before


class DynamicAllocator:
    """Rolling-measurement reallocation policy.

    Feed it per-stage service-time observations (seconds of work per
    entity, or per batch — any consistent unit); every ``interval``
    observations it recomputes the optimal assignment for the same total
    process count and, when moving a single worker would reduce the
    bottleneck by at least ``min_improvement``, recommends that move.
    """

    def __init__(
        self,
        initial_allocation: dict[str, int],
        interval: int = 200,
        min_improvement: float = 0.05,
        smoothing: float = 0.2,
    ) -> None:
        missing = [s for s in STAGE_ORDER if s not in initial_allocation]
        if missing:
            raise ConfigurationError(f"allocation missing stages: {missing}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        self.allocation = dict(initial_allocation)
        self.interval = interval
        self.min_improvement = min_improvement
        self.smoothing = smoothing
        self._ewma: dict[str, float] = {s: 0.0 for s in STAGE_ORDER}
        self._observations = 0
        self.history: list[Reallocation] = []

    @property
    def stage_estimates(self) -> dict[str, float]:
        return dict(self._ewma)

    def observe(self, stage_seconds: dict[str, float]) -> Reallocation | None:
        """Fold one measurement in; returns a recommendation when due."""
        for stage, seconds in stage_seconds.items():
            if stage in self._ewma:
                self._ewma[stage] += self.smoothing * (seconds - self._ewma[stage])
        self._observations += 1
        if self._observations % self.interval:
            return None
        return self._rebalance()

    def _rebalance(self) -> Reallocation | None:
        if any(v <= 0 for v in self._ewma.values()):
            # Not enough signal on every stage yet.
            incomplete = {s: max(v, 1e-12) for s, v in self._ewma.items()}
            times = incomplete
        else:
            times = self._ewma
        total = sum(self.allocation.values())
        ideal = allocate_processes(times, total)
        if ideal == self.allocation:
            return None
        # Move one worker at a time: from the most overserved stage toward
        # the most underserved one (stable, oscillation-resistant).
        deltas = {s: ideal[s] - self.allocation[s] for s in STAGE_ORDER}
        to_stage = max(deltas, key=lambda s: deltas[s])
        movable = [
            s for s in STAGE_ORDER
            if deltas[s] < 0 and self.allocation[s] > 1 and s not in FIXED_STAGES
        ]
        if deltas[to_stage] <= 0 or not movable:
            return None
        from_stage = min(movable, key=lambda s: deltas[s])
        before = dict(self.allocation)
        after = dict(self.allocation)
        after[from_stage] -= 1
        after[to_stage] += 1
        change = Reallocation(
            from_stage=from_stage,
            to_stage=to_stage,
            before=before,
            after=after,
            bottleneck_before=bottleneck_time(times, before),
            bottleneck_after=bottleneck_time(times, after),
        )
        if change.improvement < self.min_improvement:
            return None
        self.allocation = after
        self.history.append(change)
        return change
