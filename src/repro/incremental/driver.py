"""The incremental-setting comparison harness of §V-B (Figure 10).

Splits a dataset into equally sized increments and processes them with the
four competing approaches:

* ``I-WNP`` — our stream pipeline (block cleaning + comparison cleaning);
* ``I-WNP (No BC)`` — our pipeline without block cleaning;
* ``Batch`` — the batch baseline recomputed per increment (previously
  executed comparisons skipped);
* ``PI-Block`` — the incremental meta-blocking baseline (no block
  cleaning by design).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.batch.pipeline import BatchERConfig, IncrementalBatchER
from repro.classification.classifiers import Classifier
from repro.core.config import StreamERConfig
from repro.core.pipeline import StreamERPipeline
from repro.core.plan import PipelinePlan
from repro.datasets.generators import GeneratedDataset
from repro.evaluation.metrics import pair_completeness
from repro.piblock.piblock import PIBlockConfig, PIBlockER
from repro.types import EntityDescription, EntityId

Pair = tuple[EntityId, EntityId]

APPROACHES: tuple[str, ...] = ("I-WNP", "I-WNP (No BC)", "Batch", "PI-Block")


@dataclass
class IncrementalRun:
    """Outcome of processing all increments with one approach."""

    approach: str
    n_increments: int
    total_seconds: float
    per_increment_seconds: list[float] = field(default_factory=list)
    pair_completeness: float = 0.0
    matches_found: int = 0


def _run_stream(
    approach: str,
    increments: Sequence[Sequence[EntityDescription]],
    dataset: GeneratedDataset,
    classifier: Classifier,
    alpha_fraction: float,
    beta: float,
) -> IncrementalRun:
    enable_bc = approach == "I-WNP"
    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), alpha_fraction),
        beta=beta,
        enable_block_cleaning=enable_bc,
        clean_clean=dataset.clean_clean,
        classifier=classifier,
    )
    # The plan drops the ``bg`` node entirely for the No-BC variant.
    plan = PipelinePlan.from_config(config)
    pipeline = StreamERPipeline(plan=plan, instrument=False)
    per_increment: list[float] = []
    for increment in increments:
        start = time.perf_counter()
        pipeline.process_many(increment)
        per_increment.append(time.perf_counter() - start)
    pairs = pipeline.cl.matches.pairs()
    return IncrementalRun(
        approach=approach,
        n_increments=len(increments),
        total_seconds=sum(per_increment),
        per_increment_seconds=per_increment,
        pair_completeness=pair_completeness(pairs, dataset.ground_truth),
        matches_found=len(pairs),
    )


def _run_batch(
    increments: Sequence[Sequence[EntityDescription]],
    dataset: GeneratedDataset,
    classifier: Classifier,
) -> IncrementalRun:
    config = BatchERConfig(
        r=0.005, s=0.5, weighting="CBS", pruning="WNP",
        clean_clean=dataset.clean_clean, classifier=classifier,
    )
    runner = IncrementalBatchER(config)
    per_increment: list[float] = []
    for increment in increments:
        start = time.perf_counter()
        runner.process_increment(increment)
        per_increment.append(time.perf_counter() - start)
    pairs = runner.match_pairs
    return IncrementalRun(
        approach="Batch",
        n_increments=len(increments),
        total_seconds=sum(per_increment),
        per_increment_seconds=per_increment,
        pair_completeness=pair_completeness(pairs, dataset.ground_truth),
        matches_found=len(pairs),
    )


def _run_piblock(
    increments: Sequence[Sequence[EntityDescription]],
    dataset: GeneratedDataset,
    classifier: Classifier,
) -> IncrementalRun:
    runner = PIBlockER(PIBlockConfig(clean_clean=dataset.clean_clean, classifier=classifier))
    per_increment: list[float] = []
    for increment in increments:
        start = time.perf_counter()
        runner.process_increment(increment)
        per_increment.append(time.perf_counter() - start)
    pairs = runner.match_pairs
    return IncrementalRun(
        approach="PI-Block",
        n_increments=len(increments),
        total_seconds=sum(per_increment),
        per_increment_seconds=per_increment,
        pair_completeness=pair_completeness(pairs, dataset.ground_truth),
        matches_found=len(pairs),
    )


def run_incremental_comparison(
    dataset: GeneratedDataset,
    n_increments: int,
    classifier: Classifier,
    approaches: Sequence[str] = APPROACHES,
    alpha_fraction: float = 0.05,
    beta: float = 0.05,
) -> list[IncrementalRun]:
    """Run the requested approaches over ``n_increments`` equal increments."""
    increments = dataset.increments(n_increments)
    runs: list[IncrementalRun] = []
    for approach in approaches:
        if approach in ("I-WNP", "I-WNP (No BC)"):
            runs.append(
                _run_stream(approach, increments, dataset, classifier, alpha_fraction, beta)
            )
        elif approach == "Batch":
            runs.append(_run_batch(increments, dataset, classifier))
        elif approach == "PI-Block":
            runs.append(_run_piblock(increments, dataset, classifier))
        else:
            raise ValueError(f"unknown approach {approach!r}")
    return runs
