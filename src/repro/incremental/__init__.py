"""Incremental-setting comparison harness (Figure 10)."""

from repro.incremental.driver import (
    APPROACHES,
    IncrementalRun,
    run_incremental_comparison,
)

__all__ = ["APPROACHES", "IncrementalRun", "run_incremental_comparison"]
