"""The runtime enforcement layer: compile invariants into any executor.

An :class:`InvariantChecker` is handed to an executor (or directly to
:meth:`~repro.core.plan.PipelinePlan.compile`); the compiled pipeline then
wraps every stage in a :class:`CheckedStage` — the exact mechanism
:class:`~repro.observability.instrument.InstrumentedStage` uses — so the
same checker works in the sequential pipeline, the thread framework, the
multiprocess executor and (for the run-level conservation checks) the
simulator, without any executor-specific shims.  ``checker=None`` (the
default everywhere) compiles nothing and costs nothing.

Two enforcement modes:

``"raise"``
    violations raise :class:`~repro.errors.InvariantViolation` at the point
    of detection — the debugging posture.  Executors whose stages run on
    worker threads (``concurrent=True``) defer the raise to
    :meth:`InvariantChecker.finalize`, because an exception inside a
    supervised worker would be swallowed into the dead-letter queue.
``"record"``
    violations accumulate on :attr:`InvariantChecker.violations` and
    nothing raises — the auditing posture ``repro-er check`` uses to
    report every violation of a run, not just the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, InvariantViolation
from repro.invariants.checks import (
    RunView,
    SimulationView,
    StageView,
    StateView,
    invariants_for,
)

__all__ = ["InvariantChecker", "CheckedStage", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One recorded violation: which invariant, where, what was observed."""

    invariant: str
    detail: str
    stage: str | None = None

    def __str__(self) -> str:
        where = f" [stage {self.stage}]" if self.stage else ""
        return f"{self.invariant}{where}: {self.detail}"


class InvariantChecker:
    """Evaluates the registered invariants against one pipeline run.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) or ``"record"``; see the module docstring.
    state_every:
        In the sequential executor, run the state-scope invariants every
        this many entities (they recount stores, so per-entity checking is
        quadratic).  Stage-scope invariants always run per message.
    concurrent:
        Set by executors whose stages run on worker threads: state checks
        are deferred to :meth:`finalize` (stores mutate under the reader
        otherwise) and raise-mode violations are raised there rather than
        inside a supervised worker.
    enabled:
        ``False`` turns the checker into a no-op without rewiring call
        sites (the compiled plan then leaves stages unwrapped).
    """

    def __init__(
        self,
        mode: str = "raise",
        state_every: int = 16,
        concurrent: bool = False,
        enabled: bool = True,
    ) -> None:
        if mode not in ("raise", "record"):
            raise ConfigurationError(
                f'mode must be "raise" or "record", got {mode!r}'
            )
        if state_every < 1:
            raise ConfigurationError("state_every must be >= 1")
        self.mode = mode
        self.state_every = state_every
        self.concurrent = concurrent
        self.enabled = enabled
        self.violations: list[Violation] = []
        self.checks_performed = 0
        #: Zero-arg callable returning entity ids whose state may be partial
        #: (dead-lettered mid-pipeline); executors point it at their
        #: dead-letter queue.
        self.exempt_provider: Callable[[], set] | None = None
        self._config: Any = None
        self._backend: Any = None
        self._registry: Any = None
        self._entities_seen = 0

    # -- wiring --------------------------------------------------------

    def bind(self, config: Any, backend: Any, registry: Any = None) -> None:
        """Attach the run's config/backend (done by the compiled plan)."""
        self._config = config
        self._backend = backend
        self._registry = registry

    @property
    def bound(self) -> bool:
        return self._backend is not None

    # -- violation plumbing --------------------------------------------

    def _run_checks(self, invariants, view, stage: str | None = None) -> None:
        for inv in invariants:
            self.checks_performed += 1
            try:
                inv.check(view)
            except InvariantViolation as exc:
                violation = Violation(
                    invariant=exc.invariant, detail=exc.detail, stage=stage
                )
                self.violations.append(violation)
                if self.mode == "raise" and not self.concurrent:
                    raise

    def raise_if_violated(self) -> None:
        """Raise the first recorded violation (used by deferred raise mode)."""
        if self.violations:
            first = self.violations[0]
            raise InvariantViolation(first.invariant, first.detail)

    def report(self) -> str:
        if not self.violations:
            return (
                f"no invariant violations "
                f"({self.checks_performed} checks performed)"
            )
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)

    # -- scope entry points --------------------------------------------

    def observe_stage(self, stage: str, payload: Any) -> None:
        """Run the stage-scope invariants over one output message."""
        invariants = invariants_for("stage", stage)
        if invariants:
            view = StageView(stage=stage, config=self._config, payload=payload)
            self._run_checks(invariants, view, stage=stage)

    def after_entity(self) -> None:
        """Sequential executors: periodic state check at entity boundaries."""
        self._entities_seen += 1
        if self._entities_seen % self.state_every == 0:
            self.check_state()

    def check_state(self) -> None:
        """Run the state-scope invariants against the bound backend now."""
        if not self.bound:
            return
        exempt = (
            frozenset(self.exempt_provider())
            if self.exempt_provider is not None
            else frozenset()
        )
        view = StateView(config=self._config, backend=self._backend, exempt=exempt)
        self._run_checks(invariants_for("state"), view)

    def check_result(
        self,
        result: Any,
        expected_entities: int | None = None,
        sequencer: Any = None,
    ) -> None:
        """Run the run-scope invariants over a finished result."""
        if not self.bound:
            return
        view = RunView(
            config=self._config,
            backend=self._backend,
            registry=self._registry,
            result=result,
            expected_entities=expected_entities,
            sequencer=sequencer,
        )
        self._run_checks(invariants_for("run"), view)

    def check_simulation(self, result: Any, n_items: int) -> None:
        """Run the simulation-scope invariants (no backend required)."""
        view = SimulationView(result=result, n_items=n_items)
        self._run_checks(invariants_for("simulation"), view)

    def finalize(
        self,
        result: Any = None,
        expected_entities: int | None = None,
        sequencer: Any = None,
    ) -> None:
        """End-of-run sweep: state + run invariants, then deferred raise.

        Concurrent executors call this after their workers have joined —
        the one point where stores are quiescent and a raise cannot be
        swallowed by stage supervision.
        """
        self.check_state()
        if result is not None:
            self.check_result(
                result, expected_entities=expected_entities, sequencer=sequencer
            )
        if self.mode == "raise":
            self.raise_if_violated()


class CheckedStage:
    """A stage callable wrapped with output invariant checking.

    Mirrors :class:`~repro.observability.instrument.InstrumentedStage`:
    attribute reads fall through to the wrapped stage (which may itself be
    an ``InstrumentedStage``), so counters like ``cg.generated`` stay
    reachable through however many wrappers the compile produced.
    """

    __slots__ = ("inner", "name", "_checker", "_active")

    def __init__(self, name: str, inner: Callable, checker: InvariantChecker) -> None:
        self.inner = inner
        self.name = name
        self._checker = checker
        # Resolve once: stages without registered invariants pay nothing
        # beyond one attribute load and a falsy test per call.
        self._active = bool(invariants_for("stage", name))

    def __call__(self, message):
        out = self.inner(message)
        if self._active:
            self._checker.observe_stage(self.name, out)
        return out

    def __getattr__(self, attr):
        return getattr(self.inner, attr)
