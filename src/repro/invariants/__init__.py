"""Declarative runtime invariants over ER state, stage outputs and runs.

The paper's state σ = ⟨M, B⟩ obeys contracts the code relies on but never
checked: post-purge block sizes stay below α, the O(1) running counters of
:class:`~repro.core.state.BlockCollection` equal full recounts, the token
dictionary is a bijection, every blocked identifier resolves in the
profile map, the thread framework's reorder buffer drains completely, and
metric totals agree with the returned result.  This package makes those
contracts first-class:

* :mod:`repro.invariants.checks` — the central registry of named
  invariants over four scopes (``state``, ``stage``, ``run``,
  ``simulation``);
* :mod:`repro.invariants.checker` — :class:`InvariantChecker`, compiled
  into any executor at :meth:`~repro.core.plan.PipelinePlan.compile` time
  (every stage wrapped in a :class:`CheckedStage`, exactly like
  ``InstrumentedStage``), with near-zero overhead when absent.

``repro-er check`` runs the invariant suite together with the metamorphic
oracle suite of :mod:`repro.proptest`; see ``docs/correctness.md``.
"""

from repro.errors import InvariantViolation
from repro.invariants.checker import CheckedStage, InvariantChecker, Violation
from repro.invariants.checks import (
    Invariant,
    RunView,
    SimulationView,
    StageView,
    StateView,
    all_invariants,
    get_invariant,
    invariant_names,
    invariants_for,
    register,
)

__all__ = [
    "InvariantViolation",
    "InvariantChecker",
    "CheckedStage",
    "Violation",
    "Invariant",
    "StateView",
    "StageView",
    "RunView",
    "SimulationView",
    "register",
    "get_invariant",
    "invariant_names",
    "invariants_for",
    "all_invariants",
]
