"""The central registry of runtime invariants over ER state and stage output.

Every invariant is a named, declarative check over one of four scopes:

``state``
    the :class:`~repro.core.backends.StateBackend` at an entity boundary —
    O(1) counters equal full recounts, post-purge block sizes stay below
    α, the token dictionary is bijective, every blocked identifier has a
    resolvable profile;
``stage``
    one stage's output message — no self-comparisons out of ``f_cg``,
    distinct survivors out of ``f_cc``, well-formed materializations out
    of ``f_lm``;
``run``
    a finished run's result against the backend and metrics registry —
    failure accounting, match containment, metric totals;
``simulation``
    a :class:`~repro.parallel.simulator.SimulationResult` — item
    conservation and non-negative times (the simulator moves abstract
    items, so the other scopes do not apply).

Checks take a small view object (:class:`StateView` / :class:`StageView` /
:class:`RunView` / :class:`SimulationView`) and raise
:class:`~repro.errors.InvariantViolation` on violation.  All invariants
register themselves here at import time; executors enforce them through a
:class:`~repro.invariants.checker.InvariantChecker` compiled into the
plan, and ``repro-er check`` runs them as part of the oracle suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import InvariantViolation
from repro.observability.instrument import ENTITIES, MATCHES

__all__ = [
    "Invariant",
    "StateView",
    "StageView",
    "RunView",
    "SimulationView",
    "register",
    "get_invariant",
    "invariant_names",
    "invariants_for",
    "all_invariants",
]


# --------------------------------------------------------------------------
# Views: what a check gets to look at (duck-typed, no core imports here).


@dataclass
class StateView:
    """A state-scope snapshot: the backend plus the active config.

    ``exempt`` holds entity identifiers whose state is *allowed* to be
    partial — dead-lettered entities may have mutated some stores before
    failing (dead-lettering is a survival guarantee, not a rollback).
    """

    config: Any
    backend: Any
    exempt: frozenset = frozenset()


@dataclass
class StageView:
    """A stage-scope observation: one stage's output message."""

    stage: str
    config: Any
    payload: Any


@dataclass
class RunView:
    """A run-scope view: the finished result against backend and metrics.

    ``expected_entities`` is the executor's own idea of how many entities
    the metrics registry should have counted (executors differ: the thread
    framework counts completions, the others count admissions), or None to
    skip the metric check.  ``sequencer`` is the thread framework's reorder
    buffer, or None for executors without one.
    """

    config: Any
    backend: Any
    registry: Any
    result: Any
    expected_entities: int | None = None
    sequencer: Any = None


@dataclass
class SimulationView:
    """A simulation-scope view: the result plus the submitted item count."""

    result: Any
    n_items: int


# --------------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class Invariant:
    """One named invariant: scope, optional stage binding, check function."""

    name: str
    scope: str  # "state" | "stage" | "run" | "simulation"
    check: Callable[[Any], None] = field(compare=False)
    stage: str | None = None
    description: str = ""


_REGISTRY: dict[str, Invariant] = {}


def register(invariant: Invariant) -> Invariant:
    if invariant.name in _REGISTRY:
        raise ValueError(f"invariant {invariant.name!r} already registered")
    if invariant.scope not in ("state", "stage", "run", "simulation"):
        raise ValueError(f"unknown invariant scope {invariant.scope!r}")
    _REGISTRY[invariant.name] = invariant
    return invariant


def get_invariant(name: str) -> Invariant:
    return _REGISTRY[name]


def invariant_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def all_invariants() -> tuple[Invariant, ...]:
    return tuple(_REGISTRY.values())


def invariants_for(scope: str, stage: str | None = None) -> tuple[Invariant, ...]:
    """Invariants of one scope (stage-scope additionally filtered by stage)."""
    return tuple(
        inv
        for inv in _REGISTRY.values()
        if inv.scope == scope and (scope != "stage" or inv.stage == stage)
    )


def _fail(name: str, detail: str) -> None:
    raise InvariantViolation(name, detail)


def _invariant(name: str, scope: str, stage: str | None = None, description: str = ""):
    """Decorator: register the function as an invariant's check."""

    def wrap(fn: Callable[[Any], None]) -> Callable[[Any], None]:
        register(
            Invariant(
                name=name, scope=scope, check=fn, stage=stage, description=description
            )
        )
        return fn

    return wrap


# --------------------------------------------------------------------------
# State-scope invariants


def _block_stores(blocks: Any) -> list:
    """The physical per-shard stores (or the store itself when unsharded)."""
    shard_fn = getattr(blocks, "shard_stores", None)
    return shard_fn() if shard_fn is not None else [blocks]


@_invariant(
    "block-counters-consistent",
    "state",
    description="O(1) size/assignment/comparison counters equal full recounts",
)
def check_block_counters(view: StateView) -> None:
    for store in _block_stores(view.backend.blocks):
        members = {key: list(block) for key, block in store.items()}
        assignments = sum(len(block) for block in members.values())
        comparisons = sum(
            len(block) * (len(block) - 1) // 2 for block in members.values()
        )
        if store.total_assignments() != assignments:
            _fail(
                "block-counters-consistent",
                f"total_assignments()={store.total_assignments()} but recount "
                f"over {len(members)} blocks gives {assignments}",
            )
        if store.total_comparisons() != comparisons:
            _fail(
                "block-counters-consistent",
                f"total_comparisons()={store.total_comparisons()} but recount "
                f"gives {comparisons}",
            )
        sizes = dict(store.sizes())
        actual = {key: len(block) for key, block in members.items()}
        if sizes != actual:
            drift = {
                key: (sizes.get(key), actual.get(key))
                for key in sizes.keys() | actual.keys()
                if sizes.get(key) != actual.get(key)
            }
            _fail(
                "block-counters-consistent",
                f"sizes() disagrees with block contents for {drift}",
            )


@_invariant(
    "block-sizes-bounded",
    "state",
    description="with block cleaning on, every surviving block stays below α",
)
def check_block_sizes(view: StateView) -> None:
    if not view.config.enable_block_cleaning:
        return
    alpha = view.config.alpha
    for key, size in view.backend.blocks.sizes().items():
        if size >= alpha:
            _fail(
                "block-sizes-bounded",
                f"block {key!r} has size {size} >= alpha={alpha} post-purge",
            )


@_invariant(
    "blacklist-excludes-blocks",
    "state",
    description="a pruned (blacklisted) key never reappears in the collection",
)
def check_blacklist(view: StateView) -> None:
    blocks = view.backend.blocks
    for key in view.backend.blacklist.keys:
        if key in blocks:
            _fail(
                "blacklist-excludes-blocks",
                f"key {key!r} is blacklisted but present with size "
                f"{len(blocks.block(key))}",
            )


@_invariant(
    "dictionary-bijective",
    "state",
    description="the token dictionary is a bijection onto range(len(d))",
)
def check_dictionary(view: StateView) -> None:
    dictionary = getattr(view.backend, "dictionary", None)
    if dictionary is None:
        return
    tokens = list(dictionary)
    if len(tokens) != len(dictionary):
        _fail(
            "dictionary-bijective",
            f"iteration yields {len(tokens)} tokens but len() is {len(dictionary)}",
        )
    if len(set(tokens)) != len(tokens):
        _fail("dictionary-bijective", "duplicate tokens in the id space")
    for tid, token in enumerate(tokens):
        if dictionary.lookup(token) != tid:
            _fail(
                "dictionary-bijective",
                f"token {token!r} decodes from id {tid} but interns to "
                f"{dictionary.lookup(token)}",
            )


@_invariant(
    "blocked-entities-have-profiles",
    "state",
    description="every identifier in a block resolves in the profile map",
)
def check_blocked_profiles(view: StateView) -> None:
    profiles = view.backend.profiles
    for key, members in view.backend.blocks.items():
        for eid in members:
            if eid not in profiles and eid not in view.exempt:
                _fail(
                    "blocked-entities-have-profiles",
                    f"entity {eid!r} is in block {key!r} but has no stored "
                    f"profile (stale block membership)",
                )


@_invariant(
    "match-store-consistent",
    "state",
    description="the match store is deduplicated and free of self-matches",
)
def check_match_store(view: StateView) -> None:
    store = view.backend.matches
    pairs = store.pairs()
    if len(pairs) != len(store):
        _fail(
            "match-store-consistent",
            f"{len(store)} stored matches but only {len(pairs)} distinct pairs",
        )
    for a, b in pairs:
        if a == b:
            _fail("match-store-consistent", f"self-match {a!r} in the store")


@_invariant(
    "durability-layout-consistent",
    "state",
    description="durable run directory is well-formed: monotonic snapshot "
    "epochs, gap-free WAL segment chain up to the live epoch",
)
def check_durability_layout(view: StateView) -> None:
    backend = view.backend
    wal_dir = getattr(backend, "wal_dir", None)
    if wal_dir is None or not hasattr(backend, "commit_entity"):
        return  # not a durable backend
    from repro.durability.snapshot import list_snapshots
    from repro.durability.wal import segment_path

    snapshots = list_snapshots(wal_dir)
    epochs = [epoch for epoch, _ in snapshots]
    if epochs != sorted(set(epochs)):
        _fail(
            "durability-layout-consistent",
            f"snapshot epochs are not strictly monotonic: {epochs}",
        )
    if epochs and epochs[-1] > backend.epoch:
        _fail(
            "durability-layout-consistent",
            f"newest snapshot epoch {epochs[-1]} is ahead of the live WAL "
            f"epoch {backend.epoch}",
        )
    chain_start = epochs[-1] if epochs else 0
    for epoch in range(chain_start, backend.epoch + 1):
        if not segment_path(wal_dir, epoch).exists():
            _fail(
                "durability-layout-consistent",
                f"WAL segment for epoch {epoch} is missing (chain "
                f"{chain_start}..{backend.epoch})",
            )


@_invariant(
    "durability-replay-digest",
    "state",
    description="replaying the durable run from disk reproduces the live "
    "state, digest for digest",
)
def check_durability_replay(view: StateView) -> None:
    backend = view.backend
    if getattr(backend, "wal_dir", None) is None or not hasattr(
        backend, "commit_entity"
    ):
        return  # not a durable backend
    if view.exempt:
        # Dead-lettered entities mutated state without committing; replay
        # (which stops at the last commit) legitimately diverges.
        return
    backend.flush()
    from repro.durability.codec import state_digest
    from repro.durability.recovery import recover

    recovered = recover(backend.wal_dir)
    live = state_digest(backend)
    replayed = state_digest(recovered.backend)
    if live != replayed:
        _fail(
            "durability-replay-digest",
            f"replayed-state digest {replayed[:16]}… != live-state digest "
            f"{live[:16]}… at entity boundary "
            f"{getattr(backend, 'entities_committed', '?')}",
        )


# --------------------------------------------------------------------------
# Stage-scope invariants (over inter-stage messages)


@_invariant(
    "dr-interned-view-consistent",
    "stage",
    stage="dr",
    description="an interned profile carries exactly one id per token",
)
def check_dr_output(view: StageView) -> None:
    profile = view.payload
    if profile.token_ids is not None and len(profile.token_ids) != len(profile.tokens):
        _fail(
            "dr-interned-view-consistent",
            f"profile {profile.eid!r} has {len(profile.tokens)} tokens but "
            f"{len(profile.token_ids)} interned ids",
        )


@_invariant(
    "bb-snapshot-wellformed",
    "stage",
    stage="bb+bp",
    description="B_ei has no singletons and respects the α bound post-purge",
)
def check_bb_output(view: StageView) -> None:
    blocked = view.payload
    alpha = view.config.alpha
    cleaning = view.config.enable_block_cleaning
    for key, others in blocked.others.items():
        if not others:
            _fail(
                "bb-snapshot-wellformed",
                f"singleton block {key!r} survived removeSingletons",
            )
        if cleaning and len(others) + 1 >= alpha:
            _fail(
                "bb-snapshot-wellformed",
                f"block {key!r} in B_ei has size {len(others) + 1} >= "
                f"alpha={alpha}",
            )


@_invariant(
    "cg-no-self-pairs",
    "stage",
    stage="cg",
    description="candidates never include the entity itself; clean-clean "
    "candidates are cross-source only",
)
def check_cg_output(view: StageView) -> None:
    generated = view.payload
    eid = generated.profile.eid
    for j in generated.candidates:
        if j == eid:
            _fail("cg-no-self-pairs", f"entity {eid!r} is its own candidate")
        if view.config.clean_clean and j[0] == eid[0]:
            _fail(
                "cg-no-self-pairs",
                f"clean-clean candidate {j!r} shares source with {eid!r}",
            )


@_invariant(
    "cc-survivors-distinct",
    "stage",
    stage="cc",
    description="comparison cleaning emits each surviving partner once",
)
def check_cc_output(view: StageView) -> None:
    cleaned = view.payload
    if len(set(cleaned.candidates)) != len(cleaned.candidates):
        _fail(
            "cc-survivors-distinct",
            f"duplicate partners in survivors of {cleaned.profile.eid!r}: "
            f"{cleaned.candidates}",
        )


@_invariant(
    "lm-materialization-wellformed",
    "stage",
    stage="lm",
    description="materialized comparisons are distinct, non-self, and "
    "anchored on the incoming profile",
)
def check_lm_output(view: StageView) -> None:
    materialized = view.payload
    anchor = materialized.profile.eid
    partners = [c.right.eid for c in materialized.comparisons]
    for c in materialized.comparisons:
        if c.left.eid != anchor:
            _fail(
                "lm-materialization-wellformed",
                f"comparison anchored on {c.left.eid!r}, expected {anchor!r}",
            )
        if c.right.eid == anchor:
            _fail(
                "lm-materialization-wellformed",
                f"self-comparison materialized for {anchor!r}",
            )
    if len(set(partners)) != len(partners):
        _fail(
            "lm-materialization-wellformed",
            f"duplicate partners materialized for {anchor!r}: {partners}",
        )


@_invariant(
    "co-scores-sane",
    "stage",
    stage="co",
    description="every similarity score is finite and non-negative",
)
def check_co_output(view: StageView) -> None:
    scored = view.payload
    for item in scored.scored:
        s = item.similarity
        if not math.isfinite(s) or s < 0.0:
            _fail(
                "co-scores-sane",
                f"similarity {s!r} for pair {item.comparison.ids}",
            )


@_invariant(
    "cl-no-self-matches",
    "stage",
    stage="cl",
    description="classification never declares an entity a match of itself",
)
def check_cl_output(view: StageView) -> None:
    for match in view.payload:
        if match.left == match.right:
            _fail("cl-no-self-matches", f"self-match {match.left!r}")


# --------------------------------------------------------------------------
# Run-scope invariants


@_invariant(
    "run-failure-accounting",
    "run",
    description="items_failed equals the dead-letter count",
)
def check_run_failures(view: RunView) -> None:
    result = view.result
    if result.items_failed != len(result.dead_letters):
        _fail(
            "run-failure-accounting",
            f"items_failed={result.items_failed} but "
            f"{len(result.dead_letters)} dead letters recorded",
        )


@_invariant(
    "run-matches-in-store",
    "run",
    description="every match the run reported is present in the match store",
)
def check_run_matches(view: RunView) -> None:
    stored = view.backend.matches.pairs()
    for match in view.result.matches:
        if match.key() not in stored:
            _fail(
                "run-matches-in-store",
                f"reported match {match.key()} is missing from the store",
            )


@_invariant(
    "run-metrics-consistent",
    "run",
    description="metric totals agree with the run result and the match store",
)
def check_run_metrics(view: RunView) -> None:
    registry = view.registry
    if registry is None or not registry.enabled or view.expected_entities is None:
        return
    entities = registry.value(ENTITIES)
    if entities != view.expected_entities:
        _fail(
            "run-metrics-consistent",
            f"{ENTITIES}={entities} but the executor processed "
            f"{view.expected_entities}",
        )
    matches = registry.value(MATCHES)
    stored = len(view.backend.matches)
    if matches != stored:
        _fail(
            "run-metrics-consistent",
            f"{MATCHES}={matches} but the match store holds {stored}",
        )


@_invariant(
    "reorder-buffer-drained",
    "run",
    description="after a thread run: no pending arrivals, and completions "
    "plus dead letters account for every submission",
)
def check_reorder_buffer(view: RunView) -> None:
    result = view.result
    latencies = getattr(result, "latencies", None)
    if latencies is not None:
        completed = len(latencies)
        if completed + result.items_failed != result.entities_processed:
            _fail(
                "reorder-buffer-drained",
                f"{completed} completions + {result.items_failed} dead letters "
                f"!= {result.entities_processed} submissions",
            )
    sequencer = view.sequencer
    if sequencer is not None and sequencer.pending_count() != 0:
        _fail(
            "reorder-buffer-drained",
            f"{sequencer.pending_count()} arrivals still buffered after join "
            f"(holes not declared for dead letters?)",
        )


# --------------------------------------------------------------------------
# Simulation-scope invariants


@_invariant(
    "sim-item-conservation",
    "simulation",
    description="admitted completions plus dead letters equal submissions; "
    "all simulated times are non-negative",
)
def check_simulation(view: SimulationView) -> None:
    result = view.result
    if result.admitted + result.items_failed != view.n_items:
        _fail(
            "sim-item-conservation",
            f"{result.admitted} completions + {result.items_failed} dead "
            f"letters != {view.n_items} submitted items",
        )
    if len(result.completion_times) != result.admitted:
        _fail(
            "sim-item-conservation",
            f"{len(result.completion_times)} completion times for "
            f"{result.admitted} admitted items",
        )
    if len(result.latencies) != result.admitted:
        _fail(
            "sim-item-conservation",
            f"{len(result.latencies)} latencies for {result.admitted} "
            f"admitted items",
        )
    if any(latency < 0 for latency in result.latencies):
        _fail("sim-item-conservation", "negative simulated latency")
    if any(busy < 0 for busy in result.stage_busy_seconds.values()):
        _fail("sim-item-conservation", "negative stage busy time")
    if result.makespan < 0:
        _fail("sim-item-conservation", f"negative makespan {result.makespan}")
