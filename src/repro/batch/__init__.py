"""Batch ER baseline (JedAI-style workflow) and its configuration grids."""

from repro.batch.pipeline import (
    BatchERConfig,
    BatchERPipeline,
    BatchERResult,
    IncrementalBatchER,
)
from repro.batch.workflows import (
    ALPHA_FRACTIONS,
    BETA_VALUES,
    CC_SCHEMES,
    R_VALUES,
    S_VALUES,
    block_cleaning_grid,
    comparison_cleaning_grid,
    full_grid,
)

__all__ = [
    "BatchERConfig",
    "BatchERPipeline",
    "BatchERResult",
    "IncrementalBatchER",
    "block_cleaning_grid",
    "comparison_cleaning_grid",
    "full_grid",
    "R_VALUES",
    "S_VALUES",
    "ALPHA_FRACTIONS",
    "BETA_VALUES",
    "CC_SCHEMES",
]
