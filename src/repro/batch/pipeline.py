"""The batch ER baseline: the state-of-the-art JedAI-style workflow.

Token blocking → block purging (r) → block filtering (s) → meta-blocking
(weighting + pruning scheme) → pairwise comparison (Jaccard) →
classification (oracle over the ground truth in the paper's evaluation).

Besides batch runs, :class:`IncrementalBatchER` adapts the workflow to
increments the way the paper's incremental baseline does: blocking steps
are recomputed over all data collected so far, but previously executed
comparisons are not repeated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.blocking import block_filtering, block_purging, count_comparisons
from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.core.backends import InMemoryBackend, StateBackend
from repro.errors import ConfigurationError
from repro.metablocking import (
    build_blocking_graph,
    get_pruning_scheme,
    get_weighting_scheme,
)
from repro.reading.profiles import ProfileBuilder
from repro.types import (
    Comparison,
    EntityDescription,
    EntityId,
    Match,
    Profile,
    pair_key,
)

Pair = tuple[EntityId, EntityId]


@dataclass(frozen=True)
class BatchERConfig:
    """Configuration of the batch baseline workflow.

    ``r`` / ``s`` enable block purging / filtering when set (the paper's
    grids use r ∈ {0.05, 0.005}, s ∈ {0.1, 0.5, 0.8}); ``weighting`` and
    ``pruning`` name the meta-blocking schemes (e.g. "CBS" + "WNP",
    "JS" + "RWNP", "ARCS" + "RCNP").  ``pruning=None`` disables comparison
    cleaning altogether.
    """

    r: float | None = 0.005
    s: float | None = 0.5
    weighting: str = "CBS"
    pruning: str | None = "WNP"
    block_builder: str = "token"
    clean_clean: bool = False
    profile_builder: ProfileBuilder = field(default_factory=ProfileBuilder)
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)

    def __post_init__(self) -> None:
        if self.r is not None and not 0.0 < self.r < 1.0:
            raise ConfigurationError(f"r must be in (0,1), got {self.r}")
        if self.s is not None and not 0.0 < self.s < 1.0:
            raise ConfigurationError(f"s must be in (0,1), got {self.s}")
        from repro.blocking import BLOCK_BUILDERS

        if self.block_builder not in BLOCK_BUILDERS:
            known = ", ".join(sorted(BLOCK_BUILDERS))
            raise ConfigurationError(
                f"unknown block builder '{self.block_builder}'; known: {known}"
            )

    def label(self) -> str:
        """Short configuration label, e.g. ``CBS+WNP r=0.005 s=0.5``."""
        parts = []
        if self.block_builder != "token":
            parts.append(self.block_builder)
        if self.pruning:
            parts.append(f"{self.weighting}+{self.pruning}")
        else:
            parts.append("no-CC")
        if self.r is not None:
            parts.append(f"r={self.r}")
        if self.s is not None:
            parts.append(f"s={self.s}")
        return " ".join(parts)


@dataclass
class BatchERResult:
    """Counts, per-phase times, and matches of one batch run."""

    config_label: str
    n_entities: int = 0
    comparisons_after_bb: int = 0
    comparisons_after_bc: int = 0
    comparisons_after_cc: int = 0
    blocking_seconds: float = 0.0  # BT: data reading + BB + BC
    cleaning_seconds: float = 0.0  # CCT: meta-blocking
    resolution_seconds: float = 0.0  # RT: everything end-to-end
    matches: list[Match] = field(default_factory=list)
    candidate_pairs: set[Pair] = field(default_factory=set)

    @property
    def match_pairs(self) -> set[Pair]:
        return {m.key() for m in self.matches}


class BatchERPipeline:
    """One-shot batch ER over a complete dataset."""

    def __init__(self, config: BatchERConfig | None = None) -> None:
        self.config = config or BatchERConfig()

    def build_profiles(self, entities: Iterable[EntityDescription]) -> list[Profile]:
        builder = self.config.profile_builder
        return [builder.build(entity) for entity in entities]

    def cleaned_blocks(self, profiles: Sequence[Profile]):
        """Block building + (optional) purging + (optional) filtering."""
        from repro.blocking import BLOCK_BUILDERS

        blocks = BLOCK_BUILDERS[self.config.block_builder](profiles)
        after_bb = count_comparisons(blocks, self.config.clean_clean)
        if self.config.r is not None:
            blocks = block_purging(blocks, self.config.r)
        if self.config.s is not None:
            blocks = block_filtering(blocks, self.config.s)
        return blocks, after_bb

    def retained_pairs(self, blocks) -> dict[Pair, float]:
        """Meta-blocking: weighted graph construction + pruning."""
        graph = build_blocking_graph(blocks, clean_clean=self.config.clean_clean)
        weigh = get_weighting_scheme(self.config.weighting)
        weights = weigh(graph)
        if self.config.pruning is None:
            return weights
        prune = get_pruning_scheme(self.config.pruning)
        return prune(graph, weights)

    def run(
        self,
        entities: Iterable[EntityDescription],
        skip_pairs: set[Pair] | None = None,
    ) -> BatchERResult:
        """Execute the full workflow; ``skip_pairs`` supports incremental use."""
        result = BatchERResult(config_label=self.config.label())
        start = time.perf_counter()

        profiles = self.build_profiles(entities)
        result.n_entities = len(profiles)
        by_id = {p.eid: p for p in profiles}

        blocks, after_bb = self.cleaned_blocks(profiles)
        result.comparisons_after_bb = after_bb
        result.comparisons_after_bc = count_comparisons(blocks, self.config.clean_clean)
        result.blocking_seconds = time.perf_counter() - start

        cc_start = time.perf_counter()
        retained = self.retained_pairs(blocks)
        result.comparisons_after_cc = len(retained)
        result.cleaning_seconds = time.perf_counter() - cc_start

        result.candidate_pairs = set(retained)
        for (i, j) in retained:
            if skip_pairs is not None and pair_key(i, j) in skip_pairs:
                continue
            comparison = Comparison(left=by_id[i], right=by_id[j])
            scored = self.config.comparator.compare(comparison)
            match = self.config.classifier.classify(scored)
            if match is not None:
                result.matches.append(match)
        result.resolution_seconds = time.perf_counter() - start
        return result


class IncrementalBatchER:
    """The paper's incremental adaptation of the batch baseline.

    Each increment triggers a full re-run of the blocking steps over all
    data collected so far; comparisons already executed in earlier
    increments are skipped (but re-derived), so the workload still grows
    with every increment — the effect Figure 10 shows.

    The cross-increment match set lives in a
    :class:`~repro.core.backends.StateBackend` match store (in-memory by
    default), the same pluggable seam the stream executors use.
    """

    def __init__(
        self,
        config: BatchERConfig | None = None,
        backend: StateBackend | None = None,
    ) -> None:
        self.pipeline = BatchERPipeline(config)
        self.backend = backend if backend is not None else InMemoryBackend()
        self._collected: list[EntityDescription] = []
        self._compared: set[Pair] = set()
        self.total_seconds = 0.0

    @property
    def matches(self) -> list[Match]:
        return self.backend.matches.matches()

    @property
    def match_pairs(self) -> set[Pair]:
        return self.backend.matches.pairs()

    def process_increment(self, increment: Iterable[EntityDescription]) -> BatchERResult:
        """Fold one increment in; returns the run over all collected data."""
        self._collected.extend(increment)
        start = time.perf_counter()
        result = self.pipeline.run(self._collected, skip_pairs=self._compared)
        self.total_seconds += time.perf_counter() - start
        self._compared.update(pair_key(i, j) for i, j in result.candidate_pairs)
        for match in result.matches:
            self.backend.matches.add(match)
        return result
