"""The paper's baseline configuration grids (§V, "Baselines").

Block cleaning grid: r ∈ {0.05, 0.005} × s ∈ {0.1, 0.5, 0.8}.
Comparison cleaning: CBS with WEP/WNP/RWNP/CEP/CNP/RCNP, plus the
efficiency-oriented combinations RWNP+JS (clean-clean) and RCNP+ARCS
(dirty) recommended by the enhanced meta-blocking paper.

Our method's grid: α ∈ {0.05·|D|, 0.005·|D|} × β ∈ {0.1, 0.05, 0.01}.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

from repro.batch.pipeline import BatchERConfig

#: Block-cleaning parameter grid of Table III (left half).
R_VALUES: tuple[float, ...] = (0.05, 0.005)
S_VALUES: tuple[float, ...] = (0.1, 0.5, 0.8)

#: Stream-enabled block-cleaning grid of Table III (right half).
ALPHA_FRACTIONS: tuple[float, ...] = (0.05, 0.005)
BETA_VALUES: tuple[float, ...] = (0.1, 0.05, 0.01)

#: Comparison-cleaning schemes evaluated in Figures 7–9.
CC_SCHEMES: tuple[tuple[str, str], ...] = (
    ("CBS", "WEP"),
    ("CBS", "WNP"),
    ("CBS", "RWNP"),
    ("CBS", "CEP"),
    ("CBS", "CNP"),
    ("CBS", "RCNP"),
)

#: Extra efficiency-oriented combinations from the enhanced meta-blocking
#: paper: RWNP+JS for clean-clean ER, RCNP+ARCS for dirty ER.
CC_SCHEMES_CLEAN_CLEAN_EXTRA: tuple[tuple[str, str], ...] = (("JS", "RWNP"),)
CC_SCHEMES_DIRTY_EXTRA: tuple[tuple[str, str], ...] = (("ARCS", "RCNP"),)


def block_cleaning_grid(base: BatchERConfig | None = None) -> Iterator[BatchERConfig]:
    """All (r, s) block-cleaning configurations over a base config."""
    base = base or BatchERConfig()
    for r in R_VALUES:
        for s in S_VALUES:
            yield replace(base, r=r, s=s)


def comparison_cleaning_grid(
    base: BatchERConfig | None = None, clean_clean: bool = False
) -> Iterator[BatchERConfig]:
    """All (weighting, pruning) schemes over a base config."""
    base = base or BatchERConfig()
    schemes = CC_SCHEMES + (
        CC_SCHEMES_CLEAN_CLEAN_EXTRA if clean_clean else CC_SCHEMES_DIRTY_EXTRA
    )
    for weighting, pruning in schemes:
        yield replace(base, weighting=weighting, pruning=pruning, clean_clean=clean_clean)


def full_grid(
    clean_clean: bool = False,
    base: BatchERConfig | None = None,
    aggressive_only: bool = False,
) -> Iterator[BatchERConfig]:
    """The cross product of block- and comparison-cleaning grids.

    ``aggressive_only`` restricts to r=0.005 (the paper does this for the
    largest dataset, where lax purging is intractable).
    """
    base = base or BatchERConfig()
    r_values = (0.005,) if aggressive_only else R_VALUES
    for r in r_values:
        for s in S_VALUES:
            for config in comparison_cleaning_grid(
                replace(base, r=r, s=s), clean_clean=clean_clean
            ):
                yield config
