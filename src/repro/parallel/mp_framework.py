"""Multiprocess execution: true CPU parallelism for the comparison stage.

CPython threads share the GIL, so the thread framework in
:mod:`repro.parallel.framework` demonstrates the architecture but cannot
speed up pure-Python compute.  This module provides the complementary
executor: the state-bearing front of the pipeline (``f_dr`` through
``f_lm``) runs in the parent — block building is inherently serial anyway
— while the dominant bottleneck, the comparison stage ``f_co`` (Figure 6),
is offloaded to a pool of worker *processes* in micro-batches.
Classification stays in the parent, which owns the match store.

This mirrors how the paper's allocation concentrates workers on ``f_co``
(y is by far the largest share), implemented with data parallelism where
it is legal: scoring is pure and stateless, so comparisons can be
partitioned freely.

Results are identical to the sequential pipeline (the same comparisons are
scored; only scoring order varies, and the match store de-duplicates).

Robustness mirrors the thread framework: the per-entity front is executed
under a :class:`~repro.parallel.supervision.Supervisor` (a poison entity is
dead-lettered, the stream keeps flowing); worker processes guard every
pair individually and report failures back as data, so a raising comparator
cannot poison ``pool.imap``; failed pairs are retried in the parent per the
:class:`~repro.core.config.SupervisionPolicy` before being dead-lettered on
the returned :class:`~repro.core.pipeline.ERResult`.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.comparison.comparator import TokenSetComparator
from repro.core.backends import StateBackend
from repro.core.config import StreamERConfig, SupervisionPolicy
from repro.core.pipeline import ERResult
from repro.core.plan import PipelinePlan
from repro.core.stages import ScoredComparisons
from repro.errors import ConfigurationError
from repro.parallel.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel.supervision import Supervisor
from repro.types import (
    Comparison,
    EntityDescription,
    Match,
    Profile,
    ScoredComparison,
    pair_key,
)

# Worker-process state, installed once per worker by the pool initializer.
_worker_comparator: TokenSetComparator | None = None
_worker_injector: FaultInjector | None = None


def _init_worker(
    comparator: TokenSetComparator, fault_spec: FaultSpec | None = None
) -> None:
    global _worker_comparator, _worker_injector
    _worker_comparator = comparator
    if fault_spec is None:
        _worker_injector = None
    else:
        # Built inside the worker, so the wrapped lambdas never cross the
        # process boundary; decisions are key-hashed, hence identical in
        # every worker regardless of how chunks are distributed.
        _worker_injector = FaultInjector(
            lambda pair: _worker_comparator.score(pair[0], pair[1]),  # type: ignore[union-attr]
            fault_spec,
            stage="co",
            key_fn=lambda pair: pair_key(pair[0].eid, pair[1].eid),
        )


def _score_chunk(
    chunk: list[tuple[Profile, Profile]],
) -> list[tuple[float | None, str | None]]:
    """Score one micro-batch of profile pairs in a worker process.

    Each pair is guarded individually and failures travel back as
    ``(None, error_repr)`` — data, not exceptions — so one poison pair
    cannot tear down ``pool.imap`` and lose the whole run.
    """
    assert _worker_comparator is not None, "worker not initialized"
    out: list[tuple[float | None, str | None]] = []
    for left, right in chunk:
        try:
            if _worker_injector is not None:
                out.append((_worker_injector((left, right)), None))
            else:
                out.append((_worker_comparator.score(left, right), None))
        except Exception as exc:
            out.append((None, repr(exc)))
    return out


@dataclass
class _Chunk:
    """A micro-batch of comparisons awaiting scores."""

    pairs: list[tuple[Profile, Profile]] = field(default_factory=list)


class MultiprocessERPipeline:
    """Stream ER with the comparison stage on a process pool.

    Parameters
    ----------
    config:
        The usual stream-ER configuration (the comparator is shipped to
        the workers once, at pool start; it must be picklable — the
        built-in comparators are).
    workers:
        Number of comparison worker processes (≥ 1).
    chunk_size:
        Comparisons per task message; larger amortizes IPC, smaller
        improves latency and load balance.
    supervision:
        Retry/dead-letter policy.  Front-stage failures dead-letter the
        entity; scoring failures are retried *in the parent* (with the
        parent's comparator) and then dead-letter the pair.
    faults:
        Optional fault-injection plan.  A spec for ``"co"`` is shipped to
        the worker processes (it must stay picklable); specs for front
        stages wrap the parent-side stage callables.
    backend:
        Where the parent-side ER state lives (default: a fresh in-memory
        backend).  A :class:`~repro.core.backends.ShardedBackend` keeps
        block/profile/match access partitioned while the comparison load
        runs on the process pool.
    plan:
        A pre-built :class:`~repro.core.plan.PipelinePlan` to compile; by
        default one is derived from ``config``.
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        workers: int = 2,
        chunk_size: int = 256,
        supervision: SupervisionPolicy | None = None,
        faults: FaultPlan | None = None,
        backend: StateBackend | None = None,
        plan: PipelinePlan | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.plan = plan if plan is not None else PipelinePlan.from_config(config)
        self.config = self.plan.config
        self.workers = workers
        self.chunk_size = chunk_size
        self.supervisor = Supervisor(supervision)
        self.compiled = self.plan.compile(backend)
        self.backend = self.compiled.backend
        # The active front (``co`` runs on the pool, ``cl`` in the parent
        # below); optional nodes the plan dropped are simply absent.
        self._front_stages = self.plan.front_stage_names()
        self.dr = self.compiled.get("dr")
        self.bb = self.compiled.get("bb+bp")
        self.bg = self.compiled.get("bg")
        self.cg = self.compiled.get("cg")
        self.cc = self.compiled.get("cc")
        self.lm = self.compiled.get("lm")
        self.cl = self.compiled.get("cl")
        self._fns: dict[str, object] = {
            name: fn
            for name, fn in self.compiled.stage_functions().items()
            if name != "co"
        }
        faults = dict(faults) if faults else {}
        self._worker_fault_spec = faults.pop("co", None)
        unknown = [name for name in faults if name not in self._fns]
        if unknown:
            raise ConfigurationError(
                f"fault plan names unknown stages {unknown}"
            )
        self.fault_injectors: dict[str, FaultInjector] = {}
        for name, spec in faults.items():
            injector = FaultInjector(self._fns[name], spec, stage=name)  # type: ignore[arg-type]
            self._fns[name] = injector
            self.fault_injectors[name] = injector

    def _front(
        self, entities: Iterable[EntityDescription]
    ) -> Iterator[list[Comparison]]:
        """Run dr..lm in the parent, yielding per-entity comparison lists.

        Each stage call runs under the supervisor: a poison entity is
        dead-lettered at the stage that rejected it and the stream keeps
        flowing.
        """
        for entity in entities:
            message: object = entity
            ok = True
            for name in self._front_stages:
                ok, message = self.supervisor.execute(
                    name, self._fns[name], message  # type: ignore[arg-type]
                )
                if not ok:
                    break
            if ok:
                yield message.comparisons  # type: ignore[union-attr]

    def _chunks(
        self, entities: Iterable[EntityDescription]
    ) -> Iterator[list[Comparison]]:
        """Regroup per-entity comparisons into pool-sized chunks."""
        buffer: list[Comparison] = []
        for comparisons in self._front(entities):
            buffer.extend(comparisons)
            while len(buffer) >= self.chunk_size:
                yield buffer[: self.chunk_size]
                buffer = buffer[self.chunk_size :]
        if buffer:
            yield buffer

    def run(self, entities: Iterable[EntityDescription]) -> ERResult:
        """Process a finite input end to end; returns the usual summary."""
        start = time.perf_counter()
        matches: list[Match] = []
        count_in = [0]

        def counted(stream: Iterable[EntityDescription]):
            for entity in stream:
                count_in[0] += 1
                yield entity

        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.config.comparator, self._worker_fault_spec),
        ) as pool:
            chunk_stream = self._chunks(counted(entities))
            pair_chunks: list[list[Comparison]] = []

            def payloads() -> Iterator[list[tuple[Profile, Profile]]]:
                for chunk in chunk_stream:
                    pair_chunks.append(chunk)
                    yield [(c.left, c.right) for c in chunk]

            for index, scores in enumerate(pool.imap(_score_chunk, payloads())):
                chunk = pair_chunks[index]
                pair_chunks[index] = []  # release memory as results drain
                scored = []
                for comparison, (score, error) in zip(chunk, scores):
                    if error is not None:
                        score = self._rescore(comparison, error)
                        if score is None:
                            continue  # pair dead-lettered
                    scored.append(
                        ScoredComparison(comparison=comparison, similarity=score)
                    )
                # Classification in the parent (owner of the match store).
                anchor = chunk[0].left if chunk else None
                ok, found = self.supervisor.execute(
                    "cl",
                    self._fns["cl"],  # type: ignore[arg-type]
                    ScoredComparisons(profile=anchor, scored=scored),  # type: ignore[arg-type]
                )
                if ok:
                    matches.extend(found)

        return ERResult(
            entities_processed=count_in[0],
            matches=matches,
            comparisons_generated=self.cg.generated,
            comparisons_after_cleaning=self.lm.materialized,
            blocks_pruned=self.bb.pruned_blocks,
            keys_ghosted=self.bg.ghosted_keys if self.bg is not None else 0,
            elapsed_seconds=time.perf_counter() - start,
            items_failed=self.supervisor.items_failed,
            retries=self.supervisor.retries_performed,
            dead_letters=list(self.supervisor.dead_letters),
        )

    def _rescore(self, comparison: Comparison, first_error: str) -> float | None:
        """Retry a worker-failed pair in the parent; dead-letter on exhaust.

        The parent retries with its own (uninjected) comparator, so
        transient worker trouble heals here while genuinely poison pairs
        fail again and land in the dead-letter queue.
        """
        attempts = 1
        last_error = first_error
        for _ in range(self.supervisor.policy.retries_for("co")):
            self.supervisor.record_retry("co")
            attempts += 1
            try:
                return self.config.comparator.score(comparison.left, comparison.right)
            except Exception as exc:
                last_error = repr(exc)
        self.supervisor.record_failure("co", comparison, last_error, attempts)
        return None
