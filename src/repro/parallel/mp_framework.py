"""Multiprocess execution: true CPU parallelism for the comparison stage.

CPython threads share the GIL, so the thread framework in
:mod:`repro.parallel.framework` demonstrates the architecture but cannot
speed up pure-Python compute.  This module provides the complementary
executor: the state-bearing front of the pipeline (``f_dr`` through
``f_lm``) runs in the parent — block building is inherently serial anyway
— while the dominant bottleneck, the comparison stage ``f_co`` (Figure 6),
is offloaded to a pool of worker *processes* in micro-batches.
Classification stays in the parent, which owns the match store.

This mirrors how the paper's allocation concentrates workers on ``f_co``
(y is by far the largest share), implemented with data parallelism where
it is legal: scoring is pure and stateless, so comparisons can be
partitioned freely.

Dispatch is *compact*: instead of pickling two full :class:`~repro.types.
Profile` objects per pair (attributes, token strings, and all — kilobytes
each, resent for every partner an entity is compared against), the parent
ships each chunk as a small table ``{entity id → token payload}`` plus a
list of ``(id, id)`` pairs, so every entity's tokens cross the process
boundary at most once per chunk.  The payload format depends on the
configured comparator:

``"ids"`` (:class:`~repro.comparison.kernel.InternedComparator`)
    sorted machine-int arrays of interned token ids (see
    :func:`~repro.reading.interning.pack_ids`) — a few bytes per token.
    The parent additionally applies the kernel's length prefilter before
    dispatch (a provably non-matching pair is never sent at all) and the
    worker applies threshold-aware verification (a scored non-match
    returns a 2-byte marker, not a result object).
``"tokens"`` (:class:`~repro.comparison.comparator.TokenSetComparator`)
    the string token frozensets, deduplicated per chunk.
``"profiles"`` (anything else)
    the legacy full-profile pairs, for comparators that inspect
    attributes (e.g. the attribute-weighted or TF-IDF comparators).
``"shm"`` (interned comparator **and** a backend advertising
:data:`~repro.core.backends.shm.SharedMemoryBackend.TOKEN_COLUMNS`)
    nothing but *row numbers*: each entity's packed id array is appended
    once — ever, not once per chunk — to the backend's shared-memory
    token column, workers attach to the column at pool spawn, and a chunk
    crosses the boundary as a flat ``uint64`` row-pair array inside a
    pickle-protocol-5 out-of-band payload.  Negotiated automatically via
    :func:`~repro.core.backends.base.backend_capabilities`; scoring is
    bit-identical to ``"ids"`` (same arrays, same kernel).

On top of the ``"shm"`` substrate sits **block-partitioned dispatch**
(negotiated via the backend's ``PARTITION_COLUMNS`` capability): instead
of the parent walking every per-entity pair list, chunking, and rescoring
``f_cl`` itself, the per-entity candidate lists are published once to a
shared *membership* column, grouped by each entity's smallest blocking
key, and the groups are bin-packed onto the workers by comparison count
(:func:`~repro.parallel.allocation.plan_partitions` — the load-balancing
move of Kolb/Thor/Rahm's MapReduce sorted-neighborhood blocking).  Each
worker receives one partition descriptor per increment — a flat ``uint64``
array of membership rows — and performs candidate regeneration, the
I-WNP cleaning count filter, the length prefilter, kernel scoring, *and*
the ``f_cl`` threshold/oracle decision locally against the shared
columns.  The parent only merges scored matches (the match store
de-duplicates pairs reported from both endpoints) and heals failures.
Keys never span workers, so the per-entity cleaning semantics are
preserved exactly; the differential suite asserts bit-identical match
sets against every other executor.

The pool itself is *persistent* by default: it is spawned on the first
:meth:`MultiprocessERPipeline.run` and reused by every subsequent call
(the streaming increments of dynamic ER), so fork/spawn cost and worker
shm attachment are paid once per pipeline, not once per increment.  Call
:meth:`~MultiprocessERPipeline.close` (or use the pipeline as a context
manager) to release the workers; a GC/exit finalizer covers the rest.

Results are identical to the sequential pipeline (the same comparisons are
scored; only scoring order varies, and the match store de-duplicates).
The differential suite asserts this pairwise across all three formats.

Robustness mirrors the thread framework: the per-entity front is executed
under a :class:`~repro.parallel.supervision.Supervisor` (a poison entity is
dead-lettered, the stream keeps flowing); worker processes guard every
pair individually and report failures back as data, so a raising comparator
cannot poison ``pool.imap``; failed pairs are retried in the parent per the
:class:`~repro.core.config.SupervisionPolicy` before being dead-lettered on
the returned :class:`~repro.core.pipeline.ERResult`.  Fault-injection
decisions are keyed by the canonical pair key in every dispatch format, so
the same seeded faults hit the same pairs regardless of how payloads are
encoded.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
import weakref
from array import array
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.classification.classifiers import OracleClassifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.comparison.kernel import (
    InternedComparator,
    intersect_size,
    similarity_from_intersection,
)
from repro.core.backends import StateBackend
from repro.core.backends.shm import (
    SharedColumnReader,
    SharedMemoryBackend,
    decode_membership,
    decode_packed,
)
from repro.core.config import StreamERConfig, SupervisionPolicy
from repro.core.pipeline import ERResult
from repro.core.plan import PipelinePlan
from repro.core.stages import ScoredComparisons
from repro.errors import ConfigurationError
from repro.invariants.checker import InvariantChecker
from repro.observability.instrument import (
    COMPARISONS_EXECUTED,
    ENTITIES,
    MATCHES,
    PARTITION_GROUPS,
    PARTITION_IMBALANCE,
    PARTITION_LARGEST_SHARE,
    PARTITION_PAIRS,
    PARTITIONS_DISPATCHED,
    POOL_REUSES,
    POOL_SPAWNS,
    SHM_BYTES,
    SHM_ROWS,
    SHM_SEGMENTS,
    STAGE_ITEMS,
    STAGE_SERVICE_SECONDS,
    declare_partition_metrics,
    declare_shm_metrics,
)
from repro.parallel.allocation import plan_partitions
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.trace import Tracer
from repro.parallel.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel.supervision import Supervisor
from repro.reading.interning import pack_ids
from repro.types import (
    Comparison,
    EntityDescription,
    EntityId,
    Match,
    Profile,
    ScoredComparison,
    pair_key,
)

#: One chunk's compact payload: id-array table, string-set fallback table
#: (used when either side of a pair lacks interned ids), and the pair list.
CompactChunk = tuple[dict, dict, list[tuple[EntityId, EntityId]]]


def dispatch_mode(comparator: object) -> str:
    """Which wire format the comparator admits (see the module docstring).

    Exact-type checks, deliberately: a subclass may override ``score`` to
    look at attributes the compact payloads do not carry, so only the known
    token-set comparators ride the compact formats.
    """
    if type(comparator) is InternedComparator:
        return "ids"
    if type(comparator) is TokenSetComparator:
        return "tokens"
    return "profiles"


def negotiate_dispatch_mode(
    comparator: object, capabilities: frozenset[str] = frozenset()
) -> str:
    """The wire format given both the comparator *and* backend abilities.

    The ``"shm"`` upgrade of ``"ids"`` requires the backend to publish
    token columns in shared memory (capability negotiation, see
    :func:`~repro.core.backends.base.backend_capabilities`); the other
    modes are purely comparator-determined.
    """
    mode = dispatch_mode(comparator)
    if mode == "ids" and SharedMemoryBackend.TOKEN_COLUMNS in capabilities:
        return "shm"
    return mode


#: Classifier types whose decision is a pure function of the scored pair
#: (a threshold on the similarity, or membership in a ground-truth set) —
#: exactly the decisions a worker can take without the match store.
_PARTITIONABLE_CLASSIFIERS = (ThresholdClassifier, OracleClassifier)


def negotiate_partitioned_dispatch(
    dispatch_mode: str,
    capabilities: frozenset[str] = frozenset(),
    classifier: object | None = None,
) -> bool:
    """Whether block-partitioned worker-side rescoring is available.

    Requires the ``"shm"`` row-number substrate, a backend that maintains
    the entity/membership columns (``PARTITION_COLUMNS``), and a
    classifier whose decision is pure (exact-type check, like
    :func:`dispatch_mode`: a subclass may consult state the workers do not
    have).
    """
    return (
        dispatch_mode == "shm"
        and SharedMemoryBackend.PARTITION_COLUMNS in capabilities
        and type(classifier) in _PARTITIONABLE_CLASSIFIERS
    )


def _dumps_oob(obj: object) -> tuple[bytes, list[bytes]]:
    """Pickle with protocol-5 out-of-band buffers.

    Buffer-bearing payload members (the ``uint64`` row-pair arrays of the
    ``"shm"`` format) travel as raw buffers next to a small pickle stream
    instead of being copy-encoded into it.
    """
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    return data, [buffer.raw().tobytes() for buffer in buffers]


def _loads_oob(payload: tuple[bytes, list[bytes]]) -> object:
    data, buffers = payload
    return pickle.loads(data, buffers=buffers)


# Worker-process state, installed once per worker by the pool initializer.
_worker_comparator = None
_worker_mode: str = "profiles"
_worker_threshold: float | None = None
_worker_scorer: Callable | None = None
_worker_tokens: SharedColumnReader | None = None
_worker_row_cache: dict = {}
# Partitioned-dispatch extras (attached only in "partitioned" mode).
_worker_membership: SharedColumnReader | None = None
_worker_entities: SharedColumnReader | None = None
_worker_eid_cache: dict = {}
_worker_cc_enabled: bool = True
_worker_prefilter: bool = False
_worker_cl_threshold: float | None = None
_worker_cl_truth: frozenset | None = None

#: Bound on the worker-side row → decoded-array cache.  Entities recur
#: across chunks (that is the point of shm dispatch), so the cache's hit
#: rate is high; the bound only guards pathological vocabularies.
_ROW_CACHE_LIMIT = 1 << 16


def _score_profile_pair(pair: tuple[Profile, Profile]) -> float:
    return _worker_comparator.score(pair[0], pair[1])  # type: ignore[union-attr]


def _score_token_pair(item: tuple) -> float:
    # item = (eid_i, eid_j, tokens_i, tokens_j); the ids ride along only so
    # the fault injector can key its decision by the canonical pair.
    return _worker_comparator.similarity(item[2], item[3])  # type: ignore[union-attr]


def _score_id_pair(item: tuple) -> float:
    a, b = item[2], item[3]
    if isinstance(a, frozenset):  # string fallback for un-interned profiles
        inter = len(a & b)
    else:
        inter = intersect_size(a, b)
    return similarity_from_intersection(
        _worker_comparator.measure, inter, len(a), len(b)  # type: ignore[union-attr]
    )


def _worker_row_ids(row: int) -> array:
    """Decode (and cache) the packed id array behind a shared-column row."""
    ids = _worker_row_cache.get(row)
    if ids is None:
        ids = decode_packed(_worker_tokens.record(row))  # type: ignore[union-attr]
        if len(_worker_row_cache) >= _ROW_CACHE_LIMIT:
            _worker_row_cache.clear()
        _worker_row_cache[row] = ids
    return ids


def _worker_row_eid(row: int):
    """Decode (and cache) the entity id behind a shared-column row."""
    eid = _worker_eid_cache.get(row)
    if eid is None:
        eid = pickle.loads(bytes(_worker_entities.record(row)))  # type: ignore[union-attr]
        if len(_worker_eid_cache) >= _ROW_CACHE_LIMIT:
            _worker_eid_cache.clear()
        _worker_eid_cache[row] = eid
    return eid


def _init_worker(
    comparator: object,
    fault_spec: FaultSpec | None = None,
    mode: str = "profiles",
    shm_layout: dict | None = None,
    partition: dict | None = None,
) -> None:
    global _worker_comparator, _worker_mode, _worker_threshold, _worker_scorer
    global _worker_tokens, _worker_row_cache
    global _worker_membership, _worker_entities, _worker_eid_cache
    global _worker_cc_enabled, _worker_prefilter
    global _worker_cl_threshold, _worker_cl_truth
    _worker_comparator = comparator
    _worker_mode = mode
    if mode in ("shm", "partitioned"):
        # Attach to the parent's shared token column exactly once, here;
        # every chunk afterwards carries row numbers, not token data.
        _worker_tokens = SharedColumnReader(shm_layout["tokens"])  # type: ignore[index]
        _worker_row_cache = {}
    if mode == "partitioned":
        _worker_membership = SharedColumnReader(shm_layout["membership"])  # type: ignore[index]
        _worker_entities = SharedColumnReader(shm_layout["entities"])  # type: ignore[index]
        _worker_eid_cache = {}
        _worker_cc_enabled = bool(partition["cc_enabled"])  # type: ignore[index]
        _worker_prefilter = bool(partition["prefilter"])  # type: ignore[index]
        classifier = partition["classifier"]  # type: ignore[index]
        if type(classifier) is OracleClassifier:
            _worker_cl_truth = classifier.truth
            _worker_cl_threshold = None
        else:
            _worker_cl_truth = None
            _worker_cl_threshold = classifier.threshold
    _worker_threshold = (
        comparator.threshold  # type: ignore[attr-defined]
        if mode in ("ids", "shm", "partitioned")
        else None
    )
    if mode in ("ids", "shm", "partitioned"):
        base: Callable = _score_id_pair
    elif mode == "tokens":
        base = _score_token_pair
    else:
        base = _score_profile_pair
    if fault_spec is None:
        _worker_scorer = base
    else:
        # Built inside the worker, so the wrapped lambdas never cross the
        # process boundary; decisions are keyed by the canonical pair key
        # and hashed, hence identical in every worker and every dispatch
        # format, regardless of how chunks are distributed.
        if mode == "profiles":
            key_fn = lambda pair: pair_key(pair[0].eid, pair[1].eid)  # noqa: E731
        else:
            key_fn = lambda item: pair_key(item[0], item[1])  # noqa: E731
        _worker_scorer = FaultInjector(base, fault_spec, stage="co", key_fn=key_fn)


def _score_chunk(payload: object) -> list[tuple[float | None, str | None]]:
    """Score one micro-batch in a worker process.

    Each pair is guarded individually and failures travel back as
    ``(None, error_repr)`` — data, not exceptions — so one poison pair
    cannot tear down ``pool.imap`` and lose the whole run.  ``(None, None)``
    marks a pair the kernel *verified* below the classification threshold:
    provably not a match, dropped without ever allocating a result object.
    """
    scorer = _worker_scorer
    assert scorer is not None, "worker not initialized"
    out: list[tuple[float | None, str | None]] = []
    if _worker_mode == "profiles":
        for left, right in payload:  # type: ignore[union-attr]
            try:
                out.append((scorer((left, right)), None))
            except Exception as exc:
                out.append((None, repr(exc)))
        return out
    if _worker_mode == "shm":
        return _score_shm_chunk(payload, scorer)
    ids_table, str_table, pairs = payload  # type: ignore[misc]
    thr = _worker_threshold
    for i, j in pairs:
        a = ids_table.get(i)
        b = ids_table.get(j) if a is not None else None
        if a is None or b is None:
            a = str_table[i]
            b = str_table[j]
        try:
            score = scorer((i, j, a, b))
        except Exception as exc:
            out.append((None, repr(exc)))
            continue
        if thr is not None and score < thr:
            out.append((None, None))
        else:
            out.append((score, None))
    return out


def _score_shm_chunk(
    payload: object, scorer: Callable
) -> list[tuple[float | None, str | None]]:
    """Score one ``"shm"``-format micro-batch against the shared columns.

    The payload names no token data: shared-column row pairs for interned
    entities (a flat ``uint64`` array), plus a per-position string-set
    fallback for entities without interned ids.  ``keys`` (the eid pairs)
    ride along only when a fault spec is active, so the injector's
    decisions stay keyed by the canonical pair — identical to every other
    dispatch format.
    """
    count, rows, keys, fallback, str_table = _loads_oob(payload)  # type: ignore[arg-type]
    thr = _worker_threshold
    fallback_at = {position: (i, j) for position, i, j in fallback}
    out: list[tuple[float | None, str | None]] = []
    cursor = 0
    for position in range(count):
        pair = fallback_at.get(position)
        if pair is not None:
            i, j = pair
            a: object = str_table[i]
            b: object = str_table[j]
        else:
            row_a = int(rows[2 * cursor])
            row_b = int(rows[2 * cursor + 1])
            if keys is not None:
                i, j = keys[cursor]
            else:
                i, j = row_a, row_b
            cursor += 1
            a = _worker_row_ids(row_a)
            b = _worker_row_ids(row_b)
        try:
            score = scorer((i, j, a, b))
        except Exception as exc:
            out.append((None, repr(exc)))
            continue
        if thr is not None and score < thr:
            out.append((None, None))
        else:
            out.append((score, None))
    return out


def _score_partition(payload: object) -> tuple[list, list, dict]:
    """Resolve one partition descriptor entirely inside a worker.

    The payload is a flat ``uint64`` array of membership rows.  Each row
    decodes to ``[own_row, partner_row, ...]`` — one entity's candidate
    list with multiplicity, in shared token-column rows.  The worker then
    replays the sequential tail for that entity: the I-WNP count filter
    (partner kept when its block co-occurrence count is at least the
    average — or plain dedup when cleaning is disabled), the kernel
    length prefilter, scoring, threshold verification, and the ``f_cl``
    decision.  Returns ``(matches, failures, stats)``: matched triples
    ``(left, right, score)``, failed triples ``(left, right, error)``,
    and the cleaned/prefiltered counts the parent folds into its
    accounting.  Row ↔ entity-id maps are bijective within one record
    (every eid resolves to exactly one current row at publish time), so
    counting by row is counting by partner.
    """
    scorer = _worker_scorer
    assert scorer is not None, "worker not initialized"
    (rows,) = _loads_oob(payload)  # type: ignore[misc]
    thr = _worker_threshold
    cl_thr = _worker_cl_threshold
    truth = _worker_cl_truth
    prefilter = _worker_prefilter
    bound = _worker_comparator.bound if prefilter else None  # type: ignore[union-attr]
    matches: list[tuple] = []
    failures: list[tuple] = []
    cleaned = 0
    prefiltered = 0
    for membership_row in rows:
        record = decode_membership(
            _worker_membership.record(int(membership_row))  # type: ignore[union-attr]
        )
        own = int(record[0])
        counts: dict[int, int] = {}
        get = counts.get
        for partner_row in record[1:]:
            partner = int(partner_row)
            counts[partner] = get(partner, 0) + 1
        if not counts:
            continue
        if _worker_cc_enabled:
            avg = (len(record) - 1) / len(counts)
            survivors = [row for row, count in counts.items() if count >= avg]
        else:
            survivors = list(counts)
        cleaned += len(survivors)
        a = _worker_row_ids(own)
        la = len(a)
        left = _worker_row_eid(own)
        for row in survivors:
            b = _worker_row_ids(row)
            lb = len(b)
            if prefilter:
                # Mirrors the parent-side prefilter of the chunked path:
                # exactly one empty side scores identically 0 (< threshold);
                # both-empty pairs must still be scored (jaccard says 1.0).
                if (la == 0) != (lb == 0):
                    prefiltered += 1
                    continue
                if la and bound(la, lb) < thr:  # type: ignore[misc]
                    prefiltered += 1
                    continue
            right = _worker_row_eid(row)
            try:
                score = scorer((left, right, a, b))
            except Exception as exc:
                failures.append((left, right, repr(exc)))
                continue
            if thr is not None and score < thr:
                continue  # kernel-verified non-match
            if truth is not None:
                if pair_key(left, right) in truth:
                    matches.append((left, right, score))
            elif score >= cl_thr:  # type: ignore[operator]
                matches.append((left, right, score))
    return matches, failures, {"cleaned": cleaned, "prefiltered": prefiltered}


def _terminate_pool(pool) -> None:
    """Finalizer hook: module-level so ``weakref.finalize`` stays cycle-free."""
    pool.terminate()
    pool.join()


def _unwrap(stage):
    """The bare stage object behind Instrumented/Checked decorators.

    The wrappers use ``__slots__`` with read-only delegation, so stats the
    partitioned path maintains on the workers' behalf (``cc.retained``,
    ``lm.materialized``) must be written to the innermost object.
    """
    inner = stage
    while True:
        next_inner = getattr(inner, "inner", None)
        if next_inner is None:
            return inner
        inner = next_inner


class MultiprocessERPipeline:
    """Stream ER with the comparison stage on a process pool.

    Parameters
    ----------
    config:
        The usual stream-ER configuration (the comparator is shipped to
        the workers once, at pool start; it must be picklable — the
        built-in comparators are).
    workers:
        Number of comparison worker processes (≥ 1).
    chunk_size:
        Comparisons per task message; larger amortizes IPC, smaller
        improves latency and load balance.
    supervision:
        Retry/dead-letter policy.  Front-stage failures dead-letter the
        entity; scoring failures are retried *in the parent* (with the
        parent's comparator) and then dead-letter the pair.
    faults:
        Optional fault-injection plan.  A spec for ``"co"`` is shipped to
        the worker processes (it must stay picklable); specs for front
        stages wrap the parent-side stage callables.
    backend:
        Where the parent-side ER state lives (default: a fresh in-memory
        backend).  A :class:`~repro.core.backends.ShardedBackend` keeps
        block/profile/match access partitioned while the comparison load
        runs on the process pool.
    plan:
        A pre-built :class:`~repro.core.plan.PipelinePlan` to compile; by
        default one is derived from ``config``.
    registry:
        An optional :class:`~repro.observability.MetricsRegistry`; when
        enabled, the parent emits the shared metric vocabulary.  Front
        stages are instrumented like everywhere else; the pool-side
        comparison stage is observed from the parent (per-chunk turnaround
        into ``er_stage_service_seconds{stage="co"}``).
    tracer:
        An optional :class:`~repro.observability.Tracer`; sampled entities
        get per-stage spans for the parent-side front (the pooled ``co``
        stage scores pairs in entity-mixed chunks, so it has no per-entity
        span here).
    checker:
        Optional :class:`~repro.invariants.InvariantChecker`.  The front
        stages run in the pool's task-handler thread, so stage-scope checks
        record only; state- and run-scope invariants run at the end of
        :meth:`run`, where a raise-mode checker raises.
    persistent_pool:
        Keep the worker pool alive between :meth:`run` calls (default).
        This is what makes incremental/streaming use cheap: workers are
        forked (and, in ``"shm"`` mode, attached to the shared columns)
        once per pipeline, then every increment reuses them.  With
        ``False``, the pool is torn down at the end of each run (the old
        behaviour).  Either way, :meth:`close` / the context manager
        releases the workers, and a finalizer covers GC/interpreter exit.
    partitioned:
        Block-partitioned dispatch with worker-side rescoring (see the
        module docstring).  ``"auto"`` (default) enables it whenever
        eligible: ``"shm"`` dispatch, a backend advertising
        ``PARTITION_COLUMNS``, a pure (threshold/oracle) classifier, no
        durable per-entity commit hook, and no fault specs on the stages
        that move into the workers (``cc``/``lm``/``cl``).  ``True``
        raises :class:`~repro.errors.ConfigurationError` when ineligible;
        ``False`` forces the chunked path.

    After a run, ``pairs_prefiltered`` counts the comparisons dropped by
    the length prefilter (never scored) and ``pairs_dispatched`` the
    comparisons actually scored by the pool — the two always sum to the
    after-cleaning comparison count, in every dispatch mode;
    ``pool_spawns`` / ``pool_reuses`` count pool creations vs. runs that
    reused a live pool.  ``last_partition_plan`` holds the most recent
    run's :class:`~repro.parallel.allocation.PartitionPlan` (partitioned
    runs only).
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        workers: int = 2,
        chunk_size: int = 256,
        supervision: SupervisionPolicy | None = None,
        faults: FaultPlan | None = None,
        backend: StateBackend | None = None,
        plan: PipelinePlan | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        checker: InvariantChecker | None = None,
        persistent_pool: bool = True,
        partitioned: bool | str = "auto",
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.plan = plan if plan is not None else PipelinePlan.from_config(config)
        self.config = self.plan.config
        self.workers = workers
        self.chunk_size = chunk_size
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer
        self.supervisor = Supervisor(supervision, registry=self.registry)
        self.checker = checker if (checker is not None and checker.enabled) else None
        if self.checker is not None:
            # The front runs in the pool's task-handler thread; a raise
            # there would poison imap instead of surfacing cleanly.
            self.checker.concurrent = True
            self.checker.exempt_provider = lambda: {
                d.entity_id for d in self.supervisor.dead_letters
            }
        self.compiled = self.plan.compile(
            backend, registry=self.registry, checker=self.checker
        )
        self.backend = self.compiled.backend
        self.entities_processed = 0
        self._trace_seq = 0
        # The active front (``co`` runs on the pool, ``cl`` in the parent
        # below); optional nodes the plan dropped are simply absent.
        self._front_stages = self.plan.front_stage_names()
        self.dr = self.compiled.get("dr")
        self.bb = self.compiled.get("bb+bp")
        self.bg = self.compiled.get("bg")
        self.cg = self.compiled.get("cg")
        self.cc = self.compiled.get("cc")
        self.lm = self.compiled.get("lm")
        self.cl = self.compiled.get("cl")
        self._fns: dict[str, object] = {
            name: fn
            for name, fn in self.compiled.stage_functions().items()
            if name != "co"
        }
        comparator = self.config.comparator
        self.dispatch_mode = negotiate_dispatch_mode(
            comparator, self.compiled.capabilities
        )
        compact = self.dispatch_mode in ("ids", "shm")
        self._threshold: float | None = comparator.threshold if compact else None
        self._prefilter = bool(
            compact
            and comparator.prefilter
            and self._threshold is not None
            and self._threshold > 0.0
        )
        self.pairs_prefiltered = 0
        self.pairs_dispatched = 0
        # ``token_store`` / ``layout`` reach through decorating backends
        # (DurableBackend) via their attribute delegation.
        self._token_store = (
            self.backend.token_store if self.dispatch_mode == "shm" else None
        )
        self._shm_layout = (
            self.backend.layout() if self.dispatch_mode == "shm" else None
        )
        self.persistent_pool = persistent_pool
        self.pool_spawns = 0
        self.pool_reuses = 0
        self._pool = None
        self._pool_finalizer: weakref.finalize | None = None
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        if self.registry.enabled and self.dispatch_mode == "shm":
            declare_shm_metrics(self.registry)
        faults = dict(faults) if faults else {}
        self._worker_fault_spec = faults.pop("co", None)
        # Faults are keyed by the canonical pair of *entity ids*; the shm
        # format ships rows, so eid keys ride along only when needed.
        self._ship_pair_keys = self._worker_fault_spec is not None
        unknown = [name for name in faults if name not in self._fns]
        if unknown:
            raise ConfigurationError(
                f"fault plan names unknown stages {unknown}"
            )
        self.fault_injectors: dict[str, FaultInjector] = {}
        for name, spec in faults.items():
            injector = FaultInjector(self._fns[name], spec, stage=name)  # type: ignore[arg-type]
            self._fns[name] = injector
            self.fault_injectors[name] = injector
        self.partitioned_dispatch = self._negotiate_partitioned(
            partitioned, faults
        )
        self.last_partition_plan = None
        self._partition_config: dict | None = None
        if self.partitioned_dispatch:
            # The parent-side front stops after cg; cc/lm/cl semantics move
            # into the workers (cl's state duty — the match store — stays
            # parent-side via the merge loop).
            self._partition_front = tuple(
                name for name in self._front_stages
                if name in ("dr", "bb+bp", "bg")
            )
            cc = self.compiled.get("cc")
            self._partition_config = {
                "cc_enabled": cc is not None and bool(_unwrap(cc).enabled),
                "prefilter": self._prefilter,
                "classifier": self.config.classifier,
            }
            if self.registry.enabled:
                declare_partition_metrics(self.registry)

    def _negotiate_partitioned(
        self, requested: bool | str, front_faults: dict
    ) -> bool:
        """Resolve the ``partitioned`` parameter against this run's wiring."""
        if requested is False:
            return False
        if requested not in (True, "auto"):
            raise ConfigurationError(
                f"partitioned must be True, False, or 'auto', got {requested!r}"
            )
        blockers: list[str] = []
        if not negotiate_partitioned_dispatch(
            self.dispatch_mode,
            self.compiled.capabilities,
            self.config.classifier,
        ):
            blockers.append(
                "needs shm dispatch, a PARTITION_COLUMNS backend, and a "
                "threshold/oracle classifier"
            )
        if hasattr(self.backend, "commit_entity"):
            # A durable backend commits per entity through the cl stage
            # wrapper; partitioned runs bypass that stage, so the WAL
            # would silently miss matches.
            blockers.append("durable backends commit per-entity through cl")
        moved = [n for n in front_faults if n in ("cc", "lm", "cl")]
        if moved:
            blockers.append(
                f"fault specs on {moved} target stages that run worker-side "
                "under partitioned dispatch"
            )
        if not blockers:
            return True
        if requested is True:
            raise ConfigurationError(
                "partitioned dispatch unavailable: " + "; ".join(blockers)
            )
        return False

    @property
    def items_failed(self) -> int:
        return self.supervisor.items_failed

    @property
    def retries_performed(self) -> int:
        return self.supervisor.retries_performed

    def _front(
        self, entities: Iterable[EntityDescription]
    ) -> Iterator[list[Comparison]]:
        """Run dr..lm in the parent, yielding per-entity comparison lists.

        Each stage call runs under the supervisor: a poison entity is
        dead-lettered at the stage that rejected it and the stream keeps
        flowing.  Sampled entities get per-stage trace spans for the
        parent-side front.
        """
        tracer = self.tracer
        for entity in entities:
            trace = None
            if tracer is not None:
                seq = self._trace_seq
                self._trace_seq += 1
                trace = tracer.start(seq, entity.eid)
            message: object = entity
            ok = True
            for name in self._front_stages:
                if trace is not None:
                    trace.record_start(name)
                ok, message = self.supervisor.execute(
                    name, self._fns[name], message  # type: ignore[arg-type]
                )
                if trace is not None:
                    if ok:
                        trace.record_finish(name)
                    else:
                        trace.dead_letter(name)
                if not ok:
                    break
            if ok:
                if trace is not None:
                    trace.complete()
                yield message.comparisons  # type: ignore[union-attr]

    def _chunks(
        self, entities: Iterable[EntityDescription]
    ) -> Iterator[list[Comparison]]:
        """Regroup per-entity comparisons into pool-sized chunks.

        In ``"ids"`` mode with an active prefilter, pairs whose length
        bound already precludes reaching the threshold are dropped *here* —
        before chunking — so they consume neither a chunk slot nor a single
        byte of IPC.  Draining is linear: full chunks are sliced off by a
        moving index and only the sub-chunk remainder is ever copied, so
        chunking cost no longer grows quadratically with the per-entity
        comparison burst.
        """
        chunk_size = self.chunk_size
        buffer: list[Comparison] = []
        thr = self._threshold
        prefilter = self._prefilter
        bound = self.config.comparator.bound if prefilter else None
        for comparisons in self._front(entities):
            if prefilter:
                for c in comparisons:
                    la = len(c.left.tokens)
                    lb = len(c.right.tokens)
                    # Exactly one empty side scores identically 0, below any
                    # positive threshold — droppable.  Both-empty pairs must
                    # still be shipped: the kernel scores them 1.0 (jaccard
                    # on two empty sets), which can classify as a match.
                    if (la == 0) != (lb == 0):
                        self.pairs_prefiltered += 1
                        continue
                    if la and bound(la, lb) < thr:  # type: ignore[misc]
                        self.pairs_prefiltered += 1
                        continue
                    buffer.append(c)
            else:
                buffer.extend(comparisons)
            if len(buffer) >= chunk_size:
                start = 0
                while len(buffer) - start >= chunk_size:
                    yield buffer[start : start + chunk_size]
                    start += chunk_size
                buffer = buffer[start:]
        if buffer:
            yield buffer

    def _encode_chunk(self, chunk: list[Comparison]) -> object:
        """The chunk's wire payload in this run's dispatch format.

        Compact formats ship each entity's token payload once per chunk,
        keyed by entity id; pairs are id tuples.  A pair whose either side
        lacks interned ids falls back to string sets *for both sides*, so
        the worker always compares like with like.

        Pure encoding: ``pairs_dispatched`` accounting lives on the submit
        path in :meth:`run`, so re-encoding a chunk (supervised retry,
        tests poking the wire format) cannot double-count.
        """
        mode = self.dispatch_mode
        if mode == "profiles":
            return [(c.left, c.right) for c in chunk]
        if mode == "shm":
            return self._encode_shm_chunk(chunk)
        ids_table: dict = {}
        str_table: dict = {}
        pairs: list[tuple[EntityId, EntityId]] = []
        for c in chunk:
            left, right = c.left, c.right
            li, ri = left.eid, right.eid
            if mode == "ids" and left.token_ids is not None and right.token_ids is not None:
                if li not in ids_table:
                    ids_table[li] = pack_ids(left.token_ids)
                if ri not in ids_table:
                    ids_table[ri] = pack_ids(right.token_ids)
            else:
                if li not in str_table:
                    str_table[li] = left.tokens
                if ri not in str_table:
                    str_table[ri] = right.tokens
            pairs.append((li, ri))
        return (ids_table, str_table, pairs)

    def _encode_shm_chunk(self, chunk: list[Comparison]) -> object:
        """Rows, not data: the ``"shm"`` wire payload for one chunk.

        Each interned entity's packed id array is appended to the shared
        token column on its first appearance *ever* (the store memoizes
        eid → row; a changed token set gets a fresh row), so the payload
        is a flat ``uint64`` row-pair array plus a per-position fallback
        for entities without interned ids — shipped via protocol-5
        out-of-band pickling.
        """
        rows = array("Q")
        keys: list[tuple[EntityId, EntityId]] | None = (
            [] if self._ship_pair_keys else None
        )
        fallback: list[tuple[int, EntityId, EntityId]] = []
        str_table: dict = {}
        row_for = self._token_store.row_for  # type: ignore[union-attr]
        for position, c in enumerate(chunk):
            left, right = c.left, c.right
            if left.token_ids is not None and right.token_ids is not None:
                rows.append(row_for(left.eid, left.token_ids))
                rows.append(row_for(right.eid, right.token_ids))
                if keys is not None:
                    keys.append((left.eid, right.eid))
            else:
                li, ri = left.eid, right.eid
                if li not in str_table:
                    str_table[li] = left.tokens
                if ri not in str_table:
                    str_table[ri] = right.tokens
                fallback.append((position, li, ri))
        return _dumps_oob(
            (
                len(chunk),
                np.frombuffer(rows, dtype=np.uint64),
                keys,
                fallback,
                str_table,
            )
        )

    # -- pool lifecycle ------------------------------------------------

    def _acquire_pool(self):
        """The live worker pool, spawning one on first use (or after close)."""
        if self._pool is not None:
            self.pool_reuses += 1
            if self.registry.enabled and self.dispatch_mode == "shm":
                self.registry.counter(POOL_REUSES).inc()
            return self._pool
        self._pool = self._ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(
                self.config.comparator,
                self._worker_fault_spec,
                "partitioned" if self.partitioned_dispatch else self.dispatch_mode,
                self._shm_layout,
                self._partition_config,
            ),
        )
        self.pool_spawns += 1
        if self.registry.enabled and self.dispatch_mode == "shm":
            self.registry.counter(POOL_SPAWNS).inc()
        # GC / interpreter exit must not strand worker processes; detach()d
        # by the graceful shutdown paths.
        self._pool_finalizer = weakref.finalize(
            self, _terminate_pool, self._pool
        )
        return self._pool

    def _drop_pool_finalizer(self) -> None:
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None

    def _shutdown_pool(self) -> None:
        """Graceful release: workers finish queued tasks, then exit."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self._drop_pool_finalizer()
        pool.close()
        pool.join()

    def _discard_pool(self) -> None:
        """Hard release after a failed run (in-flight tasks are dropped)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self._drop_pool_finalizer()
        pool.terminate()
        pool.join()

    def close(self) -> None:
        """Release the worker pool.  The backend is caller-owned state and
        is *not* touched (a shm backend keeps serving other executors or a
        later pipeline; unlink it via its own lifecycle)."""
        self._shutdown_pool()

    def __enter__(self) -> "MultiprocessERPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, entities: Iterable[EntityDescription]) -> ERResult:
        """Process a finite input end to end; returns the usual summary."""
        if self.partitioned_dispatch:
            return self._run_partitioned(entities)
        start = time.perf_counter()
        matches: list[Match] = []
        count_in = [0]
        metrics_on = self.registry.enabled
        if metrics_on:
            entities_metric = self.registry.counter(ENTITIES)
            co_service = self.registry.histogram(
                STAGE_SERVICE_SECONDS, stage="co"
            )
            co_items = self.registry.counter(STAGE_ITEMS, stage="co")
            executed_metric = self.registry.counter(COMPARISONS_EXECUTED)

        def counted(stream: Iterable[EntityDescription]):
            for entity in stream:
                count_in[0] += 1
                self.entities_processed += 1
                if metrics_on:
                    entities_metric.inc()
                yield entity

        pool = self._acquire_pool()
        try:
            chunk_stream = self._chunks(counted(entities))
            pair_chunks: list[list[Comparison]] = []

            def payloads() -> Iterator[object]:
                for chunk in chunk_stream:
                    pair_chunks.append(chunk)
                    # Submit-path accounting (not in _encode_chunk): each
                    # unique pair counts exactly once, however often its
                    # chunk might be re-encoded.
                    self.pairs_dispatched += len(chunk)
                    yield self._encode_chunk(chunk)

            threshold = self._threshold
            last_yield = time.perf_counter()
            for index, scores in enumerate(pool.imap(_score_chunk, payloads())):
                chunk = pair_chunks[index]
                pair_chunks[index] = []  # release memory as results drain
                if metrics_on:
                    # Pool-side scoring is observed from the parent: the
                    # turnaround between successive result arrivals is the
                    # closest analogue of per-chunk service time here.
                    now = time.perf_counter()
                    co_service.observe(now - last_yield)
                    last_yield = now
                    co_items.inc(len(chunk))
                    executed_metric.inc(len(chunk))
                scored = []
                for comparison, (score, error) in zip(chunk, scores):
                    if error is not None:
                        score = self._rescore(comparison, error)
                        if score is None:
                            continue  # pair dead-lettered
                        if threshold is not None and score < threshold:
                            continue  # rescored, verified below threshold
                    elif score is None:
                        continue  # worker-verified non-match
                    scored.append(
                        ScoredComparison(comparison=comparison, similarity=score)
                    )
                # Classification in the parent (owner of the match store).
                anchor = chunk[0].left if chunk else None
                ok, found = self.supervisor.execute(
                    "cl",
                    self._fns["cl"],  # type: ignore[arg-type]
                    ScoredComparisons(profile=anchor, scored=scored),  # type: ignore[arg-type]
                )
                if ok:
                    matches.extend(found)
        except BaseException:
            # A mid-run failure can leave tasks queued on the pool; a
            # reused pool would interleave their late results into the
            # next run, so discard the workers and respawn on next use.
            self._discard_pool()
            raise
        if not self.persistent_pool:
            self._shutdown_pool()
        if metrics_on and self.dispatch_mode == "shm":
            backend = self.backend
            self.registry.gauge(SHM_BYTES).set(backend.shm_bytes())
            self.registry.gauge(SHM_SEGMENTS).set(len(backend.segment_names()))
            self.registry.gauge(SHM_ROWS).set(len(self._token_store))  # type: ignore[arg-type]

        result = ERResult(
            entities_processed=count_in[0],
            matches=matches,
            comparisons_generated=self.cg.generated,
            comparisons_after_cleaning=self.lm.materialized,
            blocks_pruned=self.bb.pruned_blocks,
            keys_ghosted=self.bg.ghosted_keys if self.bg is not None else 0,
            elapsed_seconds=time.perf_counter() - start,
            items_failed=self.supervisor.items_failed,
            retries=self.supervisor.retries_performed,
            dead_letters=list(self.supervisor.dead_letters),
        )
        if self.checker is not None:
            # ENTITIES counted admissions here, so expected == count_in.
            self.checker.finalize(result, expected_entities=count_in[0])
        return result

    def _run_partitioned(self, entities: Iterable[EntityDescription]) -> ERResult:
        """One increment under block-partitioned dispatch.

        The parent runs only the state-bearing stages (``dr``..``bg`` and
        candidate generation — block state is inherently serial), publishes
        each entity's candidate list to the shared membership column, and
        groups entities by their smallest blocking key.  The groups are
        bin-packed onto the workers by comparison count; each worker then
        replays cleaning, prefilter, scoring, and classification locally
        (see :func:`_score_partition`), and the parent merges.

        Candidate lists are resolved to token-column rows *at arrival
        time*, exactly when the sequential pipeline would materialize the
        partners — so a partner that re-arrives later in the same
        increment with changed tokens is compared against the version
        that was current when this entity arrived, bit-identically to
        every other executor.
        """
        start = time.perf_counter()
        matches: list[Match] = []
        count_in = [0]
        metrics_on = self.registry.enabled
        if metrics_on:
            entities_metric = self.registry.counter(ENTITIES)
            matches_metric = self.registry.counter(MATCHES)
            co_service = self.registry.histogram(
                STAGE_SERVICE_SECONDS, stage="co"
            )
            co_items = self.registry.counter(STAGE_ITEMS, stage="co")
            executed_metric = self.registry.counter(COMPARISONS_EXECUTED)
        tracer = self.tracer
        supervisor = self.supervisor
        profiles = self.backend.profiles
        match_store = self.backend.matches
        row_for = self._token_store.row_for  # type: ignore[union-attr]
        publish = self.backend.publish_membership
        cooccurrence = self.backend.cooccurrence if self.cc is not None else None
        cc_present = self.cc is not None
        #: blocking key → membership rows / summed comparison count.
        groups: dict[str, array] = {}
        group_costs: dict[str, int] = {}
        cleaned_total = 0
        pool = self._acquire_pool()
        try:
            for entity in entities:
                count_in[0] += 1
                self.entities_processed += 1
                if metrics_on:
                    entities_metric.inc()
                trace = None
                if tracer is not None:
                    seq = self._trace_seq
                    self._trace_seq += 1
                    trace = tracer.start(seq, entity.eid)
                message: object = entity
                ok = True
                for name in self._partition_front:
                    if trace is not None:
                        trace.record_start(name)
                    ok, message = supervisor.execute(
                        name, self._fns[name], message  # type: ignore[arg-type]
                    )
                    if trace is not None:
                        if ok:
                            trace.record_finish(name)
                        else:
                            trace.dead_letter(name)
                    if not ok:
                        break
                if not ok:
                    continue
                blocked = message
                # The partition anchor: the entity's smallest block (fewest
                # co-members, key as tiebreak).  Any deterministic choice
                # works — correctness needs only that the whole entity
                # lands in exactly one group.
                anchor = None
                if blocked.others:  # type: ignore[union-attr]
                    others = blocked.others  # type: ignore[union-attr]
                    anchor = min(
                        others, key=lambda key: (len(others[key]), key)
                    )
                if trace is not None:
                    trace.record_start("cg")
                ok, generated = supervisor.execute(
                    "cg", self._fns["cg"], blocked  # type: ignore[arg-type]
                )
                if trace is not None:
                    if ok:
                        trace.record_finish("cg")
                    else:
                        trace.dead_letter("cg")
                if not ok:
                    continue
                profile = generated.profile
                # lm's state duty (register the profile before lookups)
                # stays in the parent, as does publishing the entity's
                # token row so later arrivals can reference it.
                profiles.put(profile)
                own_row = (
                    row_for(profile.eid, profile.token_ids)
                    if profile.token_ids is not None
                    else -1
                )
                if trace is not None:
                    trace.complete()
                candidates = generated.candidates
                if not candidates:
                    continue
                if cooccurrence is not None:
                    # The cc stage's tally, maintained on its behalf.
                    cooccurrence.pairs_counted += len(candidates)
                record = None
                if own_row >= 0:
                    record = array("Q", (own_row,))
                    for j in candidates:
                        other = profiles.get(j)
                        if other is None or other.token_ids is None:
                            record = None
                            break
                        record.append(row_for(j, other.token_ids))
                if record is None:
                    # A pair without interned ids cannot ride the shared
                    # columns; finish this entity inline with sequential
                    # semantics (cc's per-entity counting must not split).
                    matches.extend(self._run_inline_tail(generated))
                    continue
                rows_of = groups.get(anchor)
                if rows_of is None:
                    rows_of = groups[anchor] = array("Q")
                rows_of.append(publish(record))
                group_costs[anchor] = group_costs.get(anchor, 0) + len(candidates)

            plan = plan_partitions(group_costs, self.workers)
            self.last_partition_plan = plan
            descriptors: list[array] = []
            for bin_keys in plan.bins:
                descriptor = array("Q")
                for key in bin_keys:
                    descriptor.extend(groups[key])
                if descriptor:
                    descriptors.append(descriptor)
            if metrics_on:
                self.registry.counter(PARTITIONS_DISPATCHED).inc(len(descriptors))
                self.registry.counter(PARTITION_PAIRS).inc(plan.total_cost)
                self.registry.gauge(PARTITION_GROUPS).set(plan.group_count)
                self.registry.gauge(PARTITION_IMBALANCE).set(plan.imbalance)
                self.registry.gauge(PARTITION_LARGEST_SHARE).set(
                    plan.largest_share
                )
            last_yield = time.perf_counter()
            for partition_matches, failures, stats in pool.imap(
                _score_partition,
                (
                    _dumps_oob((np.frombuffer(d, dtype=np.uint64),))
                    for d in descriptors
                ),
            ):
                scored_here = stats["cleaned"] - stats["prefiltered"]
                if metrics_on:
                    now = time.perf_counter()
                    co_service.observe(now - last_yield)
                    last_yield = now
                    co_items.inc(scored_here)
                    executed_metric.inc(scored_here)
                cleaned_total += stats["cleaned"]
                self.pairs_dispatched += scored_here
                self.pairs_prefiltered += stats["prefiltered"]
                for left, right, score in partition_matches:
                    match = Match(left=left, right=right, similarity=score)
                    if match_store.add(match):
                        matches.append(match)
                        if metrics_on:
                            matches_metric.inc()
                for left, right, error in failures:
                    match = self._heal_pair(left, right, error)
                    if match is not None and match_store.add(match):
                        matches.append(match)
                        if metrics_on:
                            matches_metric.inc()
        except BaseException:
            self._discard_pool()
            raise
        if not self.persistent_pool:
            self._shutdown_pool()
        # The cleaning/materialization the workers performed on the
        # stages' behalf, folded back into the canonical stage counters.
        if cleaned_total:
            _unwrap(self.lm).materialized += cleaned_total
            if cc_present:
                _unwrap(self.cc).retained += cleaned_total
        if metrics_on:
            backend = self.backend
            self.registry.gauge(SHM_BYTES).set(backend.shm_bytes())
            self.registry.gauge(SHM_SEGMENTS).set(len(backend.segment_names()))
            self.registry.gauge(SHM_ROWS).set(len(self._token_store))  # type: ignore[arg-type]
        result = ERResult(
            entities_processed=count_in[0],
            matches=matches,
            comparisons_generated=self.cg.generated,
            comparisons_after_cleaning=self.lm.materialized,
            blocks_pruned=self.bb.pruned_blocks,
            keys_ghosted=self.bg.ghosted_keys if self.bg is not None else 0,
            elapsed_seconds=time.perf_counter() - start,
            items_failed=self.supervisor.items_failed,
            retries=self.supervisor.retries_performed,
            dead_letters=list(self.supervisor.dead_letters),
        )
        if self.checker is not None:
            self.checker.finalize(result, expected_entities=count_in[0])
        return result

    def _run_inline_tail(self, generated) -> list[Match]:
        """cc → lm → co → cl in the parent for one entity.

        The partitioned path's escape hatch for profiles without interned
        token ids (no shared-column row to hand a worker).  Runs the real
        compiled stages under the supervisor, so counters, instrumentation
        and dead-lettering behave exactly as in the sequential pipeline.
        """
        stages: list[tuple[str, object]] = [
            (name, self._fns[name]) for name in ("cc", "lm") if name in self._fns
        ]
        stages.append(("co", self.compiled.get("co")))
        stages.append(("cl", self._fns["cl"]))
        message: object = generated
        for name, fn in stages:
            ok, message = self.supervisor.execute(name, fn, message)  # type: ignore[arg-type]
            if not ok:
                return []
        return list(message)  # type: ignore[arg-type]

    def _heal_pair(self, left: EntityId, right: EntityId, error: str) -> Match | None:
        """Parent-side rescue of a worker-failed pair (partitioned mode).

        Mirrors the chunked path's merge-loop healing: rebuild the
        comparison from the profile store (both sides were registered
        before their rows were published), retry with the parent's
        uninjected comparator, re-verify against the kernel threshold,
        and classify with the real classifier.
        """
        comparison = Comparison(
            left=self.backend.profiles.get(left),
            right=self.backend.profiles.get(right),
        )
        score = self._rescore(comparison, error)
        if score is None:
            return None  # dead-lettered
        if self._threshold is not None and score < self._threshold:
            return None
        return self.config.classifier.classify(
            ScoredComparison(comparison=comparison, similarity=score)
        )

    def _rescore(self, comparison: Comparison, first_error: str) -> float | None:
        """Retry a worker-failed pair in the parent; dead-letter on exhaust.

        The parent retries with its own (uninjected) comparator, so
        transient worker trouble heals here while genuinely poison pairs
        fail again and land in the dead-letter queue.
        """
        attempts = 1
        last_error = first_error
        for _ in range(self.supervisor.policy.retries_for("co")):
            self.supervisor.record_retry("co")
            attempts += 1
            try:
                return self.config.comparator.score(comparison.left, comparison.right)
            except Exception as exc:
                last_error = repr(exc)
        self.supervisor.record_failure("co", comparison, last_error, attempts)
        return None
