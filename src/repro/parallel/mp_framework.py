"""Multiprocess execution: true CPU parallelism for the comparison stage.

CPython threads share the GIL, so the thread framework in
:mod:`repro.parallel.framework` demonstrates the architecture but cannot
speed up pure-Python compute.  This module provides the complementary
executor: the state-bearing front of the pipeline (``f_dr`` through
``f_lm``) runs in the parent — block building is inherently serial anyway
— while the dominant bottleneck, the comparison stage ``f_co`` (Figure 6),
is offloaded to a pool of worker *processes* in micro-batches.
Classification stays in the parent, which owns the match store.

This mirrors how the paper's allocation concentrates workers on ``f_co``
(y is by far the largest share), implemented with data parallelism where
it is legal: scoring is pure and stateless, so comparisons can be
partitioned freely.

Results are identical to the sequential pipeline (the same comparisons are
scored; only scoring order varies, and the match store de-duplicates).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.comparison.comparator import TokenSetComparator
from repro.core.config import StreamERConfig
from repro.core.pipeline import ERResult
from repro.core.stages import (
    BlockBuildingStage,
    BlockGhostingStage,
    ClassificationStage,
    ComparisonCleaningStage,
    ComparisonGenerationStage,
    DataReadingStage,
    LoadManagementStage,
    ScoredComparisons,
)
from repro.errors import ConfigurationError
from repro.types import Comparison, EntityDescription, Match, Profile, ScoredComparison

# Worker-process state, installed once per worker by the pool initializer.
_worker_comparator: TokenSetComparator | None = None


def _init_worker(comparator: TokenSetComparator) -> None:
    global _worker_comparator
    _worker_comparator = comparator


def _score_chunk(
    chunk: list[tuple[Profile, Profile]],
) -> list[float]:
    """Score one micro-batch of profile pairs in a worker process."""
    assert _worker_comparator is not None, "worker not initialized"
    return [
        _worker_comparator.score(left, right) for left, right in chunk
    ]


@dataclass
class _Chunk:
    """A micro-batch of comparisons awaiting scores."""

    pairs: list[tuple[Profile, Profile]] = field(default_factory=list)


class MultiprocessERPipeline:
    """Stream ER with the comparison stage on a process pool.

    Parameters
    ----------
    config:
        The usual stream-ER configuration (the comparator is shipped to
        the workers once, at pool start; it must be picklable — the
        built-in comparators are).
    workers:
        Number of comparison worker processes (≥ 1).
    chunk_size:
        Comparisons per task message; larger amortizes IPC, smaller
        improves latency and load balance.
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        workers: int = 2,
        chunk_size: int = 256,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.config = config or StreamERConfig()
        self.workers = workers
        self.chunk_size = chunk_size
        cfg = self.config
        self.dr = DataReadingStage(cfg.profile_builder)
        self.bb = BlockBuildingStage(alpha=cfg.alpha, enabled=cfg.enable_block_cleaning)
        self.bg = BlockGhostingStage(beta=cfg.beta, enabled=cfg.enable_block_cleaning)
        self.cg = ComparisonGenerationStage(clean_clean=cfg.clean_clean)
        self.cc = ComparisonCleaningStage(enabled=cfg.enable_comparison_cleaning)
        self.lm = LoadManagementStage()
        self.cl = ClassificationStage(cfg.classifier)

    def _front(
        self, entities: Iterable[EntityDescription]
    ) -> Iterator[list[Comparison]]:
        """Run dr..lm in the parent, yielding per-entity comparison lists."""
        for entity in entities:
            profile = self.dr(entity)
            blocked = self.bg(self.bb(profile))
            cleaned = self.cc(self.cg(blocked))
            yield self.lm(cleaned).comparisons

    def _chunks(
        self, entities: Iterable[EntityDescription]
    ) -> Iterator[list[Comparison]]:
        """Regroup per-entity comparisons into pool-sized chunks."""
        buffer: list[Comparison] = []
        for comparisons in self._front(entities):
            buffer.extend(comparisons)
            while len(buffer) >= self.chunk_size:
                yield buffer[: self.chunk_size]
                buffer = buffer[self.chunk_size :]
        if buffer:
            yield buffer

    def run(self, entities: Iterable[EntityDescription]) -> ERResult:
        """Process a finite input end to end; returns the usual summary."""
        start = time.perf_counter()
        matches: list[Match] = []
        count_in = [0]

        def counted(stream: Iterable[EntityDescription]):
            for entity in stream:
                count_in[0] += 1
                yield entity

        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.config.comparator,),
        ) as pool:
            chunk_stream = self._chunks(counted(entities))
            pair_chunks: list[list[Comparison]] = []

            def payloads() -> Iterator[list[tuple[Profile, Profile]]]:
                for chunk in chunk_stream:
                    pair_chunks.append(chunk)
                    yield [(c.left, c.right) for c in chunk]

            for index, scores in enumerate(pool.imap(_score_chunk, payloads())):
                chunk = pair_chunks[index]
                pair_chunks[index] = []  # release memory as results drain
                scored = [
                    ScoredComparison(comparison=c, similarity=s)
                    for c, s in zip(chunk, scores)
                ]
                # Classification in the parent (owner of the match store).
                anchor = chunk[0].left if chunk else None
                found = self.cl(
                    ScoredComparisons(profile=anchor, scored=scored)  # type: ignore[arg-type]
                )
                matches.extend(found)

        return ERResult(
            entities_processed=count_in[0],
            matches=matches,
            comparisons_generated=self.cg.generated,
            comparisons_after_cleaning=self.cc.retained,
            blocks_pruned=self.bb.pruned_blocks,
            keys_ghosted=self.bg.ghosted_keys,
            elapsed_seconds=time.perf_counter() - start,
        )
