"""Fault injection for the parallel framework (and anything stage-shaped).

Chaos-testing harness behind the robustness layer: a
:class:`FaultInjector` wraps any stage function and makes it misbehave —
raise, stall, or corrupt its payload — for a *deterministic, seeded* subset
of items.  Determinism is the load-bearing property: whether an item is
faulty is decided by hashing ``(seed, stage, item key)``, never by call
order, so the same items fail no matter how threads or processes interleave
and differential tests can predict the dead-letter set exactly.

Usage in the executors::

    faults = {"co": FaultSpec(probability=0.2, seed=7)}
    pipeline = ParallelERPipeline(config, processes=8, faults=faults)
    result = pipeline.run(entities, timeout=60)
    result.dead_letter_ids  # exactly the seeded 20%, run after run

and in the discrete-event simulator via
``ServiceModel(failure_probability=...)``, so the Fig. 11/12 experiments
can be re-run under faults (see ``docs/robustness.md``).
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.core.plan import STAGE_ORDER
from repro.durability.wal import CrashPoint
from repro.errors import ConfigurationError, InjectedFault, SimulatedCrash
from repro.parallel.supervision import extract_entity_id

__all__ = [
    "CrashPoint",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "SimulatedCrash",
    "wrap_stages",
]

# CrashPoint / SimulatedCrash belong to this harness conceptually — they
# are the durability layer's fault hook, killing a run at a seeded WAL
# record index (optionally mid-record) instead of at a seeded item.  They
# live in repro.durability.wal because the writer consults them, and are
# re-exported here as the one-stop fault-injection namespace; arm one via
# StreamERPipeline(..., wal_dir=..., crash_point=CrashPoint(at_record=7)).

_MODES = ("raise", "delay", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one stage's injected misbehaviour.

    Parameters
    ----------
    probability:
        Fraction of distinct items that misbehave, decided by a seeded hash
        of the item key (order-independent).
    mode:
        ``"raise"`` throws :class:`~repro.errors.InjectedFault`; ``"delay"``
        sleeps ``delay_seconds`` before executing normally (for liveness /
        timeout tests); ``"corrupt"`` replaces the payload via ``corrupt``
        (default: ``None``) before executing, so the stage fails on garbage
        input the way it would on a malformed real-world description.
    transient_attempts:
        0 means the fault is *permanent* — every retry of a faulty item
        fails again.  ``k > 0`` means only the item's first ``k`` attempts
        fail; retry ``k+1`` succeeds (models transient flakiness).
    every_n:
        When set, overrides ``probability``: every ``n``-th *distinct* item
        reaching the injector is faulty (the classic "stage raises on every
        Nth item" scenario).  Counter-based, so under multi-worker stages
        the *set* of faulty items depends on arrival order, but their
        *count* does not.
    seed:
        Keys the hash; different seeds fault different item subsets.
    """

    probability: float = 1.0
    mode: str = "raise"
    delay_seconds: float = 0.05
    corrupt: Callable[[object], object] | None = None
    transient_attempts: int = 0
    every_n: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        if self.mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}")
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds cannot be negative")
        if self.transient_attempts < 0:
            raise ConfigurationError("transient_attempts cannot be negative")
        if self.every_n is not None and self.every_n < 1:
            raise ConfigurationError("every_n must be >= 1")

    def decide(self, stage: str, key: Hashable) -> bool:
        """Seeded, order-independent verdict for one item key."""
        digest = zlib.crc32(f"{self.seed}:{stage}:{key!r}".encode())
        return digest / 2**32 < self.probability


#: Stage name → fault specification, accepted by both executors.
FaultPlan = Mapping[str, FaultSpec]


class FaultInjector:
    """Wrap a stage function so a seeded subset of items misbehaves.

    The injector is a drop-in replacement for the stage callable and is
    thread-safe; per-key attempt counts implement transient faults, and the
    counters below feed the fault-injection tests:

    ``calls``
        total invocations (retries included);
    ``faults_injected``
        how many invocations misbehaved;
    ``faulted_keys``
        the distinct item keys decided faulty so far.
    """

    def __init__(
        self,
        fn: Callable[[object], object],
        spec: FaultSpec,
        stage: str = "stage",
        key_fn: Callable[[object], Hashable] | None = None,
    ) -> None:
        self.fn = fn
        self.spec = spec
        self.stage = stage
        self.key_fn = key_fn or (lambda payload: extract_entity_id(payload))
        self._lock = threading.Lock()
        self._decisions: dict[Hashable, bool] = {}
        self._attempts: dict[Hashable, int] = {}
        self._seen = 0
        self.calls = 0
        self.faults_injected = 0

    @property
    def faulted_keys(self) -> set:
        with self._lock:
            return {k for k, faulty in self._decisions.items() if faulty}

    def _decide(self, key: Hashable) -> bool:
        """Verdict for ``key``, memoized so retries see the same decision."""
        decision = self._decisions.get(key)
        if decision is None:
            self._seen += 1
            if self.spec.every_n is not None:
                decision = self._seen % self.spec.every_n == 0
            else:
                decision = self.spec.decide(self.stage, key)
            self._decisions[key] = decision
        return decision

    def __call__(self, payload: object) -> object:
        key = self.key_fn(payload)
        spec = self.spec
        with self._lock:
            self.calls += 1
            faulty = self._decide(key)
            attempt = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempt
            if faulty and spec.transient_attempts:
                faulty = attempt <= spec.transient_attempts
            if faulty:
                self.faults_injected += 1
        if not faulty:
            return self.fn(payload)
        if spec.mode == "raise":
            raise InjectedFault(
                f"injected fault at stage {self.stage!r} for item {key!r} "
                f"(attempt {attempt})"
            )
        if spec.mode == "delay":
            time.sleep(spec.delay_seconds)
            return self.fn(payload)
        corrupted = spec.corrupt(payload) if spec.corrupt is not None else None
        return self.fn(corrupted)


def wrap_stages(
    stage_fns: dict[str, Callable[[object], object]],
    faults: FaultPlan | None,
) -> dict[str, FaultInjector]:
    """Wrap (in place) every stage named in ``faults`` with an injector.

    Returns the injectors keyed by stage name so callers can inspect their
    counters after a run.  Unknown stage names raise — a misspelled stage
    would otherwise silently inject nothing.  The message distinguishes a
    canonical stage (``STAGE_ORDER``) whose node the plan dropped from a
    name that is not a stage at all, so a fault plan can't silently
    desynchronize from a renamed stage.
    """
    if not faults:
        return {}
    unknown = [name for name in faults if name not in stage_fns]
    if unknown:
        inactive = [name for name in unknown if name in STAGE_ORDER]
        detail = (
            f" ({inactive} are valid stages but not active in this plan)"
            if inactive
            else ""
        )
        raise ConfigurationError(
            f"fault plan names unknown stages {unknown}; "
            f"have {sorted(stage_fns)}{detail}"
        )
    injectors: dict[str, FaultInjector] = {}
    for name, spec in faults.items():
        injector = FaultInjector(stage_fns[name], spec, stage=name)
        stage_fns[name] = injector
        injectors[name] = injector
    return injectors
