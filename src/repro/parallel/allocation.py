"""Process allocation for the optimized framework (§IV-B).

Given measured per-stage times, assign P worker processes so every stage
completes in a comparable time: stages that cannot or need not be
parallelized (``dr``, ``bb+bp``, ``bg``) get exactly one process; the
remaining P − 3 are distributed over ``cg`` (z), ``cc`` (x), ``lm`` (v),
``co`` (y) and ``cl`` (v) by water-filling — each next process goes to the
stage with the largest remaining per-process time.  This reproduces the
paper's ``P = 3 + 2v + x + y + z`` scheme and, with the measured ratios
``T_co ≈ 2·T_cc ≈ 6·T_cg``, its example allocation (P=15 → v=1, x=3, y=6,
z=1).

The solver allocates over whatever stage list the executor's
:class:`~repro.core.plan.PipelinePlan` activated (optional nodes may be
dropped); by default it covers the full eight-stage ``STAGE_ORDER``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.plan import STAGE_ORDER
from repro.errors import ConfigurationError

#: The stateful serializer always runs on exactly one process (data
#: parallelism over the block-collection state would be needed to replicate
#: it, which the paper leaves aside).
FIXED_STAGES: frozenset[str] = frozenset({"bb+bp"})

#: Stages eligible for replication.  The paper's formula additionally pins
#: ``dr`` and ``bg`` to one process because they are the cheapest stages on
#: its Scala substrate; the water-filling solver below reduces to exactly
#: that allocation under the paper's measured times (they never receive a
#: second process before the bottlenecks are saturated), while also
#: handling substrates where, e.g., data reading is relatively expensive.
SCALABLE_STAGES: tuple[str, ...] = ("dr", "bg", "cg", "cc", "lm", "co", "cl")


def allocate_processes(
    stage_seconds: dict[str, float],
    total_processes: int,
    stages: Sequence[str] = STAGE_ORDER,
) -> dict[str, int]:
    """Distribute ``total_processes`` over the active ``stages``.

    ``stage_seconds`` maps stage names (see ``STAGE_ORDER``) to measured
    total times of a sequential run; entries for inactive stages are
    ignored.  Requires at least one process per active stage.
    """
    if not stages:
        raise ConfigurationError("stages must not be empty")
    if total_processes < len(stages):
        raise ConfigurationError(
            f"need at least {len(stages)} processes, got {total_processes}"
        )
    missing = [s for s in stages if s not in stage_seconds]
    if missing:
        raise ConfigurationError(f"missing stage times for: {missing}")

    scalable = [s for s in SCALABLE_STAGES if s in stages]
    allocation = {stage: 1 for stage in stages}
    spare = total_processes - len(stages)
    for _ in range(spare):
        # Water-filling: relieve the stage with the worst per-process time.
        worst = max(
            scalable,
            key=lambda s: stage_seconds[s] / allocation[s],
        )
        allocation[worst] += 1
    return allocation


def bottleneck_time(stage_seconds: dict[str, float], allocation: dict[str, int]) -> float:
    """The limiting per-stage time under an allocation (lower is better)."""
    return max(stage_seconds[s] / allocation[s] for s in allocation)


@dataclass(frozen=True)
class PartitionPlan:
    """The result of :func:`plan_partitions`: groups assigned to bins.

    ``bins[i]`` holds the group keys bin ``i`` owns; ``bin_costs[i]`` their
    summed cost.  Bins may be empty (fewer groups than bins, or heavily
    skewed costs); the executor simply dispatches nothing for them.
    """

    bins: tuple[tuple[Hashable, ...], ...]
    bin_costs: tuple[int, ...]
    group_count: int
    total_cost: int

    @property
    def used_bins(self) -> int:
        """Bins that received any work."""
        return sum(1 for cost in self.bin_costs if cost)

    @property
    def imbalance(self) -> float:
        """Largest bin cost over the ideal (total/bins) share; 1.0 = perfect.

        This is the makespan ratio: wall-clock is bounded by the largest
        bin, so an imbalance of 2.0 means half the theoretical speedup.
        """
        if self.total_cost <= 0 or not self.bin_costs:
            return 1.0
        return max(self.bin_costs) * len(self.bin_costs) / self.total_cost

    @property
    def largest_share(self) -> float:
        """Fraction of all work held by the largest bin (skew indicator)."""
        if self.total_cost <= 0 or not self.bin_costs:
            return 0.0
        return max(self.bin_costs) / self.total_cost


def plan_partitions(
    group_costs: Mapping[Hashable, int], bins: int
) -> PartitionPlan:
    """Greedy bin-packing of blocking-key groups onto worker bins.

    Longest-processing-time-first: groups are sorted by descending cost
    and each is placed on the currently least-loaded bin — the classic
    4/3-approximation of makespan scheduling, and the load-balancing move
    of Kolb/Thor/Rahm's MapReduce sorted-neighborhood blocking (there,
    skewed blocks are split across reducers; here, whole key groups are
    packed because a group must stay with one worker to keep the cleaning
    count filter local).  Deterministic: ties in cost break on the key's
    repr, ties in load on bin index.
    """
    if bins < 1:
        raise ConfigurationError("bins must be >= 1")
    order = sorted(group_costs.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    assigned: list[list[Hashable]] = [[] for _ in range(bins)]
    loads = [0] * bins
    heap = [(0, index) for index in range(bins)]
    for key, cost in order:
        load, index = heapq.heappop(heap)
        assigned[index].append(key)
        loads[index] = load + cost
        heapq.heappush(heap, (load + cost, index))
    return PartitionPlan(
        bins=tuple(tuple(keys) for keys in assigned),
        bin_costs=tuple(loads),
        group_count=len(group_costs),
        total_cost=sum(group_costs.values()),
    )


def paper_example_times() -> dict[str, float]:
    """The stage-time ratios reported for D_dbpedia in §IV-B.

    All phases except ``co`` and ``cc`` take a comparable time (normalized
    to 1.0 here); ``T_cc ≈ 3·T_cg`` and ``T_co ≈ 2·T_cc``.
    """
    base = 1.0
    t_cg = base
    t_cc = 3.0 * t_cg
    t_co = 2.0 * t_cc
    return {
        "dr": base, "bb+bp": base, "bg": base, "cg": t_cg,
        "cc": t_cc, "lm": base, "co": t_co, "cl": base,
    }
