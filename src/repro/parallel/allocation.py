"""Process allocation for the optimized framework (§IV-B).

Given measured per-stage times, assign P worker processes so every stage
completes in a comparable time: stages that cannot or need not be
parallelized (``dr``, ``bb+bp``, ``bg``) get exactly one process; the
remaining P − 3 are distributed over ``cg`` (z), ``cc`` (x), ``lm`` (v),
``co`` (y) and ``cl`` (v) by water-filling — each next process goes to the
stage with the largest remaining per-process time.  This reproduces the
paper's ``P = 3 + 2v + x + y + z`` scheme and, with the measured ratios
``T_co ≈ 2·T_cc ≈ 6·T_cg``, its example allocation (P=15 → v=1, x=3, y=6,
z=1).

The solver allocates over whatever stage list the executor's
:class:`~repro.core.plan.PipelinePlan` activated (optional nodes may be
dropped); by default it covers the full eight-stage ``STAGE_ORDER``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.plan import STAGE_ORDER
from repro.errors import ConfigurationError

#: The stateful serializer always runs on exactly one process (data
#: parallelism over the block-collection state would be needed to replicate
#: it, which the paper leaves aside).
FIXED_STAGES: frozenset[str] = frozenset({"bb+bp"})

#: Stages eligible for replication.  The paper's formula additionally pins
#: ``dr`` and ``bg`` to one process because they are the cheapest stages on
#: its Scala substrate; the water-filling solver below reduces to exactly
#: that allocation under the paper's measured times (they never receive a
#: second process before the bottlenecks are saturated), while also
#: handling substrates where, e.g., data reading is relatively expensive.
SCALABLE_STAGES: tuple[str, ...] = ("dr", "bg", "cg", "cc", "lm", "co", "cl")


def allocate_processes(
    stage_seconds: dict[str, float],
    total_processes: int,
    stages: Sequence[str] = STAGE_ORDER,
) -> dict[str, int]:
    """Distribute ``total_processes`` over the active ``stages``.

    ``stage_seconds`` maps stage names (see ``STAGE_ORDER``) to measured
    total times of a sequential run; entries for inactive stages are
    ignored.  Requires at least one process per active stage.
    """
    if not stages:
        raise ConfigurationError("stages must not be empty")
    if total_processes < len(stages):
        raise ConfigurationError(
            f"need at least {len(stages)} processes, got {total_processes}"
        )
    missing = [s for s in stages if s not in stage_seconds]
    if missing:
        raise ConfigurationError(f"missing stage times for: {missing}")

    scalable = [s for s in SCALABLE_STAGES if s in stages]
    allocation = {stage: 1 for stage in stages}
    spare = total_processes - len(stages)
    for _ in range(spare):
        # Water-filling: relieve the stage with the worst per-process time.
        worst = max(
            scalable,
            key=lambda s: stage_seconds[s] / allocation[s],
        )
        allocation[worst] += 1
    return allocation


def bottleneck_time(stage_seconds: dict[str, float], allocation: dict[str, int]) -> float:
    """The limiting per-stage time under an allocation (lower is better)."""
    return max(stage_seconds[s] / allocation[s] for s in allocation)


def paper_example_times() -> dict[str, float]:
    """The stage-time ratios reported for D_dbpedia in §IV-B.

    All phases except ``co`` and ``cc`` take a comparable time (normalized
    to 1.0 here); ``T_cc ≈ 3·T_cg`` and ``T_co ≈ 2·T_cc``.
    """
    base = 1.0
    t_cg = base
    t_cc = 3.0 * t_cg
    t_co = 2.0 * t_cc
    return {
        "dr": base, "bb+bp": base, "bg": base, "cg": t_cg,
        "cc": t_cc, "lm": base, "co": t_co, "cl": base,
    }
