"""Task-parallel framework: allocation, executors, supervision, simulator."""

from repro.parallel.allocation import (
    FIXED_STAGES,
    SCALABLE_STAGES,
    PartitionPlan,
    allocate_processes,
    bottleneck_time,
    paper_example_times,
    plan_partitions,
)
from repro.parallel.calibration import calibrate_service_model, default_simulator_config
from repro.parallel.faults import FaultInjector, FaultPlan, FaultSpec, wrap_stages
from repro.parallel.framework import ParallelERPipeline, ParallelRunResult
from repro.parallel.mp_framework import (
    MultiprocessERPipeline,
    dispatch_mode,
    negotiate_dispatch_mode,
    negotiate_partitioned_dispatch,
)
from repro.parallel.supervision import Supervisor, extract_entity_id, format_liveness
from repro.parallel.simulator import (
    PipelineSimulator,
    ServiceModel,
    SimulationResult,
    SimulationTrace,
    SimulatorConfig,
    simulate_speedup,
)

__all__ = [
    "allocate_processes",
    "bottleneck_time",
    "paper_example_times",
    "plan_partitions",
    "PartitionPlan",
    "FIXED_STAGES",
    "SCALABLE_STAGES",
    "ParallelERPipeline",
    "ParallelRunResult",
    "MultiprocessERPipeline",
    "dispatch_mode",
    "negotiate_dispatch_mode",
    "negotiate_partitioned_dispatch",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "wrap_stages",
    "Supervisor",
    "extract_entity_id",
    "format_liveness",
    "calibrate_service_model",
    "default_simulator_config",
    "PipelineSimulator",
    "ServiceModel",
    "SimulatorConfig",
    "SimulationResult",
    "SimulationTrace",
    "simulate_speedup",
]
