"""Stage supervision: retries, dead-letter routing, liveness reporting.

The paper's framework (Fig. 5) assumes every stage function returns; real
dynamic-data deployments see poison entities — malformed descriptions that
make a stage raise.  Without supervision one raising worker dies silently,
its pool never forwards the ``_STOP`` sentinels, and ``join()`` deadlocks.
The :class:`Supervisor` gives every worker a uniform failure protocol:

* each item is executed under the :class:`~repro.core.config.SupervisionPolicy`
  (bounded retries with exponential backoff, skipped for stages whose state
  mutation is not idempotent);
* items that exhaust their retry budget become :class:`~repro.types.DeadLetter`
  records in a thread-safe queue surfaced on the run result — the pipeline
  keeps flowing and the surviving items are unaffected;
* counters (retries performed, failures per stage) are exposed for
  monitoring snapshots.

The module is executor-agnostic: the thread framework, the multiprocess
executor, and the sequential pipeline's dead-letter mode all route failures
through the same records.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.core.config import SupervisionPolicy
from repro.observability.instrument import DEAD_LETTERS, RETRIES
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.types import DeadLetter, EntityId, pair_key


def extract_entity_id(payload: object) -> EntityId | None:
    """Best-effort entity identifier of any inter-stage message.

    Every message type of the pipeline either *is* the entity
    (``EntityDescription`` / ``Profile``, both carrying ``eid``) or wraps the
    anchoring profile (``BlockedEntity`` … ``ScoredComparisons``, carrying
    ``profile.eid``).  Unknown payloads yield ``None`` rather than raising —
    the supervisor must never fail while recording a failure.
    """
    eid = getattr(payload, "eid", None)
    if eid is not None:
        return eid
    profile = getattr(payload, "profile", None)
    if profile is not None:
        return getattr(profile, "eid", None)
    left = getattr(payload, "left", None)
    right = getattr(payload, "right", None)
    if left is not None and right is not None:
        # A Comparison: identify the dead letter by its canonical pair key.
        lid, rid = getattr(left, "eid", None), getattr(right, "eid", None)
        if lid is not None and rid is not None:
            return pair_key(lid, rid)
    return None


class Supervisor:
    """Thread-safe failure collector shared by all workers of one pipeline.

    With an enabled metrics ``registry``, retries and dead letters are
    additionally counted into the shared metric vocabulary
    (``er_retries_total{stage}`` / ``er_dead_letters_total{stage}``), so
    every supervised executor reports failures the same way.
    """

    def __init__(
        self,
        policy: SupervisionPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or SupervisionPolicy()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._lock = threading.Lock()
        self.dead_letters: list[DeadLetter] = []
        self.retries_performed = 0
        self.failures_by_stage: dict[str, int] = {}

    @property
    def items_failed(self) -> int:
        return len(self.dead_letters)

    def record_retry(self, stage: str) -> None:
        with self._lock:
            self.retries_performed += 1
        if self.registry.enabled:
            self.registry.counter(RETRIES, stage=stage).inc()

    def record_failure(
        self, stage: str, payload: object, error: BaseException | str, attempts: int
    ) -> DeadLetter:
        """Route one exhausted item to the dead-letter queue."""
        letter = DeadLetter(
            stage=stage,
            entity_id=extract_entity_id(payload),
            error=error if isinstance(error, str) else repr(error),
            attempts=attempts,
        )
        with self._lock:
            self.dead_letters.append(letter)
            self.failures_by_stage[stage] = self.failures_by_stage.get(stage, 0) + 1
        if self.registry.enabled:
            self.registry.counter(DEAD_LETTERS, stage=stage).inc()
        return letter

    def execute(
        self, stage: str, fn: Callable[[object], object], payload: object
    ) -> tuple[bool, object]:
        """Run ``fn(payload)`` under the policy.

        Returns ``(True, result)`` on (eventual) success, or
        ``(False, None)`` after the item was dead-lettered.  Never raises
        from a stage-function failure — that is the whole point.
        """
        retries_allowed = self.policy.retries_for(stage)
        attempt = 0
        while True:
            attempt += 1
            try:
                return True, fn(payload)
            except Exception as exc:
                if attempt <= retries_allowed:
                    self.record_retry(stage)
                    delay = self.policy.backoff_for(attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self.record_failure(stage, payload, exc, attempt)
                return False, None


def format_liveness(report: dict[str, dict[str, int]]) -> str:
    """Render a per-stage liveness report into one diagnostic line per stage.

    ``report`` maps stage name → ``{"workers", "alive", "active", "queued"}``
    (see ``ParallelERPipeline.liveness_report``).  Used in the message of
    :class:`~repro.errors.PipelineStoppedError` when a timed ``join`` fires.
    """
    lines = []
    for stage, stats in report.items():
        lines.append(
            f"  {stage}: {stats['alive']}/{stats['workers']} threads alive, "
            f"{stats['active']} not yet shut down, {stats['queued']} queued"
        )
    return "\n".join(lines)
