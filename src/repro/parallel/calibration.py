"""Calibrating the simulator from real measurements.

The simulator is only as honest as its inputs; this module owns the one
supported calibration path: run the *instrumented sequential pipeline*
over real (or realistic) entities, convert its per-stage totals into
per-entity means, and derive the default machine parameters the
reproduction uses everywhere (per-message overhead = 5% of the mean
per-entity cost, buffer capacity 16 — the Akka Streams default).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import StreamERConfig
from repro.core.pipeline import StreamERPipeline
from repro.core.stages import STAGE_ORDER
from repro.errors import ConfigurationError
from repro.parallel.simulator import ServiceModel, SimulatorConfig
from repro.types import EntityDescription


def calibrate_service_model(
    entities: Sequence[EntityDescription],
    config: StreamERConfig,
    cv: float = 1.0,
    seed: int = 2021,
) -> ServiceModel:
    """Measure per-stage service times by running the real pipeline.

    Returns a :class:`ServiceModel` whose per-stage means are the measured
    totals divided by the number of entities, with lognormal variability
    of coefficient ``cv`` around them.
    """
    if not entities:
        raise ConfigurationError("need at least one entity to calibrate")
    pipeline = StreamERPipeline(config, instrument=True)
    pipeline.process_many(entities)
    n = len(entities)
    means = {
        stage: pipeline.timings.seconds.get(stage, 0.0) / n for stage in STAGE_ORDER
    }
    return ServiceModel(mean_seconds=means, cv=cv, seed=seed)


def default_simulator_config(
    service: ServiceModel,
    micro_batch_size: int = 1,
    cores: int = 16,
) -> SimulatorConfig:
    """The reproduction's standard machine model for a service profile.

    Per-message overhead is 5% of the mean per-entity cost; plain runs use
    buffer capacity 16, micro-batched runs 1.5× the batch size (batches
    must be able to form).
    """
    capacity = 16 if micro_batch_size <= 1 else max(16, int(micro_batch_size * 1.5))
    return SimulatorConfig(
        cores=cores,
        comm_overhead=0.05 * service.mean_total(),
        buffer_capacity=capacity,
        micro_batch_size=micro_batch_size,
    )
