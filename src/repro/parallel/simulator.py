"""Discrete-event simulation of the task-parallel framework.

The paper evaluates parallel speedup (Fig. 11) and streaming latency /
throughput (Figs. 12–13) on a 16-core server driving up to 100 000
descriptions per second — neither the core count nor the rate is reachable
in wall-clock time on this reproduction box.  The simulator regenerates
those experiments from first principles: it models the exact architecture
of §IV (eight stages, per-stage worker pools, bounded buffers with
backpressure, per-message communication overhead, optional micro-batch
aggregation) on a machine with a fixed number of cores, driven by
*measured* per-stage service times from a real sequential run.

The phenomena of the paper's figures are queueing effects, and all of them
emerge here:

* at P = 8 the pipeline barely beats sequential execution (communication
  overhead + bottleneck stages);
* micro-batching amortizes the overhead and smooths service variability,
  so MPP consistently beats PP;
* speedup peaks once the bottleneck stages are balanced (around P = 19)
  and stagnates when workers exceed the physical cores;
* under overload the output throughput stabilizes near the system's
  service rate while latency stays bounded (ingestion is backpressured).

Determinism: service times are sampled from a lognormal whose RNG is keyed
on (seed, item, stage), so results are independent of event ordering.
"""

from __future__ import annotations

import heapq
import math
import random
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.plan import STAGE_ORDER, PipelinePlan
from repro.errors import ConfigurationError
from repro.invariants.checker import InvariantChecker
from repro.observability.instrument import (
    DEAD_LETTERS,
    ENTITIES,
    ENTITY_LATENCY_SECONDS,
    QUEUE_DEPTH,
    STAGE_ITEMS,
    STAGE_SERVICE_SECONDS,
    declare_pipeline_metrics,
)
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry


@dataclass(frozen=True)
class ServiceModel:
    """Per-stage service-time distributions.

    ``mean_seconds`` maps stage name → mean per-entity service time
    (typically ``measured stage total / number of entities`` from an
    instrumented sequential run).  Times are lognormal with coefficient of
    variation ``cv``; a small fraction of entities (``spike_probability``)
    are ``spike_factor`` times slower — the CPU-intensive stream segments
    behind the paper's latency peaks.

    ``failure_probability`` injects faults: each (item, stage) service
    independently fails with this probability (deterministic in the seed,
    like the service times), and the item is dead-lettered at that stage —
    it consumed the worker for the full sampled service time but is not
    forwarded downstream.  This re-runs the Fig. 11/12 experiments under
    poison-entity conditions; see ``docs/robustness.md``.
    """

    mean_seconds: dict[str, float]
    cv: float = 1.0
    spike_probability: float = 0.005
    spike_factor: float = 12.0
    seed: int = 2021
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        missing = [s for s in STAGE_ORDER if s not in self.mean_seconds]
        if missing:
            raise ConfigurationError(f"missing service means for stages: {missing}")
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ConfigurationError("failure_probability must be in [0, 1]")

    def fails(self, item: int, stage: str) -> bool:
        """Deterministic fault verdict for (item, stage)."""
        if self.failure_probability <= 0.0:
            return False
        key = zlib.crc32(f"{self.seed}:{item}:{stage}:fault".encode())
        return random.Random(key).random() < self.failure_probability

    def mean_total(self) -> float:
        """Mean end-to-end work per entity (the sequential per-item cost)."""
        return sum(self.mean_seconds[s] for s in STAGE_ORDER)

    def sample(self, item: int, stage: str) -> float:
        """Deterministic lognormal sample for (item, stage)."""
        mean = self.mean_seconds[stage]
        if mean <= 0.0:
            return 0.0
        key = zlib.crc32(f"{self.seed}:{item}:{stage}".encode())
        rng = random.Random(key)
        if self.cv > 0.0:
            sigma2 = math.log(1.0 + self.cv * self.cv)
            mu = math.log(mean) - sigma2 / 2.0
            value = rng.lognormvariate(mu, math.sqrt(sigma2))
        else:
            value = mean
        if rng.random() < self.spike_probability:
            value *= self.spike_factor
        return value

    def sequential_makespan(self, n_items: int) -> float:
        """Exact simulated-sequential runtime over ``n_items`` entities."""
        return sum(
            self.sample(item, stage)
            for item in range(n_items)
            for stage in STAGE_ORDER
        )


@dataclass(frozen=True)
class SimulatorConfig:
    """Machine and framework parameters of the simulation.

    ``comm_overhead`` is the per-message hand-off cost between stages (actor
    mailbox + serialization in the Akka implementation); micro-batching
    pays it once per batch.  ``buffer_capacity`` bounds each inter-stage
    queue (in messages), providing backpressure.  ``micro_batch_size`` = 1
    is the plain parallel pipeline (PP); > 1 enables the aggregation stages
    of the micro-batched variant (MPP), which greedily groups whatever is
    queued, up to the limit — the behaviour of a groupedWithin(100, 10 ms)
    aggregator under load.
    """

    cores: int = 16
    comm_overhead: float = 0.0
    buffer_capacity: int = 8
    micro_batch_size: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("need at least one core")
        if self.buffer_capacity < 1:
            raise ConfigurationError("buffer capacity must be >= 1")
        if self.micro_batch_size < 1:
            raise ConfigurationError("micro batch size must be >= 1")
        if self.comm_overhead < 0:
            raise ConfigurationError("comm overhead cannot be negative")


@dataclass
class SimulationResult:
    """Outcome of one simulated run.

    With a faulty :class:`ServiceModel`, ``dead_letters`` lists
    ``(item, stage)`` for every item dropped mid-pipeline; such items have
    no completion time and no latency.
    """

    makespan: float
    completion_times: list[float]
    latencies: list[float]
    admitted: int
    stage_busy_seconds: dict[str, float] = field(default_factory=dict)
    trace: "SimulationTrace | None" = None
    items_failed: int = 0
    dead_letters: list[tuple[int, str]] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Average completions per second over the whole run."""
        return len(self.completion_times) / self.makespan if self.makespan > 0 else 0.0


@dataclass
class SimulationTrace:
    """Per-item, per-stage timing breakdown (opt-in; memory ∝ items × stages).

    For every item and stage: time spent *waiting* in the stage's queue and
    time in *service*.  This is the instrument behind the latency-peak
    analysis: the paper observes occasional latency spikes (Fig. 12) and
    leaves their attribution to future work; the trace attributes each
    slow item's end-to-end latency to the stage where it waited or served
    longest.
    """

    wait_seconds: list[dict[str, float]]
    service_seconds: list[dict[str, float]]

    def item_latency_breakdown(self, item: int) -> dict[str, float]:
        """Wait + service per stage for one item."""
        out: dict[str, float] = {}
        for stage, w in self.wait_seconds[item].items():
            out[stage] = out.get(stage, 0.0) + w
        for stage, s in self.service_seconds[item].items():
            out[stage] = out.get(stage, 0.0) + s
        return out

    def dominant_stage(self, item: int) -> str:
        """The stage responsible for most of the item's latency."""
        breakdown = self.item_latency_breakdown(item)
        return max(breakdown, key=lambda s: breakdown[s]) if breakdown else ""

    def peak_attribution(
        self, latencies: Sequence[float], quantile: float = 0.99
    ) -> dict[str, int]:
        """For the slowest (1−quantile) items: count of dominant stages."""
        if not latencies:
            return {}
        ordered = sorted(range(len(latencies)), key=lambda i: latencies[i])
        cut = int(len(ordered) * quantile)
        peaks = ordered[cut:] or ordered[-1:]
        counts: dict[str, int] = {}
        for item in peaks:
            stage = self.dominant_stage(item)
            counts[stage] = counts.get(stage, 0) + 1
        return counts

    def mean_wait_by_stage(self) -> dict[str, float]:
        """Average queue wait per stage over all items."""
        sums: dict[str, float] = {}
        for per_item in self.wait_seconds:
            for stage, w in per_item.items():
                sums[stage] = sums.get(stage, 0.0) + w
        n = max(len(self.wait_seconds), 1)
        return {stage: total / n for stage, total in sums.items()}


class _Stage:
    __slots__ = (
        "name", "workers", "busy", "queue", "capacity",
        "blocked", "busy_seconds", "next",
    )

    def __init__(self, name: str, workers: int, capacity: int) -> None:
        self.name = name
        self.workers = workers
        self.busy = 0
        self.queue: deque[int] = deque()
        self.capacity = capacity
        # Items finished upstream but waiting for queue space here:
        # list of (upstream stage, items) tuples with a blocked worker each.
        self.blocked: deque[tuple["_Stage", list[int]]] = deque()
        self.busy_seconds = 0.0
        self.next: "_Stage | None" = None

    def space(self) -> int:
        return self.capacity - len(self.queue)


class PipelineSimulator:
    """Event-driven simulator of the parallel framework's stage graph.

    The simulated topology comes from a
    :class:`~repro.core.plan.PipelinePlan` — the same declarative graph the
    real executors compile — so disabling an optional stage via the config
    drops its node from the simulation exactly as it does everywhere else.
    Without an explicit ``plan`` the full eight-stage graph is simulated.

    With an enabled metrics ``registry``, runs emit the shared metric
    vocabulary (see ``docs/observability.md``) — service times, item
    counts, queue depths, dead letters and end-to-end latency, all in
    *simulated* seconds.  The comparison/match counters the real stages
    produce stay zero-valued here: the simulator moves abstract items, not
    comparisons.

    With an enabled invariant ``checker``, every run is verified against
    the simulation-scope invariants (item conservation, non-negative
    times) before its result is returned.
    """

    def __init__(
        self,
        allocation: dict[str, int],
        service: ServiceModel,
        config: SimulatorConfig | None = None,
        plan: PipelinePlan | None = None,
        registry: MetricsRegistry | None = None,
        checker: InvariantChecker | None = None,
    ) -> None:
        self.plan = plan
        self.stage_names: tuple[str, ...] = (
            plan.stage_names() if plan is not None else STAGE_ORDER
        )
        missing = [s for s in self.stage_names if s not in allocation]
        if missing:
            raise ConfigurationError(f"allocation missing stages: {missing}")
        self.allocation = dict(allocation)
        self.service = service
        self.config = config or SimulatorConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.checker = checker if (checker is not None and checker.enabled) else None
        if self.registry.enabled:
            declare_pipeline_metrics(self.registry, self.stage_names)

    # The simulation core ------------------------------------------------

    def run(self, arrival_times: Sequence[float], trace: bool = False) -> SimulationResult:
        """Simulate processing items arriving at the given times.

        For batch runs pass ``[0.0] * n``; for a source of rate λ pass
        ``[i / λ for i in range(n)]``.  Latency is measured from first
        service start (the source is backpressured by the first stage's
        bounded buffer, so under overload admission waits — as in the
        Akka implementation — and per-entity processing latency stays
        meaningful).

        With ``trace=True`` the result carries a :class:`SimulationTrace`
        with per-item, per-stage wait and service times (memory grows with
        items × stages — keep runs modest).
        """
        cfg = self.config
        stages = [
            _Stage(name, self.allocation[name], cfg.buffer_capacity)
            for name in self.stage_names
        ]
        for a, b in zip(stages, stages[1:]):
            a.next = b
        first = stages[0]

        metrics_on = self.registry.enabled
        if metrics_on:
            service_hist = {
                s.name: self.registry.histogram(STAGE_SERVICE_SECONDS, stage=s.name)
                for s in stages
            }
            items_ctr = {
                s.name: self.registry.counter(STAGE_ITEMS, stage=s.name)
                for s in stages
            }
            depth_gauge = {
                s.name: self.registry.gauge(QUEUE_DEPTH, stage=s.name)
                for s in stages
            }
            entities_ctr = self.registry.counter(ENTITIES)
            latency_hist = self.registry.histogram(ENTITY_LATENCY_SECONDS)

        n = len(arrival_times)
        start_service = [-1.0] * n
        completion = [-1.0] * n
        cores_busy = 0
        clock = 0.0
        # Pending arrivals: consumed into the first stage's queue under
        # backpressure (the "source").
        pending = deque(range(n))
        events: list[tuple[float, int, str, object]] = []
        seq = 0
        enqueue_time: dict[str, dict[int, float]] = (
            {s.name: {} for s in stages} if trace else {}
        )
        wait_rec: list[dict[str, float]] = [dict() for _ in range(n)] if trace else []
        service_rec: list[dict[str, float]] = [dict() for _ in range(n)] if trace else []

        def enqueue(stage: _Stage, item: int) -> None:
            stage.queue.append(item)
            if metrics_on:
                depth_gauge[stage.name].set(len(stage.queue))
            if trace:
                # Items blocked in an upstream worker were pre-registered at
                # the moment they finished upstream service; keep that time.
                enqueue_time[stage.name].setdefault(item, clock)

        def push_event(t: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, payload))
            seq += 1

        # Arrival events just mark items as available to the source.
        available = 0
        for i, t in enumerate(arrival_times):
            push_event(t, "arrive", i)

        def admit() -> None:
            """Move available source items into the first queue (bounded)."""
            nonlocal available
            while available > 0 and first.space() > 0 and pending:
                enqueue(first, pending.popleft())
                available -= 1

        def start_services() -> None:
            """Fixpoint scheduler: start every service that can start."""
            nonlocal cores_busy
            progress = True
            while progress:
                progress = False
                admit()
                for stage in stages:
                    # Resolve blocked upstream pushes first: frees workers.
                    while stage.blocked and stage.space() >= 1:
                        upstream, items = stage.blocked[0]
                        take = min(stage.space(), len(items))
                        for _ in range(take):
                            enqueue(stage, items.pop(0))
                        if not items:
                            stage.blocked.popleft()
                            upstream.busy -= 1
                            progress = True
                    while (
                        stage.queue
                        and stage.busy < stage.workers
                        and cores_busy < cfg.cores
                    ):
                        take = min(cfg.micro_batch_size, len(stage.queue))
                        batch = [stage.queue.popleft() for _ in range(take)]
                        samples = [
                            self.service.sample(item, stage.name) for item in batch
                        ]
                        duration = cfg.comm_overhead + sum(samples)
                        if metrics_on:
                            depth_gauge[stage.name].set(len(stage.queue))
                            items_ctr[stage.name].inc(len(batch))
                            hist = service_hist[stage.name]
                            share = cfg.comm_overhead / len(batch)
                            for sample in samples:
                                hist.observe(sample + share)
                        if trace:
                            comm_share = cfg.comm_overhead / len(batch)
                            enq = enqueue_time[stage.name]
                            for item, sample in zip(batch, samples):
                                if stage is first:
                                    # Latency is measured from first service
                                    # start; source-side waiting is excluded.
                                    enq.pop(item, None)
                                    wait_rec[item][stage.name] = 0.0
                                else:
                                    wait_rec[item][stage.name] = clock - enq.pop(item, clock)
                                service_rec[item][stage.name] = sample + comm_share
                        if stage is first:
                            for item in batch:
                                if start_service[item] < 0:
                                    start_service[item] = clock
                        stage.busy += 1
                        cores_busy += 1
                        stage.busy_seconds += duration
                        push_event(clock + duration, "done", (stage, batch))
                        progress = True

        processed = 0
        dead_letters: list[tuple[int, str]] = []
        while events:
            t, _, kind, payload = heapq.heappop(events)
            clock = t
            if kind == "arrive":
                available += 1
            else:  # "done"
                stage, batch = payload  # type: ignore[misc]
                cores_busy -= 1
                if self.service.failure_probability > 0.0:
                    # Failed items consumed their service time but leave the
                    # pipeline here (dead-lettered) instead of moving on.
                    failed = {
                        item for item in batch if self.service.fails(item, stage.name)
                    }
                    if failed:
                        dead_letters.extend(
                            (item, stage.name) for item in batch if item in failed
                        )
                        if metrics_on:
                            self.registry.counter(
                                DEAD_LETTERS, stage=stage.name
                            ).inc(len(failed))
                        batch = [item for item in batch if item not in failed]
                if stage.next is None:
                    stage.busy -= 1
                    for item in batch:
                        completion[item] = clock
                        processed += 1
                        if metrics_on:
                            entities_ctr.inc()
                            if start_service[item] >= 0:
                                latency_hist.observe(clock - start_service[item])
                else:
                    nxt = stage.next
                    space = nxt.space()
                    for _ in range(min(space, len(batch))):
                        enqueue(nxt, batch.pop(0))
                    if batch:
                        if trace:
                            for item in batch:
                                enqueue_time[nxt.name].setdefault(item, clock)
                        nxt.blocked.append((stage, batch))  # worker stays busy
                    else:
                        stage.busy -= 1
            start_services()

        latencies = [
            completion[i] - start_service[i] for i in range(n) if completion[i] >= 0
        ]
        completions = [completion[i] for i in range(n) if completion[i] >= 0]
        makespan = (max(completions) - min(arrival_times)) if completions else 0.0
        result = SimulationResult(
            makespan=makespan,
            completion_times=completions,
            latencies=latencies,
            admitted=processed,
            stage_busy_seconds={s.name: s.busy_seconds for s in stages},
            trace=(
                SimulationTrace(wait_seconds=wait_rec, service_seconds=service_rec)
                if trace
                else None
            ),
            items_failed=len(dead_letters),
            dead_letters=dead_letters,
        )
        if self.checker is not None:
            self.checker.check_simulation(result, n_items=n)
            if self.checker.mode == "raise":
                self.checker.raise_if_violated()
        return result

    # Convenience runners -------------------------------------------------

    def run_batch(self, n_items: int) -> SimulationResult:
        """All items available at time zero (the speedup experiments)."""
        return self.run([0.0] * n_items)

    def run_stream(self, n_items: int, rate: float) -> SimulationResult:
        """Items arriving at a fixed source rate (descriptions/second)."""
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        return self.run([i / rate for i in range(n_items)])


def simulate_speedup(
    service: ServiceModel,
    total_processes: int,
    n_items: int = 2000,
    config: SimulatorConfig | None = None,
    allocation: dict[str, int] | None = None,
) -> tuple[float, SimulationResult]:
    """Speedup of a simulated parallel run vs the simulated sequential run."""
    from repro.parallel.allocation import allocate_processes

    if allocation is None:
        allocation = allocate_processes(service.mean_seconds, total_processes)
    simulator = PipelineSimulator(allocation, service, config)
    result = simulator.run_batch(n_items)
    sequential = service.sequential_makespan(n_items)
    return (sequential / result.makespan if result.makespan > 0 else 0.0), result
