"""The task-parallel framework, executable on real threads.

This is the architecture of Figure 5 made concrete: every stage runs on
its own worker pool, connected by bounded queues (backpressure), with the
allocation of workers to stages solved by
:func:`repro.parallel.allocation.allocate_processes`.  Micro-batching
(the MPP variant) greedily aggregates queued items up to a batch size /
delay bound before each stage.

Correctness under reordering: the block-building stage is the pipeline's
serialization point (declared by the :class:`~repro.core.plan.PipelinePlan`),
and it registers each profile in the shared profile store *before* emitting
the entity downstream — therefore every partner id a comparison references
is resolvable by the time load management looks it up, no matter how
replicated stages interleave.  (The paper keeps the profile map strictly
inside ``f_lm``; we hoist the *write* to the serializer for exactly this
reason and let ``f_lm`` do lookups only.)  Additionally the serializer
consumes entities through a :class:`_ReorderBuffer`: replicated ``f_dr``
workers may overtake each other, and block-pruning verdicts depend on
arrival history, so without re-sequencing the final match set would depend
on thread scheduling.  Items dead-lettered upstream are declared as
sequence holes so the serializer never waits for them.

On CPython the GIL serializes pure-Python compute, so this executor
demonstrates architecture and correctness rather than wall-clock speedup;
the multi-core performance experiments run on the calibrated
discrete-event simulator (:mod:`repro.parallel.simulator`).

Robustness: every worker executes items under a
:class:`~repro.parallel.supervision.Supervisor` — a raising stage function
no longer kills the worker; the item is retried per the
:class:`~repro.core.config.SupervisionPolicy` and then routed to the
dead-letter queue surfaced on :class:`ParallelRunResult`.  Worker loops
shut down via ``try/finally``, so even a catastrophic worker death still
decrements the pool's active count and forwards the ``_STOP`` sentinels
downstream instead of deadlocking ``join()``.  ``close()``/``join()``
accept a timeout and raise :class:`~repro.errors.PipelineStoppedError`
with a per-stage liveness report when the pipeline fails to drain.  See
``docs/robustness.md``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.backends import StateBackend
from repro.core.config import StreamERConfig, SupervisionPolicy
from repro.core.plan import PipelinePlan
from repro.errors import PipelineStoppedError
from repro.invariants.checker import InvariantChecker
from repro.observability.instrument import (
    ENTITIES,
    ENTITY_LATENCY_SECONDS,
    QUEUE_DEPTH,
)
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.trace import Tracer
from repro.parallel.allocation import allocate_processes, paper_example_times
from repro.parallel.faults import FaultInjector, FaultPlan, wrap_stages
from repro.parallel.supervision import Supervisor, format_liveness
from repro.types import DeadLetter, EntityDescription, Match

_STOP = object()


class _MeteredQueue(queue.Queue):
    """A bounded queue that samples its depth into a gauge at put/get.

    Sampling at the mutation points (rather than a poller) means the
    gauge is exact at every transition the metric can possibly observe,
    and costs one ``qsize()`` + one locked store per operation — only
    paid when metrics are enabled (plain ``queue.Queue`` otherwise).
    """

    def __init__(self, maxsize: int, gauge) -> None:
        super().__init__(maxsize=maxsize)
        self._gauge = gauge

    def put(self, item, block: bool = True, timeout: float | None = None) -> None:
        super().put(item, block, timeout)
        self._gauge.set(self.qsize())

    def get(self, block: bool = True, timeout: float | None = None):
        item = super().get(block, timeout)
        self._gauge.set(self.qsize())
        return item


class _ReorderBuffer:
    """Restores submission order in front of the serialization point.

    Replicated upstream stages (``dr`` may run on several workers) can
    deliver entities to the serializer out of submission order, and the
    match set is *not* invariant to the order the block index sees —
    pruning verdicts depend on arrival history.  The buffer holds early
    arrivals until every predecessor has either arrived or been declared a
    ``hole`` (dead-lettered upstream, so it will never arrive), making the
    serializer's processing order equal to submission order deterministically
    rather than by scheduling luck.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: dict[int, tuple] = {}
        self._holes: set[int] = set()
        self._next = 0

    def hole(self, seq: int) -> None:
        """Declare that ``seq`` died upstream and will never arrive."""
        with self._lock:
            self._holes.add(seq)

    def admit(self, seq: int, item: tuple) -> list[tuple]:
        """Buffer one arrival; return every item now ready, in order."""
        with self._lock:
            self._pending[seq] = item
            return self._drain_locked()

    def drain_ready(self) -> list[tuple]:
        """Items that became ready since the last call (holes filled in)."""
        with self._lock:
            return self._drain_locked()

    def _drain_locked(self) -> list[tuple]:
        ready: list[tuple] = []
        while True:
            if self._next in self._holes:
                self._holes.discard(self._next)
                self._next += 1
                continue
            item = self._pending.pop(self._next, None)
            if item is None:
                return ready
            ready.append(item)
            self._next += 1

    def pending_count(self) -> int:
        """Buffered arrivals plus undrained holes (0 after a clean drain)."""
        with self._lock:
            return len(self._pending) + len(self._holes)


@dataclass
class ParallelRunResult:
    """Outcome of a parallel run.

    ``entities_processed`` counts every submitted entity, including the
    ``items_failed`` that exhausted supervision and landed in
    ``dead_letters`` (one record per failed item, in failure order);
    ``retries`` is the total number of supervised re-executions performed.
    """

    entities_processed: int
    matches: list[Match]
    elapsed_seconds: float
    latencies: list[float] = field(default_factory=list)
    items_failed: int = 0
    retries: int = 0
    dead_letters: list[DeadLetter] = field(default_factory=list)

    @property
    def match_pairs(self) -> set[tuple]:
        return {m.key() for m in self.matches}

    @property
    def dead_letter_ids(self) -> set:
        """Entity identifiers of all dead-lettered items."""
        return {d.entity_id for d in self.dead_letters}


class _StageRunner:
    """Worker pool for one stage, reading one queue and writing the next."""

    def __init__(
        self,
        name: str,
        fn,
        workers: int,
        in_queue: "queue.Queue",
        out_queue: "queue.Queue | None",
        batch_size: int,
        batch_delay: float,
        downstream_workers: int,
        supervisor: Supervisor,
        on_result=None,
        reorder: "_ReorderBuffer | None" = None,
        hole_sink: "_ReorderBuffer | None" = None,
        tracer: "Tracer | None" = None,
        downstream_name: str | None = None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.workers = workers
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.batch_size = batch_size
        self.batch_delay = batch_delay
        self.downstream_workers = downstream_workers
        self.supervisor = supervisor
        self.on_result = on_result
        self.reorder = reorder
        self.hole_sink = hole_sink
        self.tracer = tracer
        self.downstream_name = downstream_name
        self._active = workers
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(target=self._run, name=f"er-{name}-{i}", daemon=True)
            for i in range(workers)
        ]

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def _collect_batch(self) -> tuple[list, bool]:
        """Get a batch of messages; returns (batch, saw_stop)."""
        first = self.in_queue.get()
        if first is _STOP:
            return [], True
        batch = [first]
        if self.batch_size > 1:
            deadline = time.perf_counter() + self.batch_delay
            while len(batch) < self.batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self.in_queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    return batch, True
                batch.append(item)
        return batch, False

    def _execute(self, enqueue_time: float, seq: int, payload) -> None:
        trace = self.tracer.get(seq) if self.tracer is not None else None
        if trace is not None:
            trace.record_start(self.name)
        ok, result = self.supervisor.execute(self.name, self.fn, payload)
        if not ok:
            # Dead-lettered; surviving items flow on.  A death upstream of
            # the serialization point is a permanent gap in the sequence —
            # tell the serializer's reorder buffer not to wait for it.
            if trace is not None:
                trace.dead_letter(self.name)
            if self.hole_sink is not None:
                self.hole_sink.hole(seq)
            return
        if trace is not None:
            trace.record_finish(self.name)
        if self.out_queue is not None:
            if trace is not None and self.downstream_name is not None:
                trace.record_enqueue(self.downstream_name)
            self.out_queue.put((enqueue_time, seq, result))
        elif self.on_result is not None:
            self.on_result(enqueue_time, result)
            if trace is not None:
                trace.complete()

    def _run(self) -> None:
        # The finally is the anti-deadlock guarantee: no matter how this
        # worker exits — clean _STOP, or an exception escaping the
        # supervisor's own machinery — _active is decremented and the
        # downstream sentinels are forwarded by whichever worker is last.
        try:
            while True:
                batch, saw_stop = self._collect_batch()
                for item in batch:
                    if self.reorder is None:
                        self._execute(*item)
                        continue
                    enqueue_time, seq, payload = item
                    for ready in self.reorder.admit(seq, item):
                        self._execute(*ready)
                if self.reorder is not None:
                    # Upstream holes are declared out of band; anything they
                    # unblocked since the last arrival is runnable now.
                    for ready in self.reorder.drain_ready():
                        self._execute(*ready)
                if saw_stop:
                    return
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        with self._lock:
            self._active -= 1
            last = self._active == 0
        if last and self.out_queue is not None:
            for _ in range(self.downstream_workers):
                self.out_queue.put(_STOP)

    def alive(self) -> int:
        return sum(1 for thread in self.threads if thread.is_alive())

    def join(self, deadline: float | None = None) -> None:
        for thread in self.threads:
            if deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, deadline - time.perf_counter()))


class ParallelERPipeline:
    """The optimized parallel framework (PP / MPP) on threads.

    Parameters
    ----------
    config:
        The usual stream-ER configuration.
    processes:
        Total worker budget P (≥ 8); distributed over stages by the
        allocation solver using ``stage_seconds`` (or the paper's measured
        dbpedia ratios when none are given).
    stage_seconds:
        Optional measured per-stage times from a sequential run, used to
        solve the allocation.
    micro_batch_size / micro_batch_delay:
        Batch bound of the aggregation performed before every stage;
        ``micro_batch_size=1`` is the plain parallel pipeline (PP), the
        paper's MPP uses (100, 10 ms).
    queue_capacity:
        Bound of every inter-stage queue (backpressure).
    supervision:
        Retry/dead-letter policy applied to every stage (default:
        :class:`~repro.core.config.SupervisionPolicy` with 2 retries and
        no retry for ``bb+bp``).
    faults:
        Optional fault-injection plan (stage name →
        :class:`~repro.parallel.faults.FaultSpec`); the wrapped injectors
        are exposed as ``fault_injectors`` for inspection.
    backend:
        Where the ER state lives (default: a fresh in-memory backend).
    plan:
        A pre-built :class:`~repro.core.plan.PipelinePlan` to compile; by
        default one is derived from ``config``.
    registry:
        Optional :class:`~repro.observability.MetricsRegistry`; when
        enabled, the framework emits the shared metric vocabulary —
        per-stage service histograms and item counts (via the compiled
        plan), queue-depth gauges sampled at every put/get, dead-letter
        and retry counters (via the supervisor), and end-to-end latency.
    tracer:
        Optional :class:`~repro.observability.Tracer`; sampled entities
        carry an :class:`~repro.observability.EntityTrace` recording
        per-stage enqueue/start/finish timestamps across the worker pools.
    checker:
        Optional :class:`~repro.invariants.InvariantChecker`.  Stage-scope
        invariants run inside the workers (recording only — a raise inside
        a supervised worker would become a dead letter); state- and
        run-scope invariants run in :meth:`run` after all workers join,
        where a raise-mode checker then raises.
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        processes: int = 8,
        stage_seconds: dict[str, float] | None = None,
        micro_batch_size: int = 1,
        micro_batch_delay: float = 0.01,
        queue_capacity: int = 1024,
        supervision: SupervisionPolicy | None = None,
        faults: FaultPlan | None = None,
        backend: StateBackend | None = None,
        plan: PipelinePlan | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        checker: InvariantChecker | None = None,
    ) -> None:
        self.plan = plan if plan is not None else PipelinePlan.from_config(config)
        self.config = self.plan.config
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer
        self.supervisor = Supervisor(supervision, registry=self.registry)
        self.checker = checker if (checker is not None and checker.enabled) else None
        if self.checker is not None:
            # Stage checks run on worker threads; a raise there would be
            # swallowed into the dead-letter queue by supervision.
            self.checker.concurrent = True
            self.checker.exempt_provider = lambda: {
                d.entity_id for d in self.supervisor.dead_letters
            }
        names = self.plan.stage_names()
        self.allocation = allocate_processes(
            stage_seconds or paper_example_times(), processes, stages=names
        )
        self.compiled = self.plan.compile(
            backend, registry=self.registry, checker=self.checker
        )
        self.backend = self.compiled.backend
        self._cl_lock = threading.Lock()
        profiles = self.backend.profiles

        stage_fns = self.compiled.stage_functions()
        for point in self.plan.serialization_points():
            inner = stage_fns[point]

            def serialized(profile, _inner=inner):
                # Serialization point: make the profile resolvable *before*
                # any comparison referencing it can exist downstream.
                profiles.put(profile)
                return _inner(profile)

            stage_fns[point] = serialized

        cl_stage = stage_fns["cl"]

        def classify_locked(scored):
            # The allocation may replicate ``cl``; the match-store owner
            # stays correct under a single lock.
            with self._cl_lock:
                return cl_stage(scored)

        stage_fns["cl"] = classify_locked
        self.fault_injectors: dict[str, FaultInjector] = wrap_stages(
            stage_fns, faults
        )

        self._results_lock = threading.Lock()
        self._matches: list[Match] = []
        self._latencies: list[float] = []
        self._entities_in = 0
        metrics_on = self.registry.enabled
        entities_metric = self.registry.counter(ENTITIES)
        latency_metric = self.registry.histogram(ENTITY_LATENCY_SECONDS)

        def on_final(enqueue_time: float, matches: list[Match]) -> None:
            latency = time.perf_counter() - enqueue_time
            with self._results_lock:
                self._matches.extend(matches)
                self._latencies.append(latency)
            if metrics_on:
                entities_metric.inc()
                latency_metric.observe(latency)

        # Deterministic ordering at the serialization point: replicated
        # upstream workers may overtake each other, so the serializer pulls
        # arrivals through a reorder buffer keyed by submission sequence,
        # and upstream dead letters are declared as holes.
        ser_points = self.plan.serialization_points()
        first_ser = ser_points[0] if ser_points else None
        self._sequencer = _ReorderBuffer() if first_ser is not None else None
        pre_serial = (
            set(names[: names.index(first_ser)]) if first_ser is not None else set()
        )

        if metrics_on:
            # Queue i feeds stage names[i]; its depth is that stage's gauge.
            queues: list[queue.Queue] = [
                _MeteredQueue(queue_capacity, self.registry.gauge(QUEUE_DEPTH, stage=name))
                for name in names
            ]
        else:
            queues = [queue.Queue(maxsize=queue_capacity) for _ in names]
        self._input: "queue.Queue" = queues[0]
        self._seq = 0
        self._runners: list[_StageRunner] = []
        for index, name in enumerate(names):
            out_queue = queues[index + 1] if index + 1 < len(names) else None
            downstream = (
                self.allocation[names[index + 1]]
                if index + 1 < len(names)
                else 0
            )
            self._runners.append(
                _StageRunner(
                    name=name,
                    fn=stage_fns[name],
                    workers=self.allocation[name],
                    in_queue=queues[index],
                    out_queue=out_queue,
                    batch_size=micro_batch_size,
                    batch_delay=micro_batch_delay,
                    downstream_workers=downstream,
                    supervisor=self.supervisor,
                    on_result=on_final if out_queue is None else None,
                    reorder=self._sequencer if name == first_ser else None,
                    hole_sink=self._sequencer if name in pre_serial else None,
                    tracer=tracer,
                    downstream_name=names[index + 1] if index + 1 < len(names) else None,
                )
            )
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            for runner in self._runners:
                runner.start()
            self._started = True

    def submit(self, entity: EntityDescription) -> None:
        """Feed one entity (blocks when the framework is saturated)."""
        if self._closed:
            raise PipelineStoppedError("pipeline already closed")
        self.start()
        seq = self._seq
        self._seq += 1
        self._entities_in += 1
        now = time.perf_counter()
        if self.tracer is not None:
            trace = self.tracer.start(seq, entity.eid, at=now)
            if trace is not None:
                trace.record_enqueue(self.plan.stage_names()[0], at=now)
        self._input.put((now, seq, entity))

    def close(self, timeout: float | None = None) -> None:
        """Signal end of input; idempotent.

        With a ``timeout``, a saturated input queue (e.g. every first-stage
        worker wedged on a pathological item) raises
        :class:`PipelineStoppedError` with a liveness report instead of
        blocking forever.
        """
        if self._closed:
            return
        self._closed = True
        self.start()
        for _ in range(self._runners[0].workers):
            try:
                self._input.put(_STOP, timeout=timeout)
            except queue.Full:
                raise PipelineStoppedError(
                    f"close() could not deliver stop sentinels within "
                    f"{timeout}s; stage liveness:\n"
                    + format_liveness(self.liveness_report())
                ) from None

    def join(self, timeout: float | None = None) -> None:
        """Wait for all workers to drain and exit.

        With a ``timeout`` (seconds, end to end), raises
        :class:`PipelineStoppedError` carrying a per-stage liveness report
        if any worker is still alive when it expires — the diagnosis a
        silently deadlocked pipeline used to withhold.
        """
        if timeout is None:
            for runner in self._runners:
                runner.join()
            return
        deadline = time.perf_counter() + timeout
        for runner in self._runners:
            runner.join(deadline)
        stuck = [r.name for r in self._runners if r.alive() > 0]
        if stuck:
            raise PipelineStoppedError(
                f"join() timed out after {timeout}s with live stages "
                f"{stuck}; stage liveness:\n"
                + format_liveness(self.liveness_report())
            )

    # -- observability ----------------------------------------------------

    def liveness_report(self) -> dict[str, dict[str, int]]:
        """Per-stage snapshot: thread counts, shutdown state, queue depth."""
        return {
            runner.name: {
                "workers": runner.workers,
                "alive": runner.alive(),
                "active": max(runner._active, 0),
                "queued": runner.in_queue.qsize(),
            }
            for runner in self._runners
        }

    @property
    def entities_processed(self) -> int:
        """Entities submitted so far (monitoring reads this)."""
        return self._entities_in

    @property
    def items_failed(self) -> int:
        return self.supervisor.items_failed

    @property
    def retries_performed(self) -> int:
        return self.supervisor.retries_performed

    @property
    def dead_letters(self) -> list[DeadLetter]:
        return list(self.supervisor.dead_letters)

    # -- one-shot convenience --------------------------------------------

    def run(
        self,
        entities: Iterable[EntityDescription],
        timeout: float | None = None,
    ) -> ParallelRunResult:
        """Process a finite input end to end and wait for completion.

        ``timeout`` bounds the shutdown (applied to both ``close`` and
        ``join``); a pipeline that cannot drain raises
        :class:`PipelineStoppedError` instead of hanging the caller.
        """
        start = time.perf_counter()
        for entity in entities:
            self.submit(entity)
        self.close(timeout=timeout)
        self.join(timeout=timeout)
        elapsed = time.perf_counter() - start
        result = ParallelRunResult(
            entities_processed=self._entities_in,
            matches=list(self._matches),
            elapsed_seconds=elapsed,
            latencies=list(self._latencies),
            items_failed=self.supervisor.items_failed,
            retries=self.supervisor.retries_performed,
            dead_letters=list(self.supervisor.dead_letters),
        )
        if self.checker is not None:
            # Workers have joined: stores are quiescent, and the ENTITIES
            # metric counted completions (entities in minus dead letters).
            self.checker.finalize(
                result,
                expected_entities=self._entities_in - result.items_failed,
                sequencer=self._sequencer,
            )
        return result
