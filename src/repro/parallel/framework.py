"""The task-parallel framework, executable on real threads.

This is the architecture of Figure 5 made concrete: every stage runs on
its own worker pool, connected by bounded queues (backpressure), with the
allocation of workers to stages solved by
:func:`repro.parallel.allocation.allocate_processes`.  Micro-batching
(the MPP variant) greedily aggregates queued items up to a batch size /
delay bound before each stage.

Correctness under reordering: the block-building stage is the pipeline's
serialization point, and it registers each profile in the shared profile
store *before* emitting the entity downstream — therefore every partner id
a comparison references is resolvable by the time load management looks it
up, no matter how replicated stages interleave.  (The paper keeps the
profile map strictly inside ``f_lm``; we hoist the *write* to the
serializer for exactly this reason and let ``f_lm`` do lookups only.)

On CPython the GIL serializes pure-Python compute, so this executor
demonstrates architecture and correctness rather than wall-clock speedup;
the multi-core performance experiments run on the calibrated
discrete-event simulator (:mod:`repro.parallel.simulator`).

Robustness: every worker executes items under a
:class:`~repro.parallel.supervision.Supervisor` — a raising stage function
no longer kills the worker; the item is retried per the
:class:`~repro.core.config.SupervisionPolicy` and then routed to the
dead-letter queue surfaced on :class:`ParallelRunResult`.  Worker loops
shut down via ``try/finally``, so even a catastrophic worker death still
decrements the pool's active count and forwards the ``_STOP`` sentinels
downstream instead of deadlocking ``join()``.  ``close()``/``join()``
accept a timeout and raise :class:`~repro.errors.PipelineStoppedError`
with a per-stage liveness report when the pipeline fails to drain.  See
``docs/robustness.md``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.config import StreamERConfig, SupervisionPolicy
from repro.core.stages import (
    STAGE_ORDER,
    BlockBuildingStage,
    BlockGhostingStage,
    ClassificationStage,
    ComparisonCleaningStage,
    ComparisonGenerationStage,
    ComparisonStage,
    DataReadingStage,
    LoadManagementStage,
)
from repro.errors import PipelineStoppedError
from repro.parallel.allocation import allocate_processes, paper_example_times
from repro.parallel.faults import FaultInjector, FaultPlan, wrap_stages
from repro.parallel.supervision import Supervisor, format_liveness
from repro.types import DeadLetter, EntityDescription, Match

_STOP = object()


@dataclass
class ParallelRunResult:
    """Outcome of a parallel run.

    ``entities_processed`` counts every submitted entity, including the
    ``items_failed`` that exhausted supervision and landed in
    ``dead_letters`` (one record per failed item, in failure order);
    ``retries`` is the total number of supervised re-executions performed.
    """

    entities_processed: int
    matches: list[Match]
    elapsed_seconds: float
    latencies: list[float] = field(default_factory=list)
    items_failed: int = 0
    retries: int = 0
    dead_letters: list[DeadLetter] = field(default_factory=list)

    @property
    def match_pairs(self) -> set[tuple]:
        return {m.key() for m in self.matches}

    @property
    def dead_letter_ids(self) -> set:
        """Entity identifiers of all dead-lettered items."""
        return {d.entity_id for d in self.dead_letters}


class _StageRunner:
    """Worker pool for one stage, reading one queue and writing the next."""

    def __init__(
        self,
        name: str,
        fn,
        workers: int,
        in_queue: "queue.Queue",
        out_queue: "queue.Queue | None",
        batch_size: int,
        batch_delay: float,
        downstream_workers: int,
        supervisor: Supervisor,
        on_result=None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.workers = workers
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.batch_size = batch_size
        self.batch_delay = batch_delay
        self.downstream_workers = downstream_workers
        self.supervisor = supervisor
        self.on_result = on_result
        self._active = workers
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(target=self._run, name=f"er-{name}-{i}", daemon=True)
            for i in range(workers)
        ]

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def _collect_batch(self) -> tuple[list, bool]:
        """Get a batch of messages; returns (batch, saw_stop)."""
        first = self.in_queue.get()
        if first is _STOP:
            return [], True
        batch = [first]
        if self.batch_size > 1:
            deadline = time.perf_counter() + self.batch_delay
            while len(batch) < self.batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self.in_queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    return batch, True
                batch.append(item)
        return batch, False

    def _run(self) -> None:
        # The finally is the anti-deadlock guarantee: no matter how this
        # worker exits — clean _STOP, or an exception escaping the
        # supervisor's own machinery — _active is decremented and the
        # downstream sentinels are forwarded by whichever worker is last.
        try:
            while True:
                batch, saw_stop = self._collect_batch()
                for enqueue_time, payload in batch:
                    ok, result = self.supervisor.execute(
                        self.name, self.fn, payload
                    )
                    if not ok:
                        continue  # dead-lettered; surviving items flow on
                    if self.out_queue is not None:
                        self.out_queue.put((enqueue_time, result))
                    elif self.on_result is not None:
                        self.on_result(enqueue_time, result)
                if saw_stop:
                    return
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        with self._lock:
            self._active -= 1
            last = self._active == 0
        if last and self.out_queue is not None:
            for _ in range(self.downstream_workers):
                self.out_queue.put(_STOP)

    def alive(self) -> int:
        return sum(1 for thread in self.threads if thread.is_alive())

    def join(self, deadline: float | None = None) -> None:
        for thread in self.threads:
            if deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, deadline - time.perf_counter()))


class ParallelERPipeline:
    """The optimized parallel framework (PP / MPP) on threads.

    Parameters
    ----------
    config:
        The usual stream-ER configuration.
    processes:
        Total worker budget P (≥ 8); distributed over stages by the
        allocation solver using ``stage_seconds`` (or the paper's measured
        dbpedia ratios when none are given).
    stage_seconds:
        Optional measured per-stage times from a sequential run, used to
        solve the allocation.
    micro_batch_size / micro_batch_delay:
        Batch bound of the aggregation performed before every stage;
        ``micro_batch_size=1`` is the plain parallel pipeline (PP), the
        paper's MPP uses (100, 10 ms).
    queue_capacity:
        Bound of every inter-stage queue (backpressure).
    supervision:
        Retry/dead-letter policy applied to every stage (default:
        :class:`~repro.core.config.SupervisionPolicy` with 2 retries and
        no retry for ``bb+bp``).
    faults:
        Optional fault-injection plan (stage name →
        :class:`~repro.parallel.faults.FaultSpec`); the wrapped injectors
        are exposed as ``fault_injectors`` for inspection.
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        processes: int = 8,
        stage_seconds: dict[str, float] | None = None,
        micro_batch_size: int = 1,
        micro_batch_delay: float = 0.01,
        queue_capacity: int = 1024,
        supervision: SupervisionPolicy | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config or StreamERConfig()
        self.supervisor = Supervisor(supervision)
        self.allocation = allocate_processes(
            stage_seconds or paper_example_times(), processes
        )
        cfg = self.config
        self._lm = LoadManagementStage()
        self._cl = ClassificationStage(cfg.classifier)
        self._cl_lock = threading.Lock()
        bb = BlockBuildingStage(alpha=cfg.alpha, enabled=cfg.enable_block_cleaning)
        profiles = self._lm.profiles

        def bb_and_register(profile):
            # Serialization point: make the profile resolvable *before* any
            # comparison referencing it can exist downstream.
            profiles.put(profile)
            return bb(profile)

        def classify_locked(scored):
            with self._cl_lock:
                return self._cl(scored)

        stage_fns = {
            "dr": DataReadingStage(cfg.profile_builder),
            "bb+bp": bb_and_register,
            "bg": BlockGhostingStage(beta=cfg.beta, enabled=cfg.enable_block_cleaning),
            "cg": ComparisonGenerationStage(clean_clean=cfg.clean_clean),
            "cc": ComparisonCleaningStage(enabled=cfg.enable_comparison_cleaning),
            "lm": self._lm,
            "co": ComparisonStage(cfg.comparator),
            "cl": classify_locked,
        }
        self.fault_injectors: dict[str, FaultInjector] = wrap_stages(
            stage_fns, faults
        )

        self._results_lock = threading.Lock()
        self._matches: list[Match] = []
        self._latencies: list[float] = []
        self._entities_in = 0

        def on_final(enqueue_time: float, matches: list[Match]) -> None:
            with self._results_lock:
                self._matches.extend(matches)
                self._latencies.append(time.perf_counter() - enqueue_time)

        queues = [queue.Queue(maxsize=queue_capacity) for _ in STAGE_ORDER]
        self._input: "queue.Queue" = queues[0]
        self._runners: list[_StageRunner] = []
        for index, name in enumerate(STAGE_ORDER):
            out_queue = queues[index + 1] if index + 1 < len(STAGE_ORDER) else None
            downstream = (
                self.allocation[STAGE_ORDER[index + 1]]
                if index + 1 < len(STAGE_ORDER)
                else 0
            )
            self._runners.append(
                _StageRunner(
                    name=name,
                    fn=stage_fns[name],
                    workers=self.allocation[name],
                    in_queue=queues[index],
                    out_queue=out_queue,
                    batch_size=micro_batch_size,
                    batch_delay=micro_batch_delay,
                    downstream_workers=downstream,
                    supervisor=self.supervisor,
                    on_result=on_final if out_queue is None else None,
                )
            )
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            for runner in self._runners:
                runner.start()
            self._started = True

    def submit(self, entity: EntityDescription) -> None:
        """Feed one entity (blocks when the framework is saturated)."""
        if self._closed:
            raise PipelineStoppedError("pipeline already closed")
        self.start()
        self._entities_in += 1
        self._input.put((time.perf_counter(), entity))

    def close(self, timeout: float | None = None) -> None:
        """Signal end of input; idempotent.

        With a ``timeout``, a saturated input queue (e.g. every first-stage
        worker wedged on a pathological item) raises
        :class:`PipelineStoppedError` with a liveness report instead of
        blocking forever.
        """
        if self._closed:
            return
        self._closed = True
        self.start()
        for _ in range(self._runners[0].workers):
            try:
                self._input.put(_STOP, timeout=timeout)
            except queue.Full:
                raise PipelineStoppedError(
                    f"close() could not deliver stop sentinels within "
                    f"{timeout}s; stage liveness:\n"
                    + format_liveness(self.liveness_report())
                ) from None

    def join(self, timeout: float | None = None) -> None:
        """Wait for all workers to drain and exit.

        With a ``timeout`` (seconds, end to end), raises
        :class:`PipelineStoppedError` carrying a per-stage liveness report
        if any worker is still alive when it expires — the diagnosis a
        silently deadlocked pipeline used to withhold.
        """
        if timeout is None:
            for runner in self._runners:
                runner.join()
            return
        deadline = time.perf_counter() + timeout
        for runner in self._runners:
            runner.join(deadline)
        stuck = [r.name for r in self._runners if r.alive() > 0]
        if stuck:
            raise PipelineStoppedError(
                f"join() timed out after {timeout}s with live stages "
                f"{stuck}; stage liveness:\n"
                + format_liveness(self.liveness_report())
            )

    # -- observability ----------------------------------------------------

    def liveness_report(self) -> dict[str, dict[str, int]]:
        """Per-stage snapshot: thread counts, shutdown state, queue depth."""
        return {
            runner.name: {
                "workers": runner.workers,
                "alive": runner.alive(),
                "active": max(runner._active, 0),
                "queued": runner.in_queue.qsize(),
            }
            for runner in self._runners
        }

    @property
    def items_failed(self) -> int:
        return self.supervisor.items_failed

    @property
    def retries_performed(self) -> int:
        return self.supervisor.retries_performed

    @property
    def dead_letters(self) -> list[DeadLetter]:
        return list(self.supervisor.dead_letters)

    # -- one-shot convenience --------------------------------------------

    def run(
        self,
        entities: Iterable[EntityDescription],
        timeout: float | None = None,
    ) -> ParallelRunResult:
        """Process a finite input end to end and wait for completion.

        ``timeout`` bounds the shutdown (applied to both ``close`` and
        ``join``); a pipeline that cannot drain raises
        :class:`PipelineStoppedError` instead of hanging the caller.
        """
        start = time.perf_counter()
        for entity in entities:
            self.submit(entity)
        self.close(timeout=timeout)
        self.join(timeout=timeout)
        elapsed = time.perf_counter() - start
        return ParallelRunResult(
            entities_processed=self._entities_in,
            matches=list(self._matches),
            elapsed_seconds=elapsed,
            latencies=list(self._latencies),
            items_failed=self.supervisor.items_failed,
            retries=self.supervisor.retries_performed,
            dead_letters=list(self.supervisor.dead_letters),
        )
