"""The task-parallel framework, executable on real threads.

This is the architecture of Figure 5 made concrete: every stage runs on
its own worker pool, connected by bounded queues (backpressure), with the
allocation of workers to stages solved by
:func:`repro.parallel.allocation.allocate_processes`.  Micro-batching
(the MPP variant) greedily aggregates queued items up to a batch size /
delay bound before each stage.

Correctness under reordering: the block-building stage is the pipeline's
serialization point, and it registers each profile in the shared profile
store *before* emitting the entity downstream — therefore every partner id
a comparison references is resolvable by the time load management looks it
up, no matter how replicated stages interleave.  (The paper keeps the
profile map strictly inside ``f_lm``; we hoist the *write* to the
serializer for exactly this reason and let ``f_lm`` do lookups only.)

On CPython the GIL serializes pure-Python compute, so this executor
demonstrates architecture and correctness rather than wall-clock speedup;
the multi-core performance experiments run on the calibrated
discrete-event simulator (:mod:`repro.parallel.simulator`).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.config import StreamERConfig
from repro.core.stages import (
    STAGE_ORDER,
    BlockBuildingStage,
    BlockGhostingStage,
    ClassificationStage,
    ComparisonCleaningStage,
    ComparisonGenerationStage,
    ComparisonStage,
    DataReadingStage,
    LoadManagementStage,
)
from repro.errors import PipelineStoppedError
from repro.parallel.allocation import allocate_processes, paper_example_times
from repro.types import EntityDescription, Match

_STOP = object()


@dataclass
class ParallelRunResult:
    """Outcome of a parallel run."""

    entities_processed: int
    matches: list[Match]
    elapsed_seconds: float
    latencies: list[float] = field(default_factory=list)

    @property
    def match_pairs(self) -> set[tuple]:
        return {m.key() for m in self.matches}


class _StageRunner:
    """Worker pool for one stage, reading one queue and writing the next."""

    def __init__(
        self,
        name: str,
        fn,
        workers: int,
        in_queue: "queue.Queue",
        out_queue: "queue.Queue | None",
        batch_size: int,
        batch_delay: float,
        downstream_workers: int,
        on_result=None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.workers = workers
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.batch_size = batch_size
        self.batch_delay = batch_delay
        self.downstream_workers = downstream_workers
        self.on_result = on_result
        self._active = workers
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(target=self._run, name=f"er-{name}-{i}", daemon=True)
            for i in range(workers)
        ]

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def _collect_batch(self) -> tuple[list, bool]:
        """Get a batch of messages; returns (batch, saw_stop)."""
        first = self.in_queue.get()
        if first is _STOP:
            return [], True
        batch = [first]
        if self.batch_size > 1:
            deadline = time.perf_counter() + self.batch_delay
            while len(batch) < self.batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self.in_queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    return batch, True
                batch.append(item)
        return batch, False

    def _run(self) -> None:
        while True:
            batch, saw_stop = self._collect_batch()
            for enqueue_time, payload in batch:
                result = self.fn(payload)
                if self.out_queue is not None:
                    self.out_queue.put((enqueue_time, result))
                elif self.on_result is not None:
                    self.on_result(enqueue_time, result)
            if saw_stop:
                self._shutdown()
                return

    def _shutdown(self) -> None:
        with self._lock:
            self._active -= 1
            last = self._active == 0
        if last and self.out_queue is not None:
            for _ in range(self.downstream_workers):
                self.out_queue.put(_STOP)

    def join(self) -> None:
        for thread in self.threads:
            thread.join()


class ParallelERPipeline:
    """The optimized parallel framework (PP / MPP) on threads.

    Parameters
    ----------
    config:
        The usual stream-ER configuration.
    processes:
        Total worker budget P (≥ 8); distributed over stages by the
        allocation solver using ``stage_seconds`` (or the paper's measured
        dbpedia ratios when none are given).
    stage_seconds:
        Optional measured per-stage times from a sequential run, used to
        solve the allocation.
    micro_batch_size / micro_batch_delay:
        Batch bound of the aggregation performed before every stage;
        ``micro_batch_size=1`` is the plain parallel pipeline (PP), the
        paper's MPP uses (100, 10 ms).
    queue_capacity:
        Bound of every inter-stage queue (backpressure).
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        processes: int = 8,
        stage_seconds: dict[str, float] | None = None,
        micro_batch_size: int = 1,
        micro_batch_delay: float = 0.01,
        queue_capacity: int = 1024,
    ) -> None:
        self.config = config or StreamERConfig()
        self.allocation = allocate_processes(
            stage_seconds or paper_example_times(), processes
        )
        cfg = self.config
        self._lm = LoadManagementStage()
        self._cl = ClassificationStage(cfg.classifier)
        self._cl_lock = threading.Lock()
        bb = BlockBuildingStage(alpha=cfg.alpha, enabled=cfg.enable_block_cleaning)
        profiles = self._lm.profiles

        def bb_and_register(profile):
            # Serialization point: make the profile resolvable *before* any
            # comparison referencing it can exist downstream.
            profiles.put(profile)
            return bb(profile)

        def classify_locked(scored):
            with self._cl_lock:
                return self._cl(scored)

        stage_fns = {
            "dr": DataReadingStage(cfg.profile_builder),
            "bb+bp": bb_and_register,
            "bg": BlockGhostingStage(beta=cfg.beta, enabled=cfg.enable_block_cleaning),
            "cg": ComparisonGenerationStage(clean_clean=cfg.clean_clean),
            "cc": ComparisonCleaningStage(enabled=cfg.enable_comparison_cleaning),
            "lm": self._lm,
            "co": ComparisonStage(cfg.comparator),
            "cl": classify_locked,
        }

        self._results_lock = threading.Lock()
        self._matches: list[Match] = []
        self._latencies: list[float] = []
        self._entities_in = 0

        def on_final(enqueue_time: float, matches: list[Match]) -> None:
            with self._results_lock:
                self._matches.extend(matches)
                self._latencies.append(time.perf_counter() - enqueue_time)

        queues = [queue.Queue(maxsize=queue_capacity) for _ in STAGE_ORDER]
        self._input: "queue.Queue" = queues[0]
        self._runners: list[_StageRunner] = []
        for index, name in enumerate(STAGE_ORDER):
            out_queue = queues[index + 1] if index + 1 < len(STAGE_ORDER) else None
            downstream = (
                self.allocation[STAGE_ORDER[index + 1]]
                if index + 1 < len(STAGE_ORDER)
                else 0
            )
            self._runners.append(
                _StageRunner(
                    name=name,
                    fn=stage_fns[name],
                    workers=self.allocation[name],
                    in_queue=queues[index],
                    out_queue=out_queue,
                    batch_size=micro_batch_size,
                    batch_delay=micro_batch_delay,
                    downstream_workers=downstream,
                    on_result=on_final if out_queue is None else None,
                )
            )
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            for runner in self._runners:
                runner.start()
            self._started = True

    def submit(self, entity: EntityDescription) -> None:
        """Feed one entity (blocks when the framework is saturated)."""
        if self._closed:
            raise PipelineStoppedError("pipeline already closed")
        self.start()
        self._entities_in += 1
        self._input.put((time.perf_counter(), entity))

    def close(self) -> None:
        """Signal end of input; safe to call once."""
        if not self._closed:
            self._closed = True
            self.start()
            for _ in range(self._runners[0].workers):
                self._input.put(_STOP)

    def join(self) -> None:
        for runner in self._runners:
            runner.join()

    # -- one-shot convenience --------------------------------------------

    def run(self, entities: Iterable[EntityDescription]) -> ParallelRunResult:
        """Process a finite input end to end and wait for completion."""
        start = time.perf_counter()
        for entity in entities:
            self.submit(entity)
        self.close()
        self.join()
        elapsed = time.perf_counter() - start
        return ParallelRunResult(
            entities_processed=self._entities_in,
            matches=list(self._matches),
            elapsed_seconds=elapsed,
            latencies=list(self._latencies),
        )
