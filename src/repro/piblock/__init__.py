"""PI-Block baseline (incremental schema-agnostic meta-blocking)."""

from repro.piblock.piblock import PIBlockConfig, PIBlockER, PIBlockIncrementResult

__all__ = ["PIBlockConfig", "PIBlockER", "PIBlockIncrementResult"]
