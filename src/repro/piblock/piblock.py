"""PI-Block reimplementation: parallel-friendly incremental meta-blocking.

PI-Block (Araújo et al., SAC 2020) is the schema-agnostic *blocking*
baseline of the paper: it maintains a token index incrementally and, per
increment of data, performs meta-blocking restricted to the subgraph
touched by the increment.  It features **no block cleaning** — which is
exactly why the paper's Figure 10 shows it losing to the full framework.

As in the paper we reimplement it single-node (the original Spark version
needs a cluster to hold its state).  The pipeline around it — comparison
and classification — reuses the framework's substrates, so the comparison
with our method isolates the blocking strategy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.reading.profiles import ProfileBuilder
from repro.types import (
    Comparison,
    EntityDescription,
    EntityId,
    Match,
    Profile,
    pair_key,
)

Pair = tuple[EntityId, EntityId]


@dataclass(frozen=True)
class PIBlockConfig:
    """PI-Block pipeline parameters (note: no block-cleaning knobs)."""

    clean_clean: bool = False
    profile_builder: ProfileBuilder = field(default_factory=ProfileBuilder)
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)


@dataclass
class PIBlockIncrementResult:
    """Counts and matches for one processed increment."""

    n_entities: int = 0
    comparisons_generated: int = 0
    comparisons_after_pruning: int = 0
    seconds: float = 0.0
    matches: list[Match] = field(default_factory=list)


class PIBlockER:
    """Incremental ER pipeline with PI-Block as the blocking component.

    State: the token index (block collection over all data so far) and the
    profile store.  Per increment:

    1. index the increment's entities;
    2. build the *affected subgraph*: edges between increment entities and
       every co-occurring entity, weighted by common-block count (CBS);
    3. prune with node-centric weighted pruning (WNP) over that subgraph;
    4. compare and classify the surviving pairs (new pairs only).
    """

    def __init__(self, config: PIBlockConfig | None = None) -> None:
        self.config = config or PIBlockConfig()
        self._index: dict[str, list[EntityId]] = {}
        self._profiles: dict[EntityId, Profile] = {}
        self._compared: set[Pair] = set()
        self._matches: list[Match] = []
        self.total_seconds = 0.0

    @property
    def matches(self) -> list[Match]:
        return list(self._matches)

    @property
    def match_pairs(self) -> set[Pair]:
        return {m.key() for m in self._matches}

    def _cross_source_ok(self, i: EntityId, j: EntityId) -> bool:
        if not self.config.clean_clean:
            return True
        return i[0] != j[0]  # type: ignore[index]

    def process_increment(
        self, increment: Iterable[EntityDescription]
    ) -> PIBlockIncrementResult:
        """Index, meta-block, compare, and classify one increment."""
        result = PIBlockIncrementResult()
        start = time.perf_counter()
        builder = self.config.profile_builder

        new_profiles: list[Profile] = []
        for entity in increment:
            profile = builder.build(entity)
            new_profiles.append(profile)
            self._profiles[profile.eid] = profile
            for token in profile.tokens:
                self._index.setdefault(token, []).append(profile.eid)
        result.n_entities = len(new_profiles)

        # Affected subgraph: CBS weights between new entities and co-blocked
        # partners (old or new).  Counted once per shared block.
        weights: dict[Pair, int] = {}
        new_ids = {p.eid for p in new_profiles}
        for profile in new_profiles:
            for token in profile.tokens:
                for j in self._index.get(token, ()):
                    if j == profile.eid:
                        continue
                    # Avoid double-counting edges between two new entities.
                    if j in new_ids and not _ordered_before(j, profile.eid):
                        continue
                    if not self._cross_source_ok(profile.eid, j):
                        continue
                    key = pair_key(profile.eid, j)
                    weights[key] = weights.get(key, 0) + 1
        result.comparisons_generated = sum(weights.values())

        # WNP over the affected subgraph: per-node average-weight threshold.
        sums: dict[EntityId, float] = {}
        counts: dict[EntityId, int] = {}
        for (i, j), w in weights.items():
            sums[i] = sums.get(i, 0.0) + w
            counts[i] = counts.get(i, 0) + 1
            sums[j] = sums.get(j, 0.0) + w
            counts[j] = counts.get(j, 0) + 1
        thresholds = {eid: sums[eid] / counts[eid] for eid in sums}
        retained = [
            (i, j)
            for (i, j), w in weights.items()
            if w >= thresholds[i] or w >= thresholds[j]
        ]
        result.comparisons_after_pruning = len(retained)

        for i, j in retained:
            key = pair_key(i, j)
            if key in self._compared:
                continue
            self._compared.add(key)
            comparison = Comparison(left=self._profiles[i], right=self._profiles[j])
            scored = self.config.comparator.compare(comparison)
            match = self.config.classifier.classify(scored)
            if match is not None:
                result.matches.append(match)
                self._matches.append(match)

        result.seconds = time.perf_counter() - start
        self.total_seconds += result.seconds
        return result


def _ordered_before(a: EntityId, b: EntityId) -> bool:
    """Deterministic order over possibly heterogeneous ids."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return repr(a) < repr(b)
