"""Unified observability: metrics registry, entity traces, exporters.

One instrumentation vocabulary for all four executors (sequential,
thread PP/MPP, multiprocess, simulator) — see
:mod:`repro.observability.instrument` for the metric families,
:mod:`repro.observability.registry` for the instruments,
:mod:`repro.observability.trace` for span-style entity traces, and
:mod:`repro.observability.export` for the Prometheus/JSON exporters.
``docs/observability.md`` is the user-facing guide.
"""

from repro.observability.export import (
    SnapshotFileSink,
    to_json,
    to_prometheus,
    write_json_snapshot,
)
from repro.observability.instrument import (
    COMPARISONS_EXECUTED,
    COMPARISONS_GENERATED,
    DEAD_LETTERS,
    ENTITIES,
    ENTITY_LATENCY_SECONDS,
    MATCHES,
    PIPELINE_METRIC_NAMES,
    QUEUE_DEPTH,
    RETRIES,
    STAGE_ITEMS,
    STAGE_SERVICE_SECONDS,
    InstrumentedStage,
    declare_pipeline_metrics,
)
from repro.observability.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import EntityTrace, StageSpan, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "EntityTrace",
    "StageSpan",
    "Tracer",
    "InstrumentedStage",
    "declare_pipeline_metrics",
    "PIPELINE_METRIC_NAMES",
    "STAGE_ITEMS",
    "STAGE_SERVICE_SECONDS",
    "QUEUE_DEPTH",
    "DEAD_LETTERS",
    "RETRIES",
    "COMPARISONS_GENERATED",
    "COMPARISONS_EXECUTED",
    "ENTITIES",
    "MATCHES",
    "ENTITY_LATENCY_SECONDS",
    "to_prometheus",
    "to_json",
    "write_json_snapshot",
    "SnapshotFileSink",
]
