"""Exporters: Prometheus text format, JSON snapshots, and file sinks.

Two snapshot formats cover the common consumers:

* :func:`to_prometheus` renders the registry in the Prometheus text
  exposition format (version 0.0.4) — counters and gauges as single
  samples, histograms as cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count`` — so a scrape endpoint or a push-gateway shim needs
  no further translation;
* :func:`to_json` renders a structured dict (JSON-able as-is) for ad-hoc
  tooling and the golden tests.

:class:`SnapshotFileSink` is the ``on_snapshot`` callback for
:class:`~repro.core.monitoring.PipelineMonitor` and the streaming
runners: it appends one JSON line per snapshot, giving long runs a
greppable flight record without holding anything in memory.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.observability.registry import Gauge, Histogram, MetricsRegistry

__all__ = [
    "to_prometheus",
    "to_json",
    "write_json_snapshot",
    "SnapshotFileSink",
]


def _format_value(value: float) -> str:
    # Integers render without a trailing ".0" (Prometheus accepts both;
    # the compact form diffs cleanly in golden tests).
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _le_text(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            kind = "histogram"
        elif isinstance(metric, Gauge):
            kind = "gauge"
        else:
            kind = "counter"
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            lines.append(f"# TYPE {metric.name} {kind}")
        if isinstance(metric, Histogram):
            for bound, cumulative in metric.bucket_counts():
                labels = _render_labels(metric.labels, (("le", _le_text(bound)),))
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _render_labels(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
        else:
            labels = _render_labels(metric.labels)
            lines.append(f"{metric.name}{labels} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry) -> dict:
    """A structured, JSON-able snapshot of every instrument."""
    counters: list[dict] = []
    gauges: list[dict] = []
    histograms: list[dict] = []
    for metric in registry.collect():
        labels = dict(metric.labels)
        if isinstance(metric, Histogram):
            histograms.append(
                {
                    "name": metric.name,
                    "labels": labels,
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        {"le": _le_text(bound), "count": cumulative}
                        for bound, cumulative in metric.bucket_counts()
                    ],
                }
            )
        elif isinstance(metric, Gauge):
            gauges.append({"name": metric.name, "labels": labels, "value": metric.value})
        else:
            counters.append({"name": metric.name, "labels": labels, "value": metric.value})
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def write_json_snapshot(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`to_json` of the registry to ``path``; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(to_json(registry), indent=2) + "\n", encoding="utf-8")
    return target


class SnapshotFileSink:
    """Append-only JSON-lines sink for monitor snapshots.

    Accepts dataclass instances (e.g. ``monitoring.Snapshot``), objects
    with ``to_dict``, or plain dicts; each call appends one line.  Use as
    ``PipelineMonitor(pipeline, on_snapshot=SnapshotFileSink(path))`` or
    pass to a streaming runner's ``on_snapshot``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.written = 0

    def _encode(self, snapshot: object) -> dict:
        if dataclasses.is_dataclass(snapshot) and not isinstance(snapshot, type):
            return dataclasses.asdict(snapshot)
        to_dict = getattr(snapshot, "to_dict", None)
        if callable(to_dict):
            return to_dict()
        if isinstance(snapshot, dict):
            return snapshot
        raise TypeError(f"cannot serialize snapshot of type {type(snapshot).__name__}")

    def __call__(self, snapshot: object) -> None:
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(self._encode(snapshot)) + "\n")
        self.written += 1
