"""Span-style per-entity tracing across the stage graph.

The simulator has always been able to attribute a latency spike to the
stage where the item waited or served longest
(:class:`~repro.parallel.simulator.SimulationTrace`); this module brings
the same instrument to the *real* executors.  An :class:`EntityTrace` is
a sequence of per-stage spans — enqueue, service-start, service-end
timestamps — recorded as one entity flows the compiled plan, so a slow
entity's end-to-end latency decomposes into per-stage queue wait and
service time.

A :class:`Tracer` decides *which* entities get a trace (every ``every``-th
submission) and bounds how many finished traces are retained, so tracing a
long stream costs O(capacity) memory, not O(stream).  Executors hold a
``Tracer | None`` and skip all recording when it is ``None`` — like the
metrics registry, the disabled path adds nothing to the hot loop.

Timestamps are ``time.perf_counter()`` values: meaningful as differences
within one process, not as wall-clock epochs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["StageSpan", "EntityTrace", "Tracer"]


@dataclass
class StageSpan:
    """One stage's slice of an entity's journey.

    ``enqueued_at`` is when the entity entered the stage's input queue
    (equal to ``started_at`` in executors without queues), ``started_at``
    when a worker began the stage function, ``finished_at`` when it
    returned.
    """

    stage: str
    enqueued_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def wait_seconds(self) -> float:
        """Queue time ahead of this stage (0 when untracked)."""
        if self.enqueued_at is None or self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.enqueued_at)

    @property
    def service_seconds(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(0.0, self.finished_at - self.started_at)


@dataclass
class EntityTrace:
    """The full span record of one traced entity."""

    seq: int
    eid: object = None
    created_at: float = 0.0
    completed_at: float | None = None
    dead_lettered_at: str | None = None
    spans: dict[str, StageSpan] = field(default_factory=dict)

    def span(self, stage: str) -> StageSpan:
        existing = self.spans.get(stage)
        if existing is None:
            existing = StageSpan(stage=stage)
            self.spans[stage] = existing
        return existing

    # -- recording (executors call these) ------------------------------

    def record_enqueue(self, stage: str, at: float | None = None) -> None:
        self.span(stage).enqueued_at = time.perf_counter() if at is None else at

    def record_start(self, stage: str, at: float | None = None) -> None:
        span = self.span(stage)
        span.started_at = time.perf_counter() if at is None else at
        if span.enqueued_at is None:
            span.enqueued_at = span.started_at

    def record_finish(self, stage: str, at: float | None = None) -> None:
        self.span(stage).finished_at = time.perf_counter() if at is None else at

    def complete(self, at: float | None = None) -> None:
        self.completed_at = time.perf_counter() if at is None else at

    def dead_letter(self, stage: str) -> None:
        """Mark the trace as ending at ``stage`` (item never completed)."""
        self.dead_lettered_at = stage

    # -- analysis ------------------------------------------------------

    @property
    def total_latency(self) -> float:
        if self.completed_at is None:
            return 0.0
        return max(0.0, self.completed_at - self.created_at)

    def breakdown(self) -> dict[str, float]:
        """Stage → wait + service seconds, in recording order."""
        return {
            stage: span.wait_seconds + span.service_seconds
            for stage, span in self.spans.items()
        }

    def dominant_stage(self) -> str:
        """The stage responsible for most of this entity's latency."""
        parts = self.breakdown()
        return max(parts, key=lambda s: parts[s]) if parts else ""

    def to_dict(self) -> dict:
        """A JSON-able view (used by exporters and the CLI)."""
        return {
            "seq": self.seq,
            "eid": list(self.eid) if isinstance(self.eid, tuple) else self.eid,
            "latency_seconds": self.total_latency,
            "dead_lettered_at": self.dead_lettered_at,
            "stages": [
                {
                    "stage": span.stage,
                    "wait_seconds": span.wait_seconds,
                    "service_seconds": span.service_seconds,
                }
                for span in self.spans.values()
            ],
        }


class Tracer:
    """Samples and retains entity traces; thread-safe.

    Parameters
    ----------
    every:
        Trace one in ``every`` submissions (1 = all).  Sampling is by
        submission sequence number, so the traced subset is deterministic
        and identical across executors fed the same stream.
    capacity:
        Maximum number of traces retained; the oldest is evicted first.
    """

    def __init__(self, every: int = 1, capacity: int = 1024) -> None:
        if every < 1:
            raise ConfigurationError("every must be >= 1")
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.every = every
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: dict[int, EntityTrace] = {}  # insertion-ordered

    def should_trace(self, seq: int) -> bool:
        return seq % self.every == 0

    def start(self, seq: int, eid: object = None, at: float | None = None) -> EntityTrace | None:
        """Begin a trace for submission ``seq`` (None when not sampled)."""
        if not self.should_trace(seq):
            return None
        trace = EntityTrace(
            seq=seq, eid=eid, created_at=time.perf_counter() if at is None else at
        )
        with self._lock:
            self._traces[seq] = trace
            while len(self._traces) > self.capacity:
                self._traces.pop(next(iter(self._traces)))
        return trace

    def get(self, seq: int) -> EntityTrace | None:
        """The live trace for ``seq`` (None when unsampled or evicted)."""
        with self._lock:
            return self._traces.get(seq)

    def traces(self) -> list[EntityTrace]:
        """All retained traces, oldest first (a copy)."""
        with self._lock:
            return list(self._traces.values())

    def slowest(self, n: int = 10) -> list[EntityTrace]:
        """The n completed traces with the highest end-to-end latency."""
        done = [t for t in self.traces() if t.completed_at is not None]
        return sorted(done, key=lambda t: t.total_latency, reverse=True)[:n]
