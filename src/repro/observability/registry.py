"""A lightweight, thread-safe metrics registry for every executor.

The paper's evaluation (§V, Figs. 11–13) stands on latency and throughput
numbers; this module is the substrate that makes those numbers come from
one instrumented code path instead of ad-hoc ``perf_counter()`` calls
scattered across executors.  Three instrument kinds cover the pipeline's
needs:

* :class:`Counter` — monotonically increasing totals (items per stage,
  comparisons generated/executed, dead letters, retries);
* :class:`Gauge` — last-written values (queue depths sampled at put/get);
* :class:`Histogram` — fixed-bucket distributions (per-stage service
  time, end-to-end latency), cumulative-bucket semantics compatible with
  the Prometheus exposition format.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  A registry constructed with
   ``enabled=False`` (or the shared :data:`NULL_REGISTRY`) hands out
   singleton null instruments whose methods are no-ops, and exposes
   ``enabled`` so wiring code can skip wrapping stages entirely — the
   disabled path adds no locks, no allocation, no timer reads.
2. **Thread safety.**  Instruments are shared across worker threads in
   the parallel framework; every mutation takes the instrument's lock
   (``+=`` on an attribute is *not* atomic under CPython's bytecode
   interleaving).  Instrument *creation* is idempotent and guarded by the
   registry lock, so two threads requesting the same (name, labels) get
   the same object.
3. **Executor-agnostic.**  Nothing here knows about stages or queues;
   the wiring lives in :mod:`repro.observability.instrument`.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterator, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
]

#: Default upper bounds (seconds) for service-time / latency histograms:
#: log-spaced from 10 µs to 10 s, the range spanned by a python stage call
#: on one side and a saturated queue on the other.  ``+Inf`` is implicit.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down; reads return the last write."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with Prometheus cumulative semantics.

    ``bounds`` are the inclusive upper bounds of the finite buckets, in
    strictly increasing order; an overflow (``+Inf``) bucket is implicit.
    ``observe`` is O(log #buckets) and takes one lock.
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_bucket_counts", "_count", "_sum")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 = the +Inf bucket
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left: bucket i holds values <= bounds[i] (Prometheus "le").
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative (upper bound, count) pairs, ending with (inf, count)."""
        with self._lock:
            raw = list(self._bucket_counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip((*self.bounds, float("inf")), raw):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (the upper bound of the
        bucket containing the q-th observation; inf maps to the last
        finite bound).  Coarse by construction — use raw samples when
        exactness matters; this exists for dashboards."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        for bound, cumulative in self.bucket_counts():
            if cumulative >= rank:
                return bound if bound != float("inf") else self.bounds[-1]
        return self.bounds[-1]


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    labels: LabelSet = ()
    bounds: tuple[float, ...] = ()
    count = 0
    sum = 0.0
    value = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> list[tuple[float, int]]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Owns every instrument of one pipeline run.

    Instruments are identified by ``(name, labels)``; requesting the same
    identity twice returns the same object, so independent call sites
    accumulate into one total.  A name must keep one instrument kind
    (requesting ``counter`` then ``gauge`` under the same name raises).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelSet], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    def _get_or_create(self, cls: type, name: str, labels: dict[str, str], **kwargs):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = (name, _label_key(labels))
        with self._lock:
            kind = self._kinds.get(name)
            if kind is not None and kind is not cls:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {kind.__name__}, "
                    f"requested {cls.__name__}"
                )
            existing = self._metrics.get(key)
            if existing is not None:
                return existing
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = cls
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- introspection --------------------------------------------------

    def collect(self) -> Iterator[Counter | Gauge | Histogram]:
        """All instruments, sorted by (name, labels) for stable exports."""
        with self._lock:
            metrics = list(self._metrics.items())
        for _, metric in sorted(metrics, key=lambda kv: kv[0]):
            yield metric

    def names(self) -> set[str]:
        """Distinct metric family names currently registered."""
        with self._lock:
            return {name for name, _ in self._metrics}

    def get(self, name: str, **labels: str) -> Counter | Gauge | Histogram | None:
        """The instrument at (name, labels), or None when never created."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Counter/gauge value at (name, labels); 0.0 when absent."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0


#: The shared disabled registry: every executor defaults to it, so the
#: un-instrumented hot path stays exactly as fast as before this layer.
NULL_REGISTRY = MetricsRegistry(enabled=False)
