"""Stage-level instrumentation: the one vocabulary every executor speaks.

The point of the observability layer is that the sequential pipeline, the
thread framework (PP/MPP), the multiprocess executor, and the simulator
all emit the *same* metric names for the same concepts, so a dashboard
(or a differential test) built against one executor reads all four.  The
canonical families:

========================================  =========  ======================================
name                                      kind       meaning
========================================  =========  ======================================
``er_stage_items_total{stage}``           counter    items a stage finished processing
``er_stage_service_seconds{stage}``       histogram  per-item stage service time
``er_queue_depth{stage}``                 gauge      stage input-queue depth at last put/get
``er_dead_letters_total{stage}``          counter    items dead-lettered at the stage
``er_retries_total{stage}``               counter    supervised re-executions at the stage
``er_comparisons_generated_total``        counter    candidate pairs out of ``f_cg``
``er_comparisons_executed_total``         counter    pairs actually scored by ``f_co``
``er_entities_total``                     counter    entities admitted into the run
``er_matches_total``                      counter    new matches recorded by ``f_cl``
``er_entity_latency_seconds``             histogram  end-to-end per-entity latency
========================================  =========  ======================================

:func:`declare_pipeline_metrics` pre-registers the full family set for a
plan's active stages, so every export carries the complete vocabulary
(zero-valued where an executor has nothing to report — e.g. queue depth
in the sequential pipeline) and name-set comparisons across executors are
exact.

:class:`InstrumentedStage` wraps a stage callable with timing and the
stage-specific counters while *delegating attribute access* to the
wrapped stage — executors and tests that read ``cg.generated`` or
``bb.pruned_blocks`` through the compiled plan keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from time import perf_counter

from repro.observability.registry import MetricsRegistry

__all__ = [
    "STAGE_ITEMS",
    "STAGE_SERVICE_SECONDS",
    "QUEUE_DEPTH",
    "DEAD_LETTERS",
    "RETRIES",
    "COMPARISONS_GENERATED",
    "COMPARISONS_EXECUTED",
    "ENTITIES",
    "MATCHES",
    "ENTITY_LATENCY_SECONDS",
    "PIPELINE_METRIC_NAMES",
    "WAL_RECORDS",
    "WAL_BYTES",
    "WAL_SYNCS",
    "CHECKPOINTS",
    "CHECKPOINT_SECONDS",
    "CHECKPOINT_EPOCH",
    "DURABILITY_METRIC_NAMES",
    "SHM_BYTES",
    "SHM_SEGMENTS",
    "SHM_ROWS",
    "POOL_SPAWNS",
    "POOL_REUSES",
    "SHM_METRIC_NAMES",
    "PARTITIONS_DISPATCHED",
    "PARTITION_PAIRS",
    "PARTITION_GROUPS",
    "PARTITION_IMBALANCE",
    "PARTITION_LARGEST_SHARE",
    "PARTITION_METRIC_NAMES",
    "declare_pipeline_metrics",
    "declare_durability_metrics",
    "declare_shm_metrics",
    "declare_partition_metrics",
    "InstrumentedStage",
]

STAGE_ITEMS = "er_stage_items_total"
STAGE_SERVICE_SECONDS = "er_stage_service_seconds"
QUEUE_DEPTH = "er_queue_depth"
DEAD_LETTERS = "er_dead_letters_total"
RETRIES = "er_retries_total"
COMPARISONS_GENERATED = "er_comparisons_generated_total"
COMPARISONS_EXECUTED = "er_comparisons_executed_total"
ENTITIES = "er_entities_total"
MATCHES = "er_matches_total"
ENTITY_LATENCY_SECONDS = "er_entity_latency_seconds"

#: Every family of the shared vocabulary (stage-labelled and global).
PIPELINE_METRIC_NAMES: tuple[str, ...] = (
    STAGE_ITEMS,
    STAGE_SERVICE_SECONDS,
    QUEUE_DEPTH,
    DEAD_LETTERS,
    RETRIES,
    COMPARISONS_GENERATED,
    COMPARISONS_EXECUTED,
    ENTITIES,
    MATCHES,
    ENTITY_LATENCY_SECONDS,
)

WAL_RECORDS = "er_wal_records_total"
WAL_BYTES = "er_wal_bytes_total"
WAL_SYNCS = "er_wal_syncs_total"
CHECKPOINTS = "er_checkpoints_total"
CHECKPOINT_SECONDS = "er_checkpoint_seconds"
CHECKPOINT_EPOCH = "er_checkpoint_epoch"

#: The durability families, declared only for durable (WAL-backed) runs —
#: kept out of :data:`PIPELINE_METRIC_NAMES` so the cross-executor
#: name-set comparisons of plain runs stay exact.
DURABILITY_METRIC_NAMES: tuple[str, ...] = (
    WAL_RECORDS,
    WAL_BYTES,
    WAL_SYNCS,
    CHECKPOINTS,
    CHECKPOINT_SECONDS,
    CHECKPOINT_EPOCH,
)

SHM_BYTES = "er_shm_bytes"
SHM_SEGMENTS = "er_shm_segments"
SHM_ROWS = "er_shm_rows"
POOL_SPAWNS = "er_pool_spawns_total"
POOL_REUSES = "er_pool_reuses_total"

#: The shared-memory / persistent-pool families, declared only when the
#: multiprocess executor negotiates the ``"shm"`` dispatch mode against a
#: :class:`~repro.core.backends.shm.SharedMemoryBackend` — like
#: :data:`DURABILITY_METRIC_NAMES`, kept out of
#: :data:`PIPELINE_METRIC_NAMES` so plain runs' cross-executor name-set
#: comparisons stay exact.
SHM_METRIC_NAMES: tuple[str, ...] = (
    SHM_BYTES,
    SHM_SEGMENTS,
    SHM_ROWS,
    POOL_SPAWNS,
    POOL_REUSES,
)

PARTITIONS_DISPATCHED = "er_partitions_dispatched_total"
PARTITION_PAIRS = "er_partition_pairs_total"
PARTITION_GROUPS = "er_partition_groups"
PARTITION_IMBALANCE = "er_partition_imbalance"
PARTITION_LARGEST_SHARE = "er_partition_largest_share"

#: The partitioned-dispatch balance/skew families, declared only when the
#: multiprocess executor negotiates block-partitioned dispatch — same
#: opt-in rule as :data:`SHM_METRIC_NAMES`.  The gauges describe the most
#: recent run's :class:`~repro.parallel.allocation.PartitionPlan`; the
#: counters accumulate across increments.
PARTITION_METRIC_NAMES: tuple[str, ...] = (
    PARTITIONS_DISPATCHED,
    PARTITION_PAIRS,
    PARTITION_GROUPS,
    PARTITION_IMBALANCE,
    PARTITION_LARGEST_SHARE,
)


def declare_pipeline_metrics(
    registry: MetricsRegistry, stage_names: Iterable[str]
) -> None:
    """Pre-register the full metric vocabulary for the given stages.

    Idempotent; a no-op on a disabled registry.  Called by
    :class:`~repro.core.plan.CompiledPipeline` (covering the three real
    executors) and by the simulator.
    """
    if not registry.enabled:
        return
    for stage in stage_names:
        registry.counter(STAGE_ITEMS, stage=stage)
        registry.histogram(STAGE_SERVICE_SECONDS, stage=stage)
        registry.gauge(QUEUE_DEPTH, stage=stage)
        registry.counter(DEAD_LETTERS, stage=stage)
        registry.counter(RETRIES, stage=stage)
    registry.counter(COMPARISONS_GENERATED)
    registry.counter(COMPARISONS_EXECUTED)
    registry.counter(ENTITIES)
    registry.counter(MATCHES)
    registry.histogram(ENTITY_LATENCY_SECONDS)


def declare_durability_metrics(registry: MetricsRegistry) -> None:
    """Pre-register the WAL/checkpoint families (durable runs only).

    Idempotent; a no-op on a disabled registry.  Called by
    :class:`~repro.core.backends.durable.DurableBackend`.
    """
    if not registry.enabled:
        return
    registry.counter(WAL_RECORDS)
    registry.counter(WAL_BYTES)
    registry.counter(WAL_SYNCS)
    registry.counter(CHECKPOINTS)
    registry.histogram(CHECKPOINT_SECONDS)
    registry.gauge(CHECKPOINT_EPOCH)


def declare_shm_metrics(registry: MetricsRegistry) -> None:
    """Pre-register the shared-memory/pool families (shm-dispatch runs).

    Idempotent; a no-op on a disabled registry.  Called by
    :class:`~repro.parallel.mp_framework.MultiprocessERPipeline` when it
    negotiates the shared-memory dispatch mode.
    """
    if not registry.enabled:
        return
    registry.gauge(SHM_BYTES)
    registry.gauge(SHM_SEGMENTS)
    registry.gauge(SHM_ROWS)
    registry.counter(POOL_SPAWNS)
    registry.counter(POOL_REUSES)


def declare_partition_metrics(registry: MetricsRegistry) -> None:
    """Pre-register the partition balance/skew families.

    Idempotent; a no-op on a disabled registry.  Called by
    :class:`~repro.parallel.mp_framework.MultiprocessERPipeline` when it
    negotiates block-partitioned dispatch.
    """
    if not registry.enabled:
        return
    registry.counter(PARTITIONS_DISPATCHED)
    registry.counter(PARTITION_PAIRS)
    registry.gauge(PARTITION_GROUPS)
    registry.gauge(PARTITION_IMBALANCE)
    registry.gauge(PARTITION_LARGEST_SHARE)


class InstrumentedStage:
    """A stage callable wrapped with service timing and item counting.

    Attribute reads fall through to the wrapped stage, so counters like
    ``generated`` / ``pruned_blocks`` / ``matches`` stay reachable through
    the compiled plan whether or not metrics are on.
    """

    __slots__ = ("inner", "name", "_service", "_items", "_observe_message")

    def __init__(self, name: str, inner: Callable, registry: MetricsRegistry) -> None:
        self.inner = inner
        self.name = name
        self._service = registry.histogram(STAGE_SERVICE_SECONDS, stage=name)
        self._items = registry.counter(STAGE_ITEMS, stage=name)
        self._observe_message = _message_observer(name, registry)

    def __call__(self, message):
        start = perf_counter()
        out = self.inner(message)
        self._service.observe(perf_counter() - start)
        self._items.inc()
        if self._observe_message is not None:
            self._observe_message(message, out)
        return out

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def _message_observer(name: str, registry: MetricsRegistry):
    """Stage-specific counter hook (None for stages with nothing extra).

    The hooks read sizes off the inter-stage messages rather than diffing
    stage-internal counters, so they stay correct when several executors
    (or several supervised retries) interleave on one compiled plan.
    """
    if name == "cg":
        generated = registry.counter(COMPARISONS_GENERATED)

        def observe_cg(message, out) -> None:
            generated.inc(len(out.candidates))

        return observe_cg
    if name == "co":
        executed = registry.counter(COMPARISONS_EXECUTED)

        def observe_co(message, out) -> None:
            executed.inc(len(message.comparisons))

        return observe_co
    if name == "cl":
        matches = registry.counter(MATCHES)

        def observe_cl(message, out) -> None:
            if out:
                matches.inc(len(out))

        return observe_cl
    return None
