"""repro — reproduction of "End-to-end Task Based Parallelization for
Entity Resolution on Dynamic Data" (Gazzarri & Herschel, ICDE 2021).

The package provides:

* a functional model for ER on dynamic data (:mod:`repro.core.model`),
* an optimized sequential pipeline (:class:`repro.core.StreamERPipeline`),
* a task-parallel framework with micro-batching (:mod:`repro.parallel`),
* batch and PI-Block baselines (:mod:`repro.batch`, :mod:`repro.piblock`),
* synthetic datasets mirroring the paper's evaluation data
  (:mod:`repro.datasets`), and
* the evaluation metrics of §V (:mod:`repro.evaluation`).

Quickstart::

    from repro import StreamERConfig, StreamERPipeline
    from repro.types import EntityDescription

    pipeline = StreamERPipeline(StreamERConfig(alpha=100, beta=0.1))
    for entity in my_stream:
        for match in pipeline.process(entity):
            print("match:", match.left, match.right)
"""

from repro.core import (
    ERResult,
    StreamERConfig,
    StreamERPipeline,
    combine,
    fold_er,
    stream_er,
)
from repro.types import Comparison, EntityDescription, Match, Profile

__version__ = "1.0.0"

__all__ = [
    "StreamERConfig",
    "StreamERPipeline",
    "ERResult",
    "EntityDescription",
    "Profile",
    "Comparison",
    "Match",
    "combine",
    "fold_er",
    "stream_er",
    "__version__",
]
