"""State maintained while resolving a dynamic dataset.

Following the paper's "avoiding shared state" design, the components here are
each owned by exactly one pipeline stage:

* :class:`BlockCollection` + its blacklist — owned by ``f_bb+bp``;
* :class:`ProfileStore` (the profile map *PM*) — owned by ``f_lm``;
* :class:`MatchStore` — owned by ``f_cl``.

Blocks store entity *identifiers only* (the paper's profile-maintenance
choice); profiles are re-attached later via the profile store.

These classes are also the unit of pluggable storage: a
:class:`~repro.core.backends.StateBackend` groups one instance of each (or
a sharded/remote equivalent with the same interface) and hands them to the
stages, so executors never hard-code where state lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping

from repro.types import EntityId, Match, Profile, pair_key


class BlockCollection:
    """An incrementally maintained token-to-entities block index.

    Each block is an insertion-ordered list of entity identifiers.  Blocks
    of size one are kept (they may grow later, as the paper stresses with
    the "Jane" block of the running example).

    Size statistics (``sizes``, ``total_assignments``, ``total_comparisons``)
    are maintained as running counters in :meth:`add`, :meth:`remove_block`
    and :meth:`discard`, so reading them is O(1) instead of O(#blocks) —
    monitoring snapshots and purging heuristics can poll them freely.
    """

    __slots__ = ("_blocks", "_sizes", "_assignments", "_comparisons")

    def __init__(self) -> None:
        self._blocks: dict[str, list[EntityId]] = {}
        self._sizes: dict[str, int] = {}
        self._assignments = 0
        self._comparisons = 0

    def add(self, key: str, eid: EntityId) -> int:
        """Append ``eid`` to block ``key`` (creating it) and return its size."""
        block = self._blocks.get(key)
        if block is None:
            block = []
            self._blocks[key] = block
        size_before = len(block)
        block.append(eid)
        self._sizes[key] = size_before + 1
        self._assignments += 1
        self._comparisons += size_before
        return size_before + 1

    def remove_block(self, key: str) -> None:
        """Drop an entire block (used by block pruning)."""
        block = self._blocks.pop(key, None)
        if block is not None:
            n = self._sizes.pop(key, len(block))
            self._assignments -= n
            self._comparisons -= n * (n - 1) // 2

    def discard(self, key: str, eid: EntityId) -> bool:
        """Remove one entity from block ``key`` (windowed eviction, updates).

        Empty blocks are dropped.  Returns True when an assignment was
        actually removed.  This is the *only* sanctioned way to shrink a
        block — mutating the list returned by :meth:`block` directly would
        silently corrupt the running size counters.
        """
        block = self._blocks.get(key)
        if block is None or eid not in block:
            return False
        block.remove(eid)
        remaining = len(block)
        self._assignments -= 1
        self._comparisons -= remaining
        if remaining:
            self._sizes[key] = remaining
        else:
            del self._blocks[key]
            del self._sizes[key]
        return True

    def block(self, key: str) -> list[EntityId]:
        """The members of block ``key`` (empty list if absent)."""
        return self._blocks.get(key, [])

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def keys(self) -> Iterator[str]:
        return iter(self._blocks)

    def items(self) -> Iterator[tuple[str, list[EntityId]]]:
        return iter(self._blocks.items())

    def sizes(self) -> Mapping[str, int]:
        """Read-only live view of block key → block size (O(1))."""
        return MappingProxyType(self._sizes)

    def total_assignments(self) -> int:
        """Total number of (entity, block) assignments (Σ |b|), O(1)."""
        return self._assignments

    def total_comparisons(self) -> int:
        """Aggregate cardinality ||B|| = Σ_b |b|(|b|−1)/2 (dirty ER), O(1)."""
        return self._comparisons


@dataclass
class Blacklist:
    """Keys of blocks already pruned for exceeding the size bound α."""

    keys: set[str] = field(default_factory=set)

    def add(self, key: str) -> None:
        self.keys.add(key)

    def __contains__(self, key: str) -> bool:
        return key in self.keys

    def __len__(self) -> int:
        return len(self.keys)


class ProfileStore:
    """The profile map *PM*: entity identifier → full standardized profile."""

    __slots__ = ("_profiles",)

    def __init__(self) -> None:
        self._profiles: dict[EntityId, Profile] = {}

    def put(self, profile: Profile) -> None:
        self._profiles[profile.eid] = profile

    def get(self, eid: EntityId) -> Profile | None:
        return self._profiles.get(eid)

    def __contains__(self, eid: EntityId) -> bool:
        return eid in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def values(self) -> Iterator[Profile]:
        """All stored profiles, in registration order."""
        return iter(self._profiles.values())

    def remove(self, eid: EntityId) -> bool:
        """Drop a profile (used by windowed state eviction)."""
        return self._profiles.pop(eid, None) is not None


class MatchStore:
    """The growing set *M* of discovered matches, in discovery order."""

    __slots__ = ("_keys", "_matches")

    def __init__(self) -> None:
        self._keys: set[tuple[EntityId, EntityId]] = set()
        self._matches: list[Match] = []

    def add(self, match: Match) -> bool:
        """Record a match; returns False if the pair was already known."""
        key = match.key()
        if key in self._keys:
            return False
        self._keys.add(key)
        self._matches.append(match)
        return True

    def __contains__(self, pair: tuple[EntityId, EntityId]) -> bool:
        return pair_key(*pair) in self._keys

    def __len__(self) -> int:
        return len(self._matches)

    def matches(self) -> list[Match]:
        """All matches in discovery order (a copy)."""
        return list(self._matches)

    def pairs(self) -> set[tuple[EntityId, EntityId]]:
        """Canonical pair keys of all matches (a copy)."""
        return set(self._keys)


@dataclass
class ERState:
    """The full state σ = ⟨M, B⟩ plus the auxiliary stores of §IV-A.

    The fields are duck-typed: a sharded backend supplies sharded stores
    with the same interfaces (see :mod:`repro.core.backends`).
    """

    blocks: BlockCollection = field(default_factory=BlockCollection)
    blacklist: Blacklist = field(default_factory=Blacklist)
    profiles: ProfileStore = field(default_factory=ProfileStore)
    matches: MatchStore = field(default_factory=MatchStore)
