"""Core of the reproduction: functional model, state, plan, pipeline."""

from repro.core.backends import (
    CooccurrenceCounter,
    DurabilityConfig,
    DurableBackend,
    InMemoryBackend,
    ShardedBackend,
    StateBackend,
)
from repro.core.cleanclean import combine, combine_many, source_of, tag, tag_pairs
from repro.core.persistence import dump_state, load_state
from repro.core.config import StreamERConfig, SupervisionPolicy
from repro.core.model import (
    FunctionalState,
    ModelConfig,
    f_er,
    fold_er,
    stream_er,
)
from repro.core.pipeline import ERResult, StreamERPipeline
from repro.core.plan import STAGE_ORDER, CompiledPipeline, PipelinePlan, StageSpec
from repro.core.state import (
    Blacklist,
    BlockCollection,
    ERState,
    MatchStore,
    ProfileStore,
)

__all__ = [
    "StreamERConfig",
    "SupervisionPolicy",
    "StreamERPipeline",
    "ERResult",
    "ERState",
    "PipelinePlan",
    "StageSpec",
    "CompiledPipeline",
    "STAGE_ORDER",
    "StateBackend",
    "InMemoryBackend",
    "ShardedBackend",
    "DurableBackend",
    "DurabilityConfig",
    "CooccurrenceCounter",
    "BlockCollection",
    "Blacklist",
    "ProfileStore",
    "MatchStore",
    "FunctionalState",
    "ModelConfig",
    "f_er",
    "fold_er",
    "stream_er",
    "combine",
    "combine_many",
    "tag",
    "tag_pairs",
    "source_of",
    "dump_state",
    "load_state",
]
