"""The sequential (SEQ) stream ER pipeline.

Compiles the :class:`~repro.core.plan.PipelinePlan` for its configuration
into a single-threaded executor that processes one entity description at a
time, supporting both incremental and streaming use.  Per-stage wall-clock
time is accumulated so the bottleneck analysis of Figure 6 can be
regenerated, and per-stage counters expose the comparison-reduction
numbers of Table III / Figure 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.backends import StateBackend
from repro.core.config import StreamERConfig
from repro.core.plan import PipelinePlan
from repro.core.state import ERState
from repro.errors import ConfigurationError
from repro.invariants.checker import InvariantChecker
from repro.observability.instrument import DEAD_LETTERS, ENTITIES, ENTITY_LATENCY_SECONDS
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.trace import Tracer
from repro.types import DeadLetter, EntityDescription, Match, StageTimings


@dataclass
class ERResult:
    """Summary of a (partial) pipeline run.

    ``items_failed`` / ``retries`` / ``dead_letters`` are populated by
    executors running under supervision (the parallel frameworks, or
    :meth:`StreamERPipeline.process_many` with ``on_error="dead_letter"``);
    they stay at their zero defaults for fail-fast runs.
    """

    entities_processed: int = 0
    matches: list[Match] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    comparisons_generated: int = 0
    comparisons_after_cleaning: int = 0
    blocks_pruned: int = 0
    keys_ghosted: int = 0
    elapsed_seconds: float = 0.0
    items_failed: int = 0
    retries: int = 0
    dead_letters: list[DeadLetter] = field(default_factory=list)

    @property
    def match_pairs(self) -> set[tuple]:
        """Canonical pair keys of all matches found."""
        return {m.key() for m in self.matches}

    @property
    def dead_letter_ids(self) -> set:
        """Entity identifiers of all dead-lettered items."""
        return {d.entity_id for d in self.dead_letters}

    @classmethod
    def merge(cls, results: Iterable["ERResult"]) -> "ERResult":
        """Combine results of runs over disjoint partitions (shards).

        Matches are deduplicated by canonical pair key (a pair discovered
        in two partitions counts once); counters, timings, failures and
        dead letters are summed; ``elapsed_seconds`` is the *maximum* over
        the inputs, since sharded partitions execute concurrently.
        """
        merged = cls()
        seen: set[tuple] = set()
        elapsed = 0.0
        for result in results:
            merged.entities_processed += result.entities_processed
            for match in result.matches:
                key = match.key()
                if key not in seen:
                    seen.add(key)
                    merged.matches.append(match)
            for stage, seconds in result.timings.seconds.items():
                merged.timings.add(stage, seconds)
            merged.comparisons_generated += result.comparisons_generated
            merged.comparisons_after_cleaning += result.comparisons_after_cleaning
            merged.blocks_pruned += result.blocks_pruned
            merged.keys_ghosted += result.keys_ghosted
            merged.items_failed += result.items_failed
            merged.retries += result.retries
            merged.dead_letters.extend(result.dead_letters)
            elapsed = max(elapsed, result.elapsed_seconds)
        merged.elapsed_seconds = elapsed
        return merged


class StreamERPipeline:
    """Sequential end-to-end ER over dynamic data.

    The pipeline keeps all state across calls, so it can be fed one entity
    (:meth:`process`), an increment (:meth:`process_many`), or an unbounded
    stream (:meth:`stream`), and later fed again — the incremental ER fold
    of the functional model.

    Parameters
    ----------
    config:
        Pipeline parameters; see :class:`~repro.core.config.StreamERConfig`.
    instrument:
        When True (default), each stage call is timed individually.  Turn
        off to shave the timer overhead in throughput experiments.
    backend:
        Where the ER state lives; defaults to a fresh
        :class:`~repro.core.backends.InMemoryBackend`.
    plan:
        A pre-built :class:`~repro.core.plan.PipelinePlan` to compile; by
        default one is derived from ``config``.  When given, its embedded
        config wins.
    registry:
        An optional :class:`~repro.observability.MetricsRegistry`; when
        enabled, the pipeline emits the shared metric vocabulary (see
        ``docs/observability.md``).  Defaults to the disabled
        ``NULL_REGISTRY`` — zero overhead.
    tracer:
        An optional :class:`~repro.observability.Tracer`; sampled
        entities get a span-style per-stage
        :class:`~repro.observability.EntityTrace`.
    checker:
        An optional :class:`~repro.invariants.InvariantChecker`; when
        enabled, stage outputs are verified per message and the
        state-scope invariants run every ``checker.state_every`` entities.
        Defaults to ``None`` — no wrapping, zero overhead.
    wal_dir:
        When given, state is wrapped in a
        :class:`~repro.core.backends.DurableBackend`: every mutation is
        write-ahead logged under this directory, and the run can be
        resumed crash-consistently (see ``docs/durability.md``).
    checkpoint_every:
        Committed entities between snapshot checkpoints of the durable
        run (0 = never checkpoint).  Ignored without ``wal_dir``.
    fsync:
        Durable-run fsync policy: ``"always"``, ``"commit"`` (default)
        or ``"never"``.  Ignored without ``wal_dir``.
    resume:
        Recover state from an existing durable run directory instead of
        starting fresh.  Requires ``wal_dir``; ``entities_processed``
        continues from the recovered count.
    crash_point:
        Arms the WAL crash-injection hook
        (:class:`~repro.parallel.faults.CrashPoint`) — test harness only.

    The optional-stage attributes (``bg``, ``cc``) are ``None`` when the
    plan dropped those nodes (block/comparison cleaning disabled).
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        instrument: bool = True,
        backend: StateBackend | None = None,
        plan: PipelinePlan | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        checker: InvariantChecker | None = None,
        wal_dir: str | None = None,
        checkpoint_every: int = 0,
        fsync: str = "commit",
        resume: bool = False,
        crash_point: object | None = None,
    ) -> None:
        self.plan = plan if plan is not None else PipelinePlan.from_config(config)
        self.config = self.plan.config
        self.instrument = instrument
        self.timings = StageTimings()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer
        self.checker = checker if (checker is not None and checker.enabled) else None
        if self.checker is not None:
            self.checker.exempt_provider = lambda: {
                d.entity_id for d in self.dead_letters
            }
        recovered_count = 0
        if resume and wal_dir is None:
            raise ConfigurationError("resume=True requires wal_dir")
        if wal_dir is not None:
            from repro.core.backends.durable import (
                DurabilityConfig,
                DurableBackend,
                config_fingerprint,
            )

            durability = DurabilityConfig(
                wal_dir=wal_dir, checkpoint_every=checkpoint_every, fsync=fsync
            )
            fingerprint = config_fingerprint(self.config)
            if resume:
                from repro.durability.recovery import recover

                recovered = recover(wal_dir)
                backend = DurableBackend.resume(
                    durability,
                    recovered,
                    registry=self.registry,
                    fingerprint=fingerprint,
                    crash_point=crash_point,  # type: ignore[arg-type]
                )
                recovered_count = recovered.entities_processed
            else:
                if backend is None:
                    from repro.core.backends import InMemoryBackend

                    backend = InMemoryBackend()
                backend = DurableBackend(
                    backend,
                    durability,
                    registry=self.registry,
                    fingerprint=fingerprint,
                    crash_point=crash_point,  # type: ignore[arg-type]
                )
        self.compiled = self.plan.compile(
            backend, registry=self.registry, checker=self.checker
        )
        self.backend = self.compiled.backend
        self._entities_metric = self.registry.counter(ENTITIES)
        self._latency_metric = self.registry.histogram(ENTITY_LATENCY_SECONDS)
        self._metrics_on = self.registry.enabled
        self.dr = self.compiled.get("dr")
        self.bb = self.compiled.get("bb+bp")
        self.bg = self.compiled.get("bg")
        self.cg = self.compiled.get("cg")
        self.cc = self.compiled.get("cc")
        self.lm = self.compiled.get("lm")
        self.co = self.compiled.get("co")
        self.cl = self.compiled.get("cl")
        self._stages = tuple(stage for _, stage in self.compiled.ordered())
        self._entities_processed = recovered_count
        self.items_failed = 0
        self.retries_performed = 0
        self.dead_letters: list[DeadLetter] = []

    def close(self) -> None:
        """Release durable-run resources (fsync + close the live WAL).

        A no-op for plain in-memory runs; safe to call more than once.
        """
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    # -- state access -------------------------------------------------

    @property
    def state(self) -> ERState:
        """A view over the pipeline's distributed state components."""
        return self.backend.state()

    @property
    def entities_processed(self) -> int:
        return self._entities_processed

    # -- execution ----------------------------------------------------

    def process(self, entity: EntityDescription) -> list[Match]:
        """Run one entity end to end; returns the new matches it produced."""
        seq = self._entities_processed
        self._entities_processed += 1
        trace = self.tracer.start(seq, entity.eid) if self.tracer is not None else None
        entity_start = time.perf_counter() if (self._metrics_on or trace) else 0.0
        if self.instrument or trace is not None:
            message: object = entity
            for stage in self._stages:
                start = time.perf_counter()
                if trace is not None:
                    # No queues in the sequential executor: a stage's
                    # enqueue instant is its service start.
                    trace.record_start(stage.name, at=start)
                message = stage(message)
                end = time.perf_counter()
                if self.instrument:
                    self.timings.add(stage.name, end - start)
                if trace is not None:
                    trace.record_finish(stage.name, at=end)
            out = message
        else:
            out = entity
            for stage in self._stages:
                out = stage(out)
        if self._metrics_on:
            self._entities_metric.inc()
            self._latency_metric.observe(time.perf_counter() - entity_start)
        if trace is not None:
            trace.complete()
        if self.checker is not None:
            self.checker.after_entity()
        return out  # type: ignore[return-value]

    def process_many(
        self,
        entities: Iterable[EntityDescription],
        on_error: str = "raise",
    ) -> ERResult:
        """Process an increment; returns a summary over just that increment.

        ``on_error="raise"`` (default) propagates any stage exception.
        ``on_error="dead_letter"`` instead records the failing entity as a
        :class:`~repro.types.DeadLetter` and keeps going — the streaming
        posture, where one malformed description must not stop the feed.
        Note the entity may already have mutated shared state (e.g. been
        registered in some blocks) before failing; dead-lettering is a
        survival guarantee, not a transactional rollback.
        """
        if on_error not in ("raise", "dead_letter"):
            raise ConfigurationError(
                f'on_error must be "raise" or "dead_letter", got {on_error!r}'
            )
        start_generated = self.cg.generated
        start_materialized = self.lm.materialized
        start_pruned = self.bb.pruned_blocks
        start_ghosted = self.bg.ghosted_keys if self.bg is not None else 0
        start_failed = self.items_failed
        matches: list[Match] = []
        dead: list[DeadLetter] = []
        count = 0
        wall_start = time.perf_counter()
        for entity in entities:
            count += 1
            if on_error == "raise":
                matches.extend(self.process(entity))
                continue
            try:
                matches.extend(self.process(entity))
            except Exception as exc:
                letter = DeadLetter(
                    stage="pipeline", entity_id=entity.eid, error=repr(exc)
                )
                dead.append(letter)
                self.dead_letters.append(letter)
                self.items_failed += 1
                if self._metrics_on:
                    self.registry.counter(DEAD_LETTERS, stage="pipeline").inc()
        elapsed = time.perf_counter() - wall_start
        end_ghosted = self.bg.ghosted_keys if self.bg is not None else 0
        return ERResult(
            entities_processed=count,
            matches=matches,
            timings=self.timings,
            comparisons_generated=self.cg.generated - start_generated,
            comparisons_after_cleaning=self.lm.materialized - start_materialized,
            blocks_pruned=self.bb.pruned_blocks - start_pruned,
            keys_ghosted=end_ghosted - start_ghosted,
            elapsed_seconds=elapsed,
            items_failed=self.items_failed - start_failed,
            dead_letters=dead,
        )

    def stream(self, entities: Iterable[EntityDescription]) -> Iterator[tuple[EntityDescription, list[Match]]]:
        """Lazily process a stream, yielding (entity, new matches) pairs."""
        for entity in entities:
            yield entity, self.process(entity)

    # -- statistics ---------------------------------------------------

    def summary(self) -> ERResult:
        """Cumulative summary since pipeline construction."""
        return ERResult(
            entities_processed=self._entities_processed,
            matches=self.cl.matches.matches(),
            timings=self.timings,
            comparisons_generated=self.cg.generated,
            comparisons_after_cleaning=self.lm.materialized,
            blocks_pruned=self.bb.pruned_blocks,
            keys_ghosted=self.bg.ghosted_keys if self.bg is not None else 0,
            elapsed_seconds=self.timings.total(),
            items_failed=self.items_failed,
            dead_letters=list(self.dead_letters),
        )
