"""`DurableBackend`: WAL + checkpoint durability as a backend decorator.

Durability is layered *under* the :class:`StateBackend` seam rather than
into any executor: ``DurableBackend`` wraps an
:class:`~repro.core.backends.InMemoryBackend` (or a sharded backend —
the store proxies are duck-typed) and replaces each mutable store with a
logging proxy that appends a WAL record before applying the mutation.
Stages receive the proxies through plan compilation exactly as they
would receive the bare stores, so no stage knows durability exists.

The unit of crash consistency is the *entity*: plan compilation wraps
the classification stage in a :class:`CommittingStage` that calls
:meth:`DurableBackend.commit_entity` after each entity leaves the
pipeline, appending a sequenced ``commit`` record (and, under the
default ``fsync="commit"`` policy, fsyncing the log).  Recovery replays
up to the last commit; an entity whose commit never hit the log is
re-fed by the caller.  This guarantee is exact for the sequential
executor; concurrent executors interleave entity mutations before their
commits, so for them replay-to-last-commit is best-effort (see
``docs/durability.md``).

Checkpoints bound replay: every ``checkpoint_every`` committed entities
the backend snapshots the full state (atomic rename, monotonic epoch),
rolls the WAL to a fresh segment, and prunes segments older than the
retained snapshots.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.core.state import ERState
from repro.durability.codec import encode_id, encode_match, encode_profile
from repro.durability.recovery import RecoveredState
from repro.durability.snapshot import (
    list_snapshots,
    snapshot_path,
    state_document,
    write_snapshot,
)
from repro.durability.wal import CrashPoint, WalWriter, segment_path
from repro.errors import ConfigurationError, RecoveryError
from repro.observability.instrument import (
    CHECKPOINT_EPOCH,
    CHECKPOINT_SECONDS,
    CHECKPOINTS,
    WAL_BYTES,
    WAL_RECORDS,
    WAL_SYNCS,
    declare_durability_metrics,
)
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "DurabilityConfig",
    "DurableBackend",
    "CommittingStage",
    "config_fingerprint",
]

META_FILE = "meta.json"
META_FORMAT = "repro-er-durable"
META_VERSION = 1


def config_fingerprint(config: Any) -> dict:
    """The resolution-relevant parameters a durable run is pinned to.

    Resuming under a different configuration would silently change the
    semantics of the replayed fold, so the fingerprint is written to
    ``meta.json`` at run start and verified on resume.  Duck-typed so a
    bare dict (e.g. from a loaded ``meta.json``) works too.
    """
    if isinstance(config, dict):
        return dict(config)
    classifier = getattr(config, "classifier", None)
    comparator = getattr(config, "comparator", None)
    return {
        "alpha": getattr(config, "alpha", None),
        "beta": getattr(config, "beta", None),
        "enable_block_cleaning": getattr(config, "enable_block_cleaning", None),
        "enable_comparison_cleaning": getattr(
            config, "enable_comparison_cleaning", None
        ),
        "clean_clean": getattr(config, "clean_clean", None),
        "threshold": getattr(classifier, "threshold", None),
        "comparator": type(comparator).__name__ if comparator is not None else None,
    }


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs of a durable run directory.

    ``checkpoint_every`` counts committed entities between snapshots
    (0 disables checkpointing — the epoch-0 WAL grows unbounded);
    ``fsync`` is the :class:`~repro.durability.wal.WalWriter` policy;
    ``keep_snapshots`` bounds retention — older snapshots and the WAL
    segments only they need are deleted after each checkpoint.
    """

    wal_dir: str | Path
    checkpoint_every: int = 0
    fsync: str = "commit"
    keep_snapshots: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every cannot be negative")
        if self.keep_snapshots < 1:
            raise ConfigurationError("keep_snapshots must be at least 1")


class _LoggedBlocks:
    """Block-collection proxy: journals every mutation, delegates reads."""

    __slots__ = ("inner", "_journal")

    def __init__(self, inner: Any, journal: Callable[[dict], None]) -> None:
        self.inner = inner
        self._journal = journal

    def add(self, key: str, eid: Any) -> int:
        self._journal({"op": "block_add", "k": key, "eid": encode_id(eid)})
        return self.inner.add(key, eid)

    def remove_block(self, key: str) -> None:
        self._journal({"op": "block_remove", "k": key})
        self.inner.remove_block(key)

    def discard(self, key: str, eid: Any) -> bool:
        self._journal({"op": "block_discard", "k": key, "eid": encode_id(eid)})
        return self.inner.discard(key, eid)

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)


class _LoggedBlacklist:
    __slots__ = ("inner", "_journal")

    def __init__(self, inner: Any, journal: Callable[[dict], None]) -> None:
        self.inner = inner
        self._journal = journal

    def add(self, key: str) -> None:
        self._journal({"op": "blacklist_add", "k": key})
        self.inner.add(key)

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)


class _LoggedProfiles:
    __slots__ = ("inner", "_journal")

    def __init__(self, inner: Any, journal: Callable[[dict], None]) -> None:
        self.inner = inner
        self._journal = journal

    def put(self, profile: Any) -> None:
        self._journal({"op": "profile_put", "p": encode_profile(profile)})
        self.inner.put(profile)

    def remove(self, eid: Any) -> bool:
        self._journal({"op": "profile_remove", "eid": encode_id(eid)})
        return self.inner.remove(eid)

    def __contains__(self, eid: Any) -> bool:
        return eid in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)


class _LoggedMatches:
    __slots__ = ("inner", "_journal")

    def __init__(self, inner: Any, journal: Callable[[dict], None]) -> None:
        self.inner = inner
        self._journal = journal

    def add(self, match: Any) -> bool:
        self._journal({"op": "match_add", "m": encode_match(match)})
        return self.inner.add(match)

    def __contains__(self, pair: Any) -> bool:
        return pair in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)


class _LoggedDictionary:
    """Token-dictionary proxy: journals each *first* assignment, in order.

    The lock spans (lookup, intern, journal) so under concurrent ``f_dr``
    workers exactly one ``token`` record is written per distinct token,
    in the order ids were actually assigned — replaying the records in
    log order reproduces the id space bit for bit.
    """

    __slots__ = ("inner", "_journal", "_lock")

    def __init__(self, inner: Any, journal: Callable[[dict], None]) -> None:
        self.inner = inner
        self._journal = journal
        self._lock = threading.Lock()

    def intern(self, token: str) -> int:
        tid = self.inner.lookup(token)
        if tid is not None:
            return tid
        with self._lock:
            tid = self.inner.lookup(token)
            if tid is not None:
                return tid
            self._journal({"op": "token", "t": token})
            return self.inner.intern(token)

    def intern_set(self, tokens: Any) -> frozenset[int]:
        return frozenset(self.intern(token) for token in tokens)

    def __contains__(self, token: str) -> bool:
        return token in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self):
        return iter(self.inner)

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)


class DurableBackend:
    """A :class:`StateBackend` decorator that makes every mutation durable.

    Build fresh with ``DurableBackend(inner, config)`` (the run directory
    must not already hold a durable run) or from a crash with
    :meth:`resume`.  ``fingerprint`` pins the resolution configuration in
    ``meta.json``; on resume a mismatching fingerprint refuses to run.
    ``crash_point`` arms the crash-injection hook on the WAL writer —
    test harness only.
    """

    def __init__(
        self,
        inner: Any,
        config: DurabilityConfig,
        registry: MetricsRegistry | None = None,
        fingerprint: dict | None = None,
        crash_point: CrashPoint | None = None,
        _recovered: RecoveredState | None = None,
    ) -> None:
        self.inner = inner
        self.config = config
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.crash_point = crash_point
        self.wal_dir = Path(config.wal_dir)
        self._commit_lock = threading.Lock()
        self._metrics_on = self.registry.enabled
        if self._metrics_on:
            declare_durability_metrics(self.registry)
            self._records_metric = self.registry.counter(WAL_RECORDS)
            self._bytes_metric = self.registry.counter(WAL_BYTES)
            self._syncs_metric = self.registry.counter(WAL_SYNCS)
            self._checkpoints_metric = self.registry.counter(CHECKPOINTS)
            self._checkpoint_seconds = self.registry.histogram(CHECKPOINT_SECONDS)
            self._epoch_metric = self.registry.gauge(CHECKPOINT_EPOCH)
        if _recovered is None:
            self.wal_dir.mkdir(parents=True, exist_ok=True)
            if (self.wal_dir / META_FILE).exists():
                raise ConfigurationError(
                    f"{self.wal_dir} already holds a durable run; resume it "
                    f"(repro-er resume) or point wal_dir at a fresh directory"
                )
            self.epoch = 0
            self.next_seq = 0
            self.entities_committed = 0
            self._write_meta(fingerprint or {})
            self._writer = WalWriter(
                segment_path(self.wal_dir, 0),
                epoch=0,
                fsync=config.fsync,
                crash_point=crash_point,
            )
        else:
            self._verify_meta(fingerprint)
            self.epoch = _recovered.epoch
            self.next_seq = _recovered.next_seq
            self.entities_committed = _recovered.entities_processed
            self._writer = WalWriter(
                _recovered.resume_segment,
                epoch=_recovered.epoch,
                fsync=config.fsync,
                crash_point=crash_point,
                resume_offset=_recovered.resume_offset,
            )
        if self._metrics_on:
            self._epoch_metric.set(self.epoch)
        journal = self._append
        self.blocks = _LoggedBlocks(inner.blocks, journal)
        self.blacklist = _LoggedBlacklist(inner.blacklist, journal)
        self.profiles = _LoggedProfiles(inner.profiles, journal)
        self.matches = _LoggedMatches(inner.matches, journal)
        self.dictionary = _LoggedDictionary(inner.dictionary, journal)
        self.cooccurrence = inner.cooccurrence  # stats only; not replayed

    @classmethod
    def resume(
        cls,
        config: DurabilityConfig,
        recovered: RecoveredState,
        registry: MetricsRegistry | None = None,
        fingerprint: dict | None = None,
        crash_point: CrashPoint | None = None,
    ) -> "DurableBackend":
        """Wrap a :func:`~repro.durability.recovery.recover` result.

        The recovered segment is truncated at the replay clamp point and
        appending continues from there, so the torn/uncommitted tail is
        physically gone after the first new record.
        """
        return cls(
            recovered.backend,
            config,
            registry=registry,
            fingerprint=fingerprint,
            crash_point=crash_point,
            _recovered=recovered,
        )

    # -- metadata ------------------------------------------------------

    def _write_meta(self, fingerprint: dict) -> None:
        payload = json.dumps(
            {
                "format": META_FORMAT,
                "version": META_VERSION,
                "fingerprint": fingerprint,
            },
            indent=2,
            sort_keys=True,
        )
        path = self.wal_dir / META_FILE
        with path.open("w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    def _verify_meta(self, fingerprint: dict | None) -> None:
        path = self.wal_dir / META_FILE
        try:
            meta = json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"cannot read {path}: {exc}") from exc
        if meta.get("format") != META_FORMAT:
            raise RecoveryError(f"{path} is not a repro durable-run descriptor")
        stored = meta.get("fingerprint") or {}
        if fingerprint is not None and stored != fingerprint:
            diff = {
                key: (stored.get(key), fingerprint.get(key))
                for key in sorted(set(stored) | set(fingerprint))
                if stored.get(key) != fingerprint.get(key)
            }
            raise RecoveryError(
                f"configuration fingerprint mismatch for {self.wal_dir}: "
                f"{diff} (stored vs resuming) — resuming under different "
                f"parameters would change resolution semantics"
            )

    @staticmethod
    def stored_fingerprint(wal_dir: str | Path) -> dict:
        """The fingerprint a durable run was started with (for CLI resume)."""
        path = Path(wal_dir) / META_FILE
        try:
            meta = json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"cannot read {path}: {exc}") from exc
        if meta.get("format") != META_FORMAT:
            raise RecoveryError(f"{path} is not a repro durable-run descriptor")
        return meta.get("fingerprint") or {}

    # -- logging -------------------------------------------------------

    @property
    def wal_records_seen(self) -> int:
        """Append attempts over the whole run (crash-point index space)."""
        return self._writer.records_seen

    def _append(self, record: dict) -> None:
        writer = self._writer
        bytes_before = writer.bytes_written
        syncs_before = writer.syncs
        writer.append(record)
        if self._metrics_on:
            self._records_metric.inc()
            self._bytes_metric.inc(writer.bytes_written - bytes_before)
            if writer.syncs > syncs_before:
                self._syncs_metric.inc(writer.syncs - syncs_before)

    def commit_entity(self, eid: Any) -> None:
        """Mark one entity fully processed: the crash-consistency boundary."""
        with self._commit_lock:
            seq = self.next_seq
            self.next_seq += 1
            self.entities_committed += 1
            self._append(
                {
                    "op": "commit",
                    "seq": seq,
                    "eid": encode_id(eid),
                    "n": self.entities_committed,
                }
            )
            if self.config.fsync == "commit":
                self._sync()
            every = self.config.checkpoint_every
            if every and self.entities_committed % every == 0:
                self.checkpoint()

    def _sync(self) -> None:
        before = self._writer.syncs
        self._writer.sync()
        if self._metrics_on and self._writer.syncs > before:
            self._syncs_metric.inc(self._writer.syncs - before)

    # -- checkpointing -------------------------------------------------

    def checkpoint(self) -> Path:
        """Snapshot the full state, roll the WAL, prune old artifacts."""
        start = time.perf_counter()
        self._sync()
        new_epoch = self.epoch + 1
        document = state_document(
            self.inner,
            entities_processed=self.entities_committed,
            epoch=new_epoch,
            next_seq=self.next_seq,
        )
        path = write_snapshot(snapshot_path(self.wal_dir, new_epoch), document)
        records_seen = self._writer.records_seen
        self._writer.close()
        self._writer = WalWriter(
            segment_path(self.wal_dir, new_epoch),
            epoch=new_epoch,
            fsync=self.config.fsync,
            crash_point=self.crash_point,
            records_before=records_seen,
        )
        self.epoch = new_epoch
        self._prune()
        if self._metrics_on:
            self._checkpoints_metric.inc()
            self._checkpoint_seconds.observe(time.perf_counter() - start)
            self._epoch_metric.set(new_epoch)
        return path

    def _prune(self) -> None:
        """Drop snapshots beyond retention and the segments only they need."""
        snapshots = list_snapshots(self.wal_dir)
        if len(snapshots) <= self.config.keep_snapshots:
            return
        cut = len(snapshots) - self.config.keep_snapshots
        oldest_kept = snapshots[cut][0]
        for epoch, path in snapshots[:cut]:
            path.unlink(missing_ok=True)
        for path in self.wal_dir.glob("wal-*.log"):
            stem = path.stem.removeprefix("wal-")
            if stem.isdigit() and int(stem) < oldest_kept:
                path.unlink(missing_ok=True)

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        self._writer.flush()

    def close(self) -> None:
        """Fsync and close the live segment (the clean-shutdown path)."""
        self._writer.close()

    def state(self) -> ERState:
        # Hand out the *proxies*, so anything reaching state through this
        # view (windowed eviction, invariant checks) stays journaled.
        return ERState(
            blocks=self.blocks,
            blacklist=self.blacklist,
            profiles=self.profiles,
            matches=self.matches,
        )

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)


class CommittingStage:
    """Wraps ``f_cl`` to commit each entity after classification.

    Innermost of the stage wrappers (instrumentation and invariant
    checking wrap outside it), so the commit record lands inside the
    stage's measured service time and attribute delegation still chains
    through to the real stage.
    """

    __slots__ = ("inner", "name", "_backend")

    def __init__(self, name: str, inner: Callable, backend: DurableBackend) -> None:
        self.inner = inner
        self.name = name
        self._backend = backend

    def __call__(self, message):
        out = self.inner(message)
        self._backend.commit_entity(message.profile.eid)
        return out

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)
