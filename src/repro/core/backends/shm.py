"""Shared-memory columnar state: dispatch without per-run serialization.

The multiprocess executor's original wire format shipped a ``{entity id →
packed token array}`` table with every chunk — the same entity's tokens
crossed the process boundary once per chunk it appeared in, and the pool
itself was torn down and re-spawned per increment.  Both benchmarks showed
the consequence: the interned kernel's single-core gains were eaten by
pickling and fork cost, and multiprocess ran *slower* than sequential.

This module removes the data from the wire.  Token payloads live in
``multiprocessing.shared_memory`` segments behind numpy-backed columnar
stores; workers attach once at pool spawn and afterwards receive only row
numbers.  Two design rules make that safe without any cross-process lock:

**Append-only columns.**  A :class:`SharedColumnStore` is a log of
variable-length records.  Records are addressed by a dense row number;
the directory column maps row → ``(data generation, offset, length)``.
Nothing is ever overwritten, so a row number handed to a worker stays
valid for the lifetime of the store.

**Epoch publication.**  A single writer (the parent process) appends the
record bytes first, then the directory entry, and only *then* bumps the
published-row counter — one aligned int64 store in the control segment.
Readers treat the published count as the horizon: a row below it is fully
written by construction, so readers can never observe a torn record, even
while the writer is mid-append.  Growth works the same way: capacity is
added as new, never-moved *generation* segments (doubling sizes, with
deterministic names recorded in the control segment), and a generation
becomes visible to readers only when the control segment's generation
counter is bumped after the segment is fully created.  Readers attach
lazily when a row points past what they have mapped.

Lifecycle is explicit because leaked ``/dev/shm`` segments outlive the
process: the creating process owns unlinking (guarded by pid, so a forked
worker can never unlink the parent's segments), ``close``/``unlink`` are
idempotent, the backend is a context manager, and a ``weakref.finalize``
hook covers garbage collection and interpreter exit.  Workers attaching
by name unregister the segment from :mod:`multiprocessing.resource_tracker`
so the tracker does not double-unlink (or warn) on worker exit.
"""

from __future__ import annotations

import itertools
import os
import pickle
import secrets
import weakref
from array import array
from bisect import bisect_right
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.backends.base import CooccurrenceCounter
from repro.core.state import (
    Blacklist,
    BlockCollection,
    ERState,
    MatchStore,
    ProfileStore,
)
from repro.errors import ConfigurationError
from repro.reading.interning import TokenDictionary, pack_ids
from repro.types import EntityId

__all__ = [
    "SHM_NAME_PREFIX",
    "SharedColumnReader",
    "SharedColumnStore",
    "SharedDictionaryReader",
    "SharedMemoryBackend",
    "SharedTokenArrayStore",
    "SharedTokenDictionary",
    "active_shm_segments",
    "attach_segment",
    "decode_membership",
    "decode_packed",
]

#: Every segment this module creates starts with this, so leak checks can
#: enumerate exactly our segments in ``/dev/shm`` and nothing else.
SHM_NAME_PREFIX = "reproER"

#: Hard cap on growth generations per store.  Capacities double, so 48
#: generations from a 256 KiB seed cover more address space than exists;
#: the cap only bounds the fixed-size capacity tables in the control
#: segment.
MAX_GENERATIONS = 48

_CTL_PUBLISHED = 0  # rows readers may touch
_CTL_DATA_GENS = 1  # data generations fully created
_CTL_DIR_GENS = 2  # directory generations fully created
_CTL_DATA_CAPS = 3  # + g: byte capacity of data generation g
_CTL_DIR_CAPS = _CTL_DATA_CAPS + MAX_GENERATIONS  # + g: row capacity of dir gen g
_CTL_SLOTS = _CTL_DIR_CAPS + MAX_GENERATIONS
_CTL_BYTES = _CTL_SLOTS * 8

_DIR_WIDTH = 3  # (data generation, offset, length) int64 triples

_counter = itertools.count()


def _fresh_prefix() -> str:
    """A segment-name prefix unique across processes and runs.

    Kept short: POSIX shm names are limited to 31 characters on some
    platforms (macOS), and generation suffixes ride on top of this.
    """
    return f"{SHM_NAME_PREFIX}{os.getpid():x}x{next(_counter):x}{secrets.token_hex(2)}"


#: Segment names created by (an ancestor of) this interpreter.  Used to
#: decide whether an attach must detach itself from the resource tracker:
#: a *spawned* worker starts with this empty (fresh module state) and must
#: unregister, while the creator itself and *forked* children — which
#: share the creator's tracker process — must leave the creator's
#: registration alone.
_created_names: set[str] = set()


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting cleanup duty.

    ``SharedMemory(name=...)`` registers the segment with the process's
    resource tracker, which would unlink it when *this* process exits —
    wrong for a worker attaching to the parent's state, and the source of
    the well-known "leaked shared_memory objects" warnings.  Creating
    processes own unlinking; attachers are read-only guests, so a fresh
    (spawned) process un-registers itself here.
    """
    segment = shared_memory.SharedMemory(name=name)
    if name not in _created_names:
        try:  # private attr carries the registered (leading-slash) form
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker variations
            pass
    return segment


def active_shm_segments(prefix: str | None = None) -> list[str]:
    """Names of live ``/dev/shm`` segments created by this module.

    The leak-detection primitive used by tests and the benchmark smoke
    runs: after a run plus cleanup, this must be empty.  With ``prefix``,
    restricted to one store/backend's segments.  Returns ``[]`` on
    platforms without a ``/dev/shm`` filesystem (the tests that rely on
    enumeration skip there).
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    wanted = prefix if prefix is not None else SHM_NAME_PREFIX
    try:
        return sorted(p.name for p in root.iterdir() if p.name.startswith(wanted))
    except OSError:  # pragma: no cover - racing unlinks
        return []


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a live numpy view at exit
        pass


def _unlink_segment(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


class SharedColumnStore:
    """Single-writer append-only record log in shared memory.

    One control segment publishes the row horizon and the generation
    tables; data lives in ``{prefix}d{g}`` byte segments, the row
    directory in ``{prefix}i{g}`` int64-triple segments.  ``append`` is
    the only mutator and must be called from one process (the parent);
    any number of :class:`SharedColumnReader` processes may read
    concurrently without locking.
    """

    def __init__(
        self,
        prefix: str | None = None,
        *,
        data_bytes: int = 1 << 18,
        dir_rows: int = 1 << 12,
    ) -> None:
        if data_bytes < 1 or dir_rows < 1:
            raise ConfigurationError("data_bytes and dir_rows must be >= 1")
        self.prefix = prefix if prefix is not None else _fresh_prefix()
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        try:
            ctl = self._create(f"{self.prefix}c", _CTL_BYTES)
            self._ctl = np.frombuffer(ctl.buf, dtype=np.int64, count=_CTL_SLOTS)
            self._ctl[:] = 0
            self._data: list[np.ndarray] = []
            self._dirs: list[np.ndarray] = []
            self._data_caps: list[int] = []
            self._dir_caps: list[int] = []
            self._dir_bases: list[int] = []
            self._grow_data(data_bytes)
            self._grow_dir(dir_rows)
        except BaseException:
            self._release_views()
            for segment in self._segments:
                _close_segment(segment)
                _unlink_segment(segment)
            raise
        self._rows = 0
        self._data_used = 0
        self._dir_used = 0
        self.bytes_appended = 0

    # -- segment plumbing ----------------------------------------------

    def _create(self, name: str, size: int) -> shared_memory.SharedMemory:
        segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments.append(segment)
        _created_names.add(name)
        return segment

    def _grow_data(self, capacity: int) -> None:
        g = len(self._data)
        if g >= MAX_GENERATIONS:
            raise ConfigurationError(
                f"column store {self.prefix!r} exceeded {MAX_GENERATIONS} "
                "data generations"
            )
        segment = self._create(f"{self.prefix}d{g}", capacity)
        # The OS may round the mapping up; readers must agree with the
        # writer on capacity, so the *recorded* capacity is authoritative.
        view = np.frombuffer(segment.buf, dtype=np.uint8, count=capacity)
        self._data.append(view)
        self._data_caps.append(capacity)
        self._ctl[_CTL_DATA_CAPS + g] = capacity
        self._ctl[_CTL_DATA_GENS] = g + 1  # publish after fully created
        self._data_used = 0

    def _grow_dir(self, rows: int) -> None:
        g = len(self._dirs)
        if g >= MAX_GENERATIONS:
            raise ConfigurationError(
                f"column store {self.prefix!r} exceeded {MAX_GENERATIONS} "
                "directory generations"
            )
        segment = self._create(f"{self.prefix}i{g}", rows * _DIR_WIDTH * 8)
        view = np.frombuffer(
            segment.buf, dtype=np.int64, count=rows * _DIR_WIDTH
        ).reshape(rows, _DIR_WIDTH)
        base = (self._dir_bases[-1] + self._dir_caps[-1]) if self._dirs else 0
        self._dirs.append(view)
        self._dir_caps.append(rows)
        self._dir_bases.append(base)
        self._ctl[_CTL_DIR_CAPS + g] = rows
        self._ctl[_CTL_DIR_GENS] = g + 1  # publish after fully created
        self._dir_used = 0

    # -- the write path ------------------------------------------------

    def append(self, payload) -> int:
        """Append one record; its row number (dense, starting at 0).

        Publication order is the store's whole correctness argument:
        data bytes, then the directory triple, then the row-horizon bump.
        A reader that sees row ``r`` published therefore sees ``r``'s
        directory entry and data bytes complete.
        """
        if self._closed:
            raise ConfigurationError(f"column store {self.prefix!r} is closed")
        view = memoryview(payload)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        length = view.nbytes
        if length > self._data_caps[-1] - self._data_used:
            self._grow_data(max(self._data_caps[-1] * 2, length))
        generation = len(self._data) - 1
        offset = self._data_used
        if length:
            self._data[generation][offset : offset + length] = np.frombuffer(
                view, dtype=np.uint8
            )
        self._data_used = offset + length
        self.bytes_appended += length
        if self._dir_used >= self._dir_caps[-1]:
            self._grow_dir(self._dir_caps[-1] * 2)
        self._dirs[-1][self._dir_used] = (generation, offset, length)
        self._dir_used += 1
        row = self._rows
        self._rows = row + 1
        self._ctl[_CTL_PUBLISHED] = self._rows  # publish last
        return row

    def __len__(self) -> int:
        return self._rows

    def record(self, row: int) -> np.ndarray:
        """The record's bytes as a zero-copy ``uint8`` view (writer side)."""
        if not 0 <= row < self._rows:
            raise IndexError(f"row {row} not in [0, {self._rows})")
        g = bisect_right(self._dir_bases, row) - 1
        generation, offset, length = self._dirs[g][row - self._dir_bases[g]]
        return self._data[int(generation)][int(offset) : int(offset) + int(length)]

    # -- lifecycle -----------------------------------------------------

    def segment_names(self) -> list[str]:
        return [segment.name for segment in self._segments]

    def shm_bytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    def _release_views(self) -> None:
        # numpy views keep the mapping exported; SharedMemory.close would
        # raise BufferError while any survive.
        self._ctl = None  # type: ignore[assignment]
        self._data = []
        self._dirs = []

    def close(self) -> None:
        """Detach mappings.  The segments stay until :meth:`unlink`."""
        if self._closed:
            return
        self._closed = True
        self._release_views()
        for segment in self._segments:
            _close_segment(segment)

    def unlink(self) -> None:
        """Remove the segments from the system (creator's duty)."""
        self.close()
        for segment in self._segments:
            _unlink_segment(segment)
            _created_names.discard(segment.name)


class SharedColumnReader:
    """Lock-free reading end of a :class:`SharedColumnStore`.

    Attach from any process by the store's prefix.  Generations are
    mapped lazily: a row past the currently-mapped horizon triggers a
    re-read of the control segment and attachment of whatever new
    generations the writer has published since.  Reads return zero-copy
    ``uint8`` views into the shared mapping.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        ctl = attach_segment(f"{prefix}c")
        self._segments.append(ctl)
        self._ctl = np.frombuffer(ctl.buf, dtype=np.int64, count=_CTL_SLOTS)
        self._data: list[np.ndarray] = []
        self._dirs: list[np.ndarray] = []
        self._dir_caps: list[int] = []
        self._dir_bases: list[int] = []
        self._rows_known = 0
        self._refresh()

    def __len__(self) -> int:
        """Rows published by the writer (re-read, not cached)."""
        return int(self._ctl[_CTL_PUBLISHED])

    def _refresh(self) -> None:
        data_gens = int(self._ctl[_CTL_DATA_GENS])
        while len(self._data) < data_gens:
            g = len(self._data)
            segment = attach_segment(f"{self.prefix}d{g}")
            self._segments.append(segment)
            capacity = int(self._ctl[_CTL_DATA_CAPS + g])
            self._data.append(
                np.frombuffer(segment.buf, dtype=np.uint8, count=capacity)
            )
        dir_gens = int(self._ctl[_CTL_DIR_GENS])
        while len(self._dirs) < dir_gens:
            g = len(self._dirs)
            segment = attach_segment(f"{self.prefix}i{g}")
            self._segments.append(segment)
            rows = int(self._ctl[_CTL_DIR_CAPS + g])
            base = (self._dir_bases[-1] + self._dir_caps[-1]) if self._dirs else 0
            self._dirs.append(
                np.frombuffer(
                    segment.buf, dtype=np.int64, count=rows * _DIR_WIDTH
                ).reshape(rows, _DIR_WIDTH)
            )
            self._dir_caps.append(rows)
            self._dir_bases.append(base)
        self._rows_known = int(self._ctl[_CTL_PUBLISHED])

    def record(self, row: int) -> np.ndarray:
        """Zero-copy ``uint8`` view of a published record."""
        if row >= self._rows_known:
            self._refresh()
            if row >= self._rows_known:
                raise IndexError(
                    f"row {row} not published yet ({self._rows_known} rows)"
                )
        if row < 0:
            raise IndexError(f"row {row} is negative")
        g = bisect_right(self._dir_bases, row) - 1
        generation, offset, length = self._dirs[g][row - self._dir_bases[g]]
        return self._data[int(generation)][int(offset) : int(offset) + int(length)]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._ctl = None  # type: ignore[assignment]
        self._data = []
        self._dirs = []
        for segment in self._segments:
            _close_segment(segment)

    def __enter__(self) -> "SharedColumnReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def decode_packed(record: "np.ndarray | memoryview") -> array:
    """Rebuild a :func:`~repro.reading.interning.pack_ids` array from a record.

    The wire format is one ASCII typecode byte followed by the raw
    machine bytes of the array — the same bytes :meth:`array.tobytes`
    produced on the writer side.
    """
    view = memoryview(record)
    ids = array(chr(view[0]))
    ids.frombytes(view[1:])
    return ids


def decode_membership(record: "np.ndarray | memoryview") -> np.ndarray:
    """Rebuild a membership record: ``[own_row, partner_row, ...]``.

    The copy (``bytes``) realigns the view — a shared-column record is an
    arbitrary byte offset into the data segment, which ``np.frombuffer``
    would reject for an 8-byte dtype.
    """
    return np.frombuffer(bytes(record), dtype=np.uint64)


class SharedTokenArrayStore:
    """Per-entity packed token-id arrays as rows of a shared column.

    The parent appends each entity's :func:`pack_ids` payload *once* —
    on the first comparison that mentions the entity — and afterwards
    ships only the row number.  A re-arriving entity whose token set
    changed (dynamic data) gets a fresh row; the old row stays valid for
    any chunk already in flight (append-only means no ABA hazard).

    With an ``entity_columns`` store attached, every token-row append is
    mirrored by a pickled entity-id record at the *same* row number —
    ``row_for`` is the only appender, so the two columns stay row-aligned
    by construction.  That reverse mapping (row → eid) is what lets the
    partitioned dispatch mode resolve matches entirely worker-side.
    """

    __slots__ = ("columns", "entity_columns", "_rows")

    def __init__(
        self,
        columns: SharedColumnStore,
        entity_columns: SharedColumnStore | None = None,
    ) -> None:
        self.columns = columns
        self.entity_columns = entity_columns
        self._rows: dict[EntityId, tuple[object, int]] = {}

    def __len__(self) -> int:
        return len(self.columns)

    def row_for(self, eid: EntityId, token_ids: Iterable[int]) -> int:
        """The row holding ``eid``'s packed ids, appending on first sight.

        The cache key is the token-id set itself (identity fast path,
        equality slow path), so an updated entity is re-published rather
        than served stale ids.
        """
        cached = self._rows.get(eid)
        if cached is not None and (cached[0] is token_ids or cached[0] == token_ids):
            return cached[1]
        packed = pack_ids(token_ids)
        record = packed.typecode.encode("ascii") + packed.tobytes()
        row = self.columns.append(record)
        if self.entity_columns is not None:
            self.entity_columns.append(pickle.dumps(eid, protocol=5))
        self._rows[eid] = (token_ids, row)
        return row

    def ids_at(self, row: int) -> array:
        """Decode a row back to its packed array (writer-side check path)."""
        return decode_packed(self.columns.record(row))


class SharedTokenDictionary(TokenDictionary):
    """A :class:`TokenDictionary` whose id → token column is shared.

    Interning happens in the parent exactly as before (dict probe, lock
    on miss); the only addition is that a first-seen token's UTF-8 bytes
    are appended to a shared column under the same lock, so row ``i`` of
    the column is always the token with id ``i``.  Workers (or any other
    process) can decode ids without the parent pickling the dictionary.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: SharedColumnStore) -> None:
        super().__init__()
        self.columns = columns

    def _on_new_token(self, token: str, token_id: int) -> None:
        self.columns.append(token.encode("utf-8"))


class SharedDictionaryReader:
    """Decode token ids from another process, straight off the column."""

    __slots__ = ("_reader",)

    def __init__(self, prefix: str) -> None:
        self._reader = SharedColumnReader(prefix)

    def __len__(self) -> int:
        return len(self._reader)

    def decode(self, token_id: int) -> str:
        return bytes(self._reader.record(token_id)).decode("utf-8")

    def close(self) -> None:
        self._reader.close()


def _finalize_backend(creator_pid: int, stores) -> None:
    """Module-level so ``weakref.finalize`` holds no reference cycles.

    The pid guard is load-bearing: a forked worker inherits the backend
    object, and its interpreter exit must *not* unlink the parent's
    segments out from under the run.  Unlinking through the stores (not a
    snapshot of segments) covers generations created after construction.
    """
    if os.getpid() != creator_pid:
        return
    for store in stores:
        store.unlink()


class SharedMemoryBackend:
    """A :class:`~repro.core.backends.StateBackend` with shared token state.

    Two columns live in shared memory — the token dictionary's id → token
    strings and the per-entity packed token-id arrays — because those are
    exactly what the multiprocess comparison stage needs and what used to
    be re-serialized into every chunk.  The remaining stores (blocks,
    blacklist, profiles, matches, co-occurrence) are parent-only state
    that never crosses the process boundary, so they stay as the plain
    in-memory implementations (injectable, like
    :class:`~repro.core.backends.memory.InMemoryBackend`).

    Lifecycle: the creating process owns the segments.  ``close()``
    detaches, ``unlink()`` removes (both idempotent; ``unlink`` implies
    ``close``); the context manager and a GC/exit finalizer do both, and
    every path is pid-guarded so forked children can never unlink.

    Compose with :class:`~repro.core.backends.durable.DurableBackend` as
    ``DurableBackend(SharedMemoryBackend(), ...)`` — durability is the
    *outer* decorator.  Its logging proxies call straight through to the
    inner stores, so WAL journaling is unaffected by where the columns
    live, and the shm-only surface (``capabilities``, ``token_store``,
    ``layout``) remains reachable through its attribute delegation.
    """

    #: Advertised via :meth:`capabilities`; the multiprocess executor
    #: negotiates its ``"shm"`` dispatch mode on this string.
    TOKEN_COLUMNS = "shm-token-columns"

    #: Advertised via :meth:`capabilities`; the multiprocess executor
    #: negotiates block-partitioned dispatch (worker-side candidate
    #: generation + rescoring) on this string.  Requires the entity and
    #: membership columns this backend maintains alongside the token
    #: column.
    PARTITION_COLUMNS = "shm-partition-columns"

    def __init__(
        self,
        name: str | None = None,
        *,
        data_bytes: int = 1 << 18,
        dir_rows: int = 1 << 12,
        blocks=None,
        blacklist=None,
        profiles=None,
        matches=None,
        cooccurrence=None,
    ) -> None:
        self.name = name if name is not None else _fresh_prefix()
        self._creator_pid = os.getpid()
        self._closed = False
        created: list[SharedColumnStore] = []
        try:
            token_columns = self._column(created, "t", data_bytes, dir_rows)
            dict_columns = self._column(created, "g", data_bytes, dir_rows)
            entity_columns = self._column(created, "e", data_bytes, dir_rows)
            membership_columns = self._column(created, "m", data_bytes, dir_rows)
        except BaseException:
            for store in created:
                store.unlink()
            raise
        self._stores = (
            token_columns, dict_columns, entity_columns, membership_columns,
        )
        self.membership_columns = membership_columns
        self.token_store = SharedTokenArrayStore(
            token_columns, entity_columns=entity_columns
        )
        self.dictionary = SharedTokenDictionary(dict_columns)
        self.blocks = blocks if blocks is not None else BlockCollection()
        self.blacklist = blacklist if blacklist is not None else Blacklist()
        self.profiles = profiles if profiles is not None else ProfileStore()
        self.matches = matches if matches is not None else MatchStore()
        self.cooccurrence = (
            cooccurrence if cooccurrence is not None else CooccurrenceCounter()
        )
        self._finalizer = weakref.finalize(
            self, _finalize_backend, self._creator_pid, list(self._stores)
        )

    def _column(
        self, created: list, suffix: str, data_bytes: int, dir_rows: int
    ) -> SharedColumnStore:
        store = SharedColumnStore(
            self.name + suffix, data_bytes=data_bytes, dir_rows=dir_rows
        )
        created.append(store)
        return store

    # -- the StateBackend surface --------------------------------------

    def state(self) -> ERState:
        return ERState(
            blocks=self.blocks,
            blacklist=self.blacklist,
            profiles=self.profiles,
            matches=self.matches,
        )

    # -- the shm surface -----------------------------------------------

    def capabilities(self) -> frozenset[str]:
        """What this backend can do beyond the protocol (negotiation)."""
        return frozenset({self.TOKEN_COLUMNS, self.PARTITION_COLUMNS})

    def layout(self) -> dict[str, str]:
        """Column prefixes a worker needs to attach (picklable, tiny)."""
        return {
            "tokens": self.token_store.columns.prefix,
            "dictionary": self.dictionary.columns.prefix,
            "entities": self.token_store.entity_columns.prefix,
            "membership": self.membership_columns.prefix,
        }

    def publish_membership(self, rows: "array | Iterable[int]") -> int:
        """Append one ``[own_row, partner_row, ...]`` record; its row number.

        The record is the complete per-entity candidate list expressed in
        shared token-column rows (with multiplicity, as ``f_cg`` emitted
        it), so a worker holding only this row number can regenerate the
        candidate pairs, run the cleaning count filter, and score — without
        the parent walking the pair list.
        """
        if not isinstance(rows, array):
            rows = array("Q", rows)
        return self.membership_columns.append(rows)

    def segment_names(self) -> list[str]:
        """All segments this backend created (for leak accounting)."""
        names: list[str] = []
        for store in self._stores:
            names.extend(store.segment_names())
        return names

    def shm_bytes(self) -> int:
        """Total bytes of shared memory currently mapped."""
        return sum(store.shm_bytes() for store in self._stores)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Detach this process's mappings (does not remove segments)."""
        if self._closed:
            return
        self._closed = True
        for store in self._stores:
            store.close()

    def unlink(self) -> None:
        """Remove the segments from the system.  Creator-only; idempotent."""
        if os.getpid() != self._creator_pid:
            return
        self._finalizer.detach()
        self.close()
        for store in self._stores:
            store.unlink()

    def __enter__(self) -> "SharedMemoryBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()
