"""The default backend: plain in-process dict-based stores.

This is exactly the state layout the pipeline had before the backend seam
existed — zero indirection cost, no locks — packaged so stages receive it
the same way they would receive any other backend.
"""

from __future__ import annotations

from repro.core.backends.base import CooccurrenceCounter
from repro.core.state import (
    Blacklist,
    BlockCollection,
    ERState,
    MatchStore,
    ProfileStore,
)
from repro.reading.interning import TokenDictionary


class InMemoryBackend:
    """One in-memory instance of every state component.

    Individual components can be injected (e.g. a pre-loaded profile store
    when resuming from a persisted state); anything not given is created
    fresh.
    """

    def __init__(
        self,
        blocks: BlockCollection | None = None,
        blacklist: Blacklist | None = None,
        profiles: ProfileStore | None = None,
        matches: MatchStore | None = None,
        cooccurrence: CooccurrenceCounter | None = None,
        dictionary: TokenDictionary | None = None,
    ) -> None:
        self.blocks = blocks if blocks is not None else BlockCollection()
        self.blacklist = blacklist if blacklist is not None else Blacklist()
        self.profiles = profiles if profiles is not None else ProfileStore()
        self.matches = matches if matches is not None else MatchStore()
        self.cooccurrence = (
            cooccurrence if cooccurrence is not None else CooccurrenceCounter()
        )
        self.dictionary = dictionary if dictionary is not None else TokenDictionary()

    def state(self) -> ERState:
        return ERState(
            blocks=self.blocks,
            blacklist=self.blacklist,
            profiles=self.profiles,
            matches=self.matches,
        )
