"""The pluggable storage seam for all ER pipeline state.

A :class:`StateBackend` groups one instance of every state component the
eight stages need — the block index and its blacklist (``f_bb+bp``), the
profile map (``f_lm``), the co-occurrence counter (``f_cc``), the match
store (``f_cl``), and the token dictionary (``f_dr``'s interning table) —
behind a single object that a :class:`~repro.core.plan.PipelinePlan` hands
to each stage factory.

Stages only rely on the *interfaces* of the components (duck typing, see
the store classes in :mod:`repro.core.state`), so backends can swap the
representation freely: :class:`~repro.core.backends.memory.InMemoryBackend`
keeps the zero-overhead dict-based stores, while
:class:`~repro.core.backends.sharded.ShardedBackend` hash-partitions every
store with per-shard locks.  Future backends (mmap, spill-to-disk, remote
key-value) implement the same five attributes and drop in without touching
a stage or an executor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.types import EntityId

if TYPE_CHECKING:
    from repro.core.state import ERState


class CooccurrenceCounter:
    """Counts block co-occurrences of candidate partners (the CBS weight).

    ``f_cc`` receives a candidate list *with multiplicity* — one entry per
    block the partner shares with the current entity — and needs it grouped
    into partner → count.  Keeping the grouping behind the backend lets a
    sharded backend partition the tally and lets the cumulative
    ``pairs_counted`` statistic be collected wherever the state lives.
    """

    __slots__ = ("pairs_counted",)

    def __init__(self) -> None:
        self.pairs_counted = 0

    def count(self, candidates: list[EntityId]) -> dict[EntityId, int]:
        """Partner id → number of shared blocks, in first-occurrence order."""
        counts: dict[EntityId, int] = {}
        for j in candidates:
            counts[j] = counts.get(j, 0) + 1
        self.pairs_counted += len(candidates)
        return counts


@runtime_checkable
class StateBackend(Protocol):
    """What every storage backend must provide.

    The five attributes are the complete mutable state of a pipeline run
    (the paper's σ = ⟨M, B⟩ plus the auxiliary stores of §IV-A).  Each must
    satisfy the interface of its in-memory reference implementation:

    ``blocks``
        :class:`~repro.core.state.BlockCollection`-shaped — ``add``,
        ``remove_block``, ``discard``, ``block``, ``keys``, ``items``,
        ``sizes``, ``total_assignments``, ``total_comparisons``.
    ``blacklist``
        :class:`~repro.core.state.Blacklist`-shaped — ``add``,
        ``__contains__``, and a ``keys`` set-like view.
    ``profiles``
        :class:`~repro.core.state.ProfileStore`-shaped — ``put``, ``get``,
        ``values``, ``remove``.
    ``cooccurrence``
        :class:`CooccurrenceCounter`-shaped — ``count``.
    ``matches``
        :class:`~repro.core.state.MatchStore`-shaped — ``add``,
        ``matches``, ``pairs``.
    ``dictionary``
        :class:`~repro.reading.interning.TokenDictionary`-shaped — the
        shared token-interning table ``f_dr`` fills and the comparison
        kernel reads.  Append-only and internally locked, so sharded
        backends share a single instance across all shards (ids must be
        globally consistent to compare entities from different shards).
    """

    blocks: object
    blacklist: object
    profiles: object
    cooccurrence: object
    matches: object
    dictionary: object

    def state(self) -> "ERState":
        """An :class:`~repro.core.state.ERState` view over the components."""
        ...


def backend_capabilities(backend: object) -> frozenset[str]:
    """The optional capability strings a backend advertises.

    Capabilities are how executors negotiate representation-specific fast
    paths without type-sniffing concrete backends: a backend that can do
    more than the :class:`StateBackend` protocol exposes a
    ``capabilities()`` method returning capability strings (e.g.
    :data:`~repro.core.backends.shm.SharedMemoryBackend.TOKEN_COLUMNS`),
    and an executor checks for the strings it knows how to exploit.
    Backends without the method simply advertise nothing.  Decorating
    backends (:class:`~repro.core.backends.durable.DurableBackend`)
    forward the method to their inner backend via attribute delegation,
    so capabilities survive wrapping.
    """
    probe = getattr(backend, "capabilities", None)
    if probe is None:
        return frozenset()
    return frozenset(probe())
