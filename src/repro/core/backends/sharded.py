"""Hash-partitioned state: every store split into N lock-guarded shards.

Partitioning the blocking-key space is the classic route to parallel ER at
scale (Kolb et al.'s MapReduce sorted-neighborhood; the blocking surveys).
This backend applies it to *state*: each store routes every operation to
one of ``shards`` sub-stores by a stable hash of its natural partition key —

* block index and blacklist: the blocking key;
* profile map: the entity identifier;
* match store: the canonical pair key;

— and guards each shard with its own re-entrant lock, so writers touching
different shards never contend.  Routing uses ``crc32(repr(key))`` rather
than the built-in ``hash`` because the latter is salted per process; crc32
gives the same shard for the same key in every worker process, which keeps
multiprocess executions deterministic and lets per-shard dumps be merged.

Per-entity computation is untouched — a sharded run produces *exactly* the
same matches as an in-memory run (the differential suite asserts this for
1, 2 and 7 shards, with and without fault injection); what changes is that
independent shards can be owned, locked, persisted and merged separately.
"""

from __future__ import annotations

import threading
import zlib
from typing import Iterator, Mapping

from repro.core.state import (
    Blacklist,
    BlockCollection,
    ERState,
    MatchStore,
    ProfileStore,
)
from repro.errors import ConfigurationError
from repro.reading.interning import TokenDictionary
from repro.types import EntityId, Match, Profile, pair_key


def shard_index(key: object, shards: int) -> int:
    """Stable shard of ``key``: identical across processes and runs."""
    return zlib.crc32(repr(key).encode()) % shards


class _ShardedStore:
    """Common shard bookkeeping: sub-stores, locks, routing."""

    def __init__(self, shards: int, factory) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._stores = [factory() for _ in range(shards)]
        self._locks = [threading.RLock() for _ in range(shards)]

    def _route(self, key: object):
        index = shard_index(key, self.shards)
        return self._stores[index], self._locks[index]

    def shard_stores(self) -> list:
        """The underlying sub-stores (for per-shard persistence/merging)."""
        return list(self._stores)


class ShardedBlockCollection(_ShardedStore):
    """A :class:`~repro.core.state.BlockCollection` split by blocking key."""

    def __init__(self, shards: int) -> None:
        super().__init__(shards, BlockCollection)

    def add(self, key: str, eid: EntityId) -> int:
        store, lock = self._route(key)
        with lock:
            return store.add(key, eid)

    def remove_block(self, key: str) -> None:
        store, lock = self._route(key)
        with lock:
            store.remove_block(key)

    def discard(self, key: str, eid: EntityId) -> bool:
        store, lock = self._route(key)
        with lock:
            return store.discard(key, eid)

    def block(self, key: str) -> list[EntityId]:
        store, lock = self._route(key)
        with lock:
            return store.block(key)

    def __contains__(self, key: str) -> bool:
        store, lock = self._route(key)
        with lock:
            return key in store

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def keys(self) -> Iterator[str]:
        for store in self._stores:
            yield from store.keys()

    def items(self) -> Iterator[tuple[str, list[EntityId]]]:
        for store in self._stores:
            yield from store.items()

    def sizes(self) -> Mapping[str, int]:
        merged: dict[str, int] = {}
        for store in self._stores:
            merged.update(store.sizes())
        return merged

    def total_assignments(self) -> int:
        return sum(store.total_assignments() for store in self._stores)

    def total_comparisons(self) -> int:
        return sum(store.total_comparisons() for store in self._stores)


class ShardedBlacklist(_ShardedStore):
    """A :class:`~repro.core.state.Blacklist` split by blocking key."""

    def __init__(self, shards: int) -> None:
        super().__init__(shards, Blacklist)

    def add(self, key: str) -> None:
        store, lock = self._route(key)
        with lock:
            store.add(key)

    def __contains__(self, key: str) -> bool:
        store, lock = self._route(key)
        with lock:
            return key in store

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    @property
    def keys(self) -> set[str]:
        """Union of all shards' keys (a copy, matching ``Blacklist.keys``)."""
        merged: set[str] = set()
        for store in self._stores:
            merged |= store.keys
        return merged


class ShardedProfileStore(_ShardedStore):
    """A :class:`~repro.core.state.ProfileStore` split by entity id."""

    def __init__(self, shards: int) -> None:
        super().__init__(shards, ProfileStore)

    def put(self, profile: Profile) -> None:
        store, lock = self._route(profile.eid)
        with lock:
            store.put(profile)

    def get(self, eid: EntityId) -> Profile | None:
        store, lock = self._route(eid)
        with lock:
            return store.get(eid)

    def __contains__(self, eid: EntityId) -> bool:
        store, lock = self._route(eid)
        with lock:
            return eid in store

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def values(self) -> Iterator[Profile]:
        for store in self._stores:
            yield from store.values()

    def remove(self, eid: EntityId) -> bool:
        store, lock = self._route(eid)
        with lock:
            return store.remove(eid)


class ShardedMatchStore(_ShardedStore):
    """A :class:`~repro.core.state.MatchStore` split by canonical pair key.

    ``matches()`` concatenates the shards, so global discovery order is not
    preserved (per-shard order is); consumers needing a canonical order
    should sort, and set-level views (``pairs()``) are exact.
    """

    def __init__(self, shards: int) -> None:
        super().__init__(shards, MatchStore)

    def add(self, match: Match) -> bool:
        store, lock = self._route(match.key())
        with lock:
            return store.add(match)

    def __contains__(self, pair: tuple[EntityId, EntityId]) -> bool:
        store, lock = self._route(pair_key(*pair))
        with lock:
            return pair in store

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def matches(self) -> list[Match]:
        out: list[Match] = []
        for store in self._stores:
            out.extend(store.matches())
        return out

    def pairs(self) -> set[tuple[EntityId, EntityId]]:
        merged: set[tuple[EntityId, EntityId]] = set()
        for store in self._stores:
            merged |= store.pairs()
        return merged


class ShardedCooccurrenceCounter:
    """CBS tallying with the cumulative statistic partitioned by partner id.

    The per-call grouping is pure (it sees one entity's candidate list);
    only the cumulative ``pairs_counted`` statistic is shared, and it is
    accumulated under per-shard locks so replicated ``f_cc`` workers never
    contend on a single counter.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._counted = [0] * shards
        self._locks = [threading.RLock() for _ in range(shards)]

    def count(self, candidates: list[EntityId]) -> dict[EntityId, int]:
        counts: dict[EntityId, int] = {}
        for j in candidates:
            counts[j] = counts.get(j, 0) + 1
        for j, c in counts.items():
            index = shard_index(j, self.shards)
            with self._locks[index]:
                self._counted[index] += c
        return counts

    @property
    def pairs_counted(self) -> int:
        return sum(self._counted)


class ShardedBackend:
    """All partitionable state components hash-split into ``shards`` shards.

    The token dictionary is deliberately *not* sharded: interned ids must
    be globally consistent (a pair of entities living in different profile
    shards still compares id-to-id), and :class:`~repro.reading.interning.
    TokenDictionary` is append-only with an internal lock, so one shared
    instance is both correct and cheap.
    """

    def __init__(self, shards: int = 4) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.blocks = ShardedBlockCollection(shards)
        self.blacklist = ShardedBlacklist(shards)
        self.profiles = ShardedProfileStore(shards)
        self.matches = ShardedMatchStore(shards)
        self.cooccurrence = ShardedCooccurrenceCounter(shards)
        self.dictionary = TokenDictionary()

    def state(self) -> ERState:
        return ERState(
            blocks=self.blocks,  # type: ignore[arg-type]
            blacklist=self.blacklist,  # type: ignore[arg-type]
            profiles=self.profiles,  # type: ignore[arg-type]
            matches=self.matches,  # type: ignore[arg-type]
        )
