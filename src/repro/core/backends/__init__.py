"""Pluggable state backends: where the ER state σ physically lives."""

from repro.core.backends.base import (
    CooccurrenceCounter,
    StateBackend,
    backend_capabilities,
)
from repro.core.backends.durable import (
    CommittingStage,
    DurabilityConfig,
    DurableBackend,
    config_fingerprint,
)
from repro.core.backends.memory import InMemoryBackend
from repro.core.backends.sharded import (
    ShardedBackend,
    ShardedBlacklist,
    ShardedBlockCollection,
    ShardedCooccurrenceCounter,
    ShardedMatchStore,
    ShardedProfileStore,
    shard_index,
)
from repro.core.backends.shm import (
    SharedColumnReader,
    SharedColumnStore,
    SharedMemoryBackend,
    SharedTokenArrayStore,
    SharedTokenDictionary,
    active_shm_segments,
)

__all__ = [
    "StateBackend",
    "CooccurrenceCounter",
    "backend_capabilities",
    "InMemoryBackend",
    "DurableBackend",
    "DurabilityConfig",
    "CommittingStage",
    "config_fingerprint",
    "ShardedBackend",
    "ShardedBlockCollection",
    "ShardedBlacklist",
    "ShardedProfileStore",
    "ShardedMatchStore",
    "ShardedCooccurrenceCounter",
    "shard_index",
    "SharedColumnReader",
    "SharedColumnStore",
    "SharedMemoryBackend",
    "SharedTokenArrayStore",
    "SharedTokenDictionary",
    "active_shm_segments",
]
