"""Concrete implementations of the pipeline stages (Algorithms 1–3).

Stage classes correspond one-to-one to the boxes in Figure 3 of the paper:

* :class:`DataReadingStage` — ``f_dr``
* :class:`BlockBuildingStage` — ``f_bb+bp`` (Algorithm 1: block building +
  block pruning + singleton removal); sole owner of the block collection.
* :class:`BlockGhostingStage` — ``f_bg`` (Algorithm 2).
* :class:`ComparisonGenerationStage` — ``f_cg``.
* :class:`ComparisonCleaningStage` — ``f_cc`` (Algorithm 3, I-WNP).
* :class:`LoadManagementStage` — ``f_lm`` (profile-map lookups).
* :class:`ComparisonStage` — ``f_co``.
* :class:`ClassificationStage` — ``f_cl``; sole owner of the match store.

Each stage is a callable taking the previous stage's message and returning
the next one, so the sequential pipeline is literally their composition and
the parallel framework can put each behind its own worker pool.

Stateful stages resolve their stores in a fixed order: an explicitly passed
store wins (tests and ablations inject doubles that way), otherwise the
``backend`` (a :class:`~repro.core.backends.StateBackend`) supplies it, and
with neither a fresh in-memory store is created.  Executors never pass
stores directly — they compile a :class:`~repro.core.plan.PipelinePlan`,
which threads one backend through every factory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.core.backends.base import CooccurrenceCounter, StateBackend
from repro.core.state import Blacklist, BlockCollection, MatchStore, ProfileStore
from repro.errors import UnknownProfileError
from repro.reading.profiles import ProfileBuilder
from repro.types import (
    Comparison,
    EntityDescription,
    EntityId,
    Match,
    Profile,
    ScoredComparison,
)

# --------------------------------------------------------------------------
# Inter-stage messages


@dataclass(slots=True)
class BlockedEntity:
    """Output of ``f_bb+bp``: the per-entity block snapshot ``B_ei``.

    ``others[k]`` holds the identifiers already present in block ``b_k``
    (excluding the entity itself), so ``|b_k| = len(others[k]) + 1``.
    Singleton blocks (``others`` empty) have already been removed.
    """

    profile: Profile
    others: dict[str, tuple[EntityId, ...]]

    def block_size(self, key: str) -> int:
        return len(self.others[key]) + 1

    def keys(self) -> list[str]:
        return list(self.others)


@dataclass(slots=True)
class CandidateComparisons:
    """Output of ``f_cg``: candidate partner ids *with multiplicity*.

    An id appears once per block it co-occurs in with the current entity —
    the multiplicity is exactly the CBS weight that I-WNP counts.
    """

    profile: Profile
    candidates: list[EntityId]


@dataclass(slots=True)
class CleanedComparisons:
    """Output of ``f_cc``: distinct surviving partner ids."""

    profile: Profile
    candidates: list[EntityId]


@dataclass(slots=True)
class MaterializedComparisons:
    """Output of ``f_lm``: comparisons with full profiles re-attached."""

    profile: Profile
    comparisons: list[Comparison]


@dataclass(slots=True)
class ScoredComparisons:
    """Output of ``f_co``: the similarity-scored comparisons ``S_i``."""

    profile: Profile
    scored: list[ScoredComparison]


# --------------------------------------------------------------------------
# Stages


class DataReadingStage:
    """``f_dr``: standardize the description and extract blocking keys.

    When the builder carries a :class:`~repro.reading.interning.
    TokenDictionary`, tokens are interned here — at the single point every
    entity flows through — so every downstream consumer sees profiles with
    the integer token view already attached.
    """

    name = "dr"

    def __init__(self, builder: ProfileBuilder | None = None) -> None:
        self.builder = builder or ProfileBuilder()

    def __call__(self, entity: EntityDescription) -> Profile:
        return self.builder.build(entity)


class BlockBuildingStage:
    """``f_bb+bp`` (Algorithm 1): incremental token blocking + block pruning.

    The stage is the sole owner of the global block collection and the
    blacklist of pruned keys.  For every incoming profile it

    1. skips blacklisted keys,
    2. appends the entity to each remaining block,
    3. prunes (and blacklists) blocks reaching size ``alpha``,
    4. snapshots the surviving, non-singleton blocks into ``B_ei``.

    When ``enabled`` is False, pruning is skipped entirely (the "No BC"
    degraded variant); singleton removal still applies because singleton
    blocks cannot produce comparisons.
    """

    name = "bb+bp"

    def __init__(
        self,
        alpha: int,
        enabled: bool = True,
        blocks: BlockCollection | None = None,
        blacklist: Blacklist | None = None,
        backend: StateBackend | None = None,
    ) -> None:
        self.alpha = alpha
        self.enabled = enabled
        if blocks is None:
            blocks = backend.blocks if backend is not None else BlockCollection()
        if blacklist is None:
            blacklist = backend.blacklist if backend is not None else Blacklist()
        self.blocks = blocks
        self.blacklist = blacklist
        self.pruned_blocks = 0

    def __call__(self, profile: Profile) -> BlockedEntity:
        others: dict[str, tuple[EntityId, ...]] = {}
        for key in profile.tokens:
            if self.enabled and key in self.blacklist:
                continue
            size = self.blocks.add(key, profile.eid)
            if self.enabled and size >= self.alpha:
                self.blocks.remove_block(key)
                self.blacklist.add(key)
                self.pruned_blocks += 1
                continue
            if size > 1:  # removeSingletons: only blocks with co-members
                members = self.blocks.block(key)
                others[key] = tuple(members[:-1])
        return BlockedEntity(profile=profile, others=others)


class BlockGhostingStage:
    """``f_bg`` (Algorithm 2): ignore keys whose block is too general.

    Keeps all identifiers in the global collection (nothing is deleted) but
    drops from ``B_ei`` every key whose block size exceeds ``|b_min| / beta``,
    where ``b_min`` is the smallest block in ``B_ei``.
    """

    name = "bg"

    def __init__(self, beta: float, enabled: bool = True) -> None:
        self.beta = beta
        self.enabled = enabled
        self.ghosted_keys = 0

    def __call__(self, blocked: BlockedEntity) -> BlockedEntity:
        if not self.enabled or not blocked.others:
            return blocked
        min_size = min(blocked.block_size(key) for key in blocked.others)
        threshold = min_size / self.beta
        survivors: dict[str, tuple[EntityId, ...]] = {}
        for key, others in blocked.others.items():
            if len(others) + 1 > threshold:
                self.ghosted_keys += 1
            else:
                survivors[key] = others
        blocked.others = survivors
        return blocked


class ComparisonGenerationStage:
    """``f_cg``: emit candidate pairs from the per-entity blocks.

    For clean-clean ER (``clean_clean=True``) identifiers must be
    ``(source, local_id)`` tuples (see ``repro.core.cleanclean``) and
    partners from the same source are skipped.
    """

    name = "cg"

    def __init__(self, clean_clean: bool = False) -> None:
        self.clean_clean = clean_clean
        self.generated = 0

    def __call__(self, blocked: BlockedEntity) -> CandidateComparisons:
        eid = blocked.profile.eid
        candidates: list[EntityId] = []
        if self.clean_clean:
            my_source = eid[0]  # type: ignore[index]
            for others in blocked.others.values():
                for j in others:
                    if j != eid and j[0] != my_source:  # type: ignore[index]
                        candidates.append(j)
        else:
            for others in blocked.others.values():
                for j in others:
                    if j != eid:
                        candidates.append(j)
        self.generated += len(candidates)
        return CandidateComparisons(profile=blocked.profile, candidates=candidates)


class ComparisonCleaningStage:
    """``f_cc`` (Algorithm 3): the incremental WNP variant, I-WNP.

    Groups the candidates by partner id, counts block co-occurrences (the
    CBS weight), computes the average count, and keeps only partners whose
    count is at least the average.  Grouping alone removes redundant
    comparisons; the threshold removes superfluous ones.

    When ``enabled`` is False the stage only deduplicates.
    """

    name = "cc"

    def __init__(
        self,
        enabled: bool = True,
        cooccurrence: CooccurrenceCounter | None = None,
        backend: StateBackend | None = None,
    ) -> None:
        self.enabled = enabled
        if cooccurrence is None:
            cooccurrence = (
                backend.cooccurrence if backend is not None else CooccurrenceCounter()
            )
        self.cooccurrence = cooccurrence
        self.retained = 0

    def __call__(self, generated: CandidateComparisons) -> CleanedComparisons:
        counts = self.cooccurrence.count(generated.candidates)
        if not counts:
            return CleanedComparisons(profile=generated.profile, candidates=[])
        if self.enabled:
            avg = sum(counts.values()) / len(counts)
            survivors = [j for j, count in counts.items() if count >= avg]
        else:
            survivors = list(counts)
        self.retained += len(survivors)
        return CleanedComparisons(profile=generated.profile, candidates=survivors)


class LoadManagementStage:
    """``f_lm``: maintain the profile map and re-attach full profiles.

    The incoming profile is registered first, then each surviving partner id
    is resolved to its stored profile.  In the sequential pipeline every
    partner id necessarily belongs to an earlier, fully processed entity, so
    lookups cannot fail; a missing profile indicates a wiring bug and raises
    :class:`UnknownProfileError`.

    Candidates are deduplicated before materialization (first-occurrence
    order).  With ``f_cc`` upstream this is a no-op — its survivors are
    already distinct — but it keeps the pipeline's comparison semantics
    intact when the plan drops the ``cc`` node entirely
    (``enable_comparison_cleaning=False``) and ``f_cg``'s
    multiplicity-carrying candidates flow here directly.  ``materialized``
    counts the comparisons actually emitted, which is therefore the
    "after cleaning" figure regardless of which optional nodes are active.
    """

    name = "lm"

    def __init__(
        self,
        profiles: ProfileStore | None = None,
        backend: StateBackend | None = None,
    ) -> None:
        if profiles is None:
            profiles = backend.profiles if backend is not None else ProfileStore()
        self.profiles = profiles
        self.materialized = 0

    def __call__(self, cleaned: CleanedComparisons) -> MaterializedComparisons:
        profile = cleaned.profile
        self.profiles.put(profile)
        comparisons: list[Comparison] = []
        for j in dict.fromkeys(cleaned.candidates):
            other = self.profiles.get(j)
            if other is None:
                raise UnknownProfileError(f"profile of {j!r} was never registered")
            comparisons.append(Comparison(left=profile, right=other))
        self.materialized += len(comparisons)
        return MaterializedComparisons(profile=profile, comparisons=comparisons)


class ComparisonStage:
    """``f_co``: score every surviving comparison with the similarity.

    Comparators exposing ``compare_batch`` (the interned kernel) score the
    whole per-entity batch in one call; threshold-aware comparators may
    emit *fewer* scored comparisons than they were given — exactly the
    pairs that can still classify as matches — so ``compared`` counts the
    pairs examined, not the pairs emitted.
    """

    name = "co"

    def __init__(self, comparator: TokenSetComparator | None = None) -> None:
        self.comparator = comparator or TokenSetComparator()
        self.compared = 0
        self._batch = getattr(self.comparator, "compare_batch", None)

    def __call__(self, materialized: MaterializedComparisons) -> ScoredComparisons:
        comparisons = materialized.comparisons
        if self._batch is not None:
            scored = self._batch(comparisons)
        else:
            scored = [self.comparator.compare(c) for c in comparisons]
        self.compared += len(comparisons)
        return ScoredComparisons(profile=materialized.profile, scored=scored)


class ClassificationStage:
    """``f_cl``: classify scored pairs and update the match store.

    Returns the matches that involve the just-processed entity, i.e. the
    per-entity slice of the output stream ``[M_1, M_2, ...]``.
    """

    name = "cl"

    def __init__(
        self,
        classifier: Classifier | None = None,
        matches: MatchStore | None = None,
        backend: StateBackend | None = None,
    ) -> None:
        self.classifier = classifier or ThresholdClassifier()
        if matches is None:
            matches = backend.matches if backend is not None else MatchStore()
        self.matches = matches

    def __call__(self, scored: ScoredComparisons) -> list[Match]:
        found: list[Match] = []
        for item in scored.scored:
            match = self.classifier.classify(item)
            if match is not None and self.matches.add(match):
                found.append(match)
        return found


#: Stage names in pipeline order; shared by instrumentation and the
#: parallel framework's allocation logic.
STAGE_ORDER: tuple[str, ...] = ("dr", "bb+bp", "bg", "cg", "cc", "lm", "co", "cl")
