"""Configuration of the stream ER pipeline."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.comparison.kernel import InternedComparator
from repro.errors import ConfigurationError
from repro.reading.profiles import ProfileBuilder


@dataclass(frozen=True)
class SupervisionPolicy:
    """How a pipeline executor reacts to a stage function raising.

    A failing item is retried up to ``max_retries`` times with exponential
    backoff (``backoff_seconds · backoff_multiplier^(attempt-1)``, capped at
    ``max_backoff_seconds``); once retries are exhausted the item is routed
    to the dead-letter queue instead of killing the worker.

    ``no_retry_stages`` lists stages whose state mutation is *not*
    idempotent and must therefore fail straight to the dead-letter queue: by
    default ``bb+bp``, because re-running block building would append the
    entity to its blocks a second time.  Pure stages (``dr``, ``co``) and
    stages whose stores deduplicate (``cl``) are safe to retry.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.1
    no_retry_stages: frozenset[str] = frozenset({"bb+bp"})

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.backoff_seconds < 0:
            raise ConfigurationError("backoff_seconds cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_backoff_seconds < 0:
            raise ConfigurationError("max_backoff_seconds cannot be negative")

    @staticmethod
    def none() -> "SupervisionPolicy":
        """Fail fast: no retries, every failure dead-letters immediately."""
        return SupervisionPolicy(max_retries=0)

    def retries_for(self, stage: str) -> int:
        """Retry budget for one stage (0 for non-idempotent stages)."""
        return 0 if stage in self.no_retry_stages else self.max_retries

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retrying after the ``attempt``-th failure (1-based)."""
        if self.backoff_seconds <= 0:
            return 0.0
        delay = self.backoff_seconds * self.backoff_multiplier ** (attempt - 1)
        return min(delay, self.max_backoff_seconds)


@dataclass(frozen=True)
class StreamERConfig:
    """Parameters of the dynamic-data ER pipeline.

    Parameters
    ----------
    alpha:
        Block-pruning bound (Algorithm 1): blocks reaching size ``alpha``
        are discarded and their key blacklisted.  Must be > 1.  Use
        :meth:`alpha_for` to derive it from an (estimated) dataset size as
        the paper does (e.g. ``alpha = 0.05 · |D|``).
    beta:
        Block-ghosting parameter (Algorithm 2), 0 < beta < 1.  A key ``k``
        is ghosted when ``|b_k| > |b_min| / beta``.
    enable_block_cleaning:
        When False, block pruning and ghosting are skipped entirely — the
        degraded "I-WNP (No BC)" variant used as a baseline in §V-B.
    enable_comparison_cleaning:
        When False, the I-WNP stage passes comparisons through unpruned
        (after deduplication).
    clean_clean:
        When True, comparisons are only generated across sources
        (identifiers must carry the source, see ``repro.core.cleanclean``).
    """

    alpha: int = 1000
    beta: float = 0.05
    enable_block_cleaning: bool = True
    enable_comparison_cleaning: bool = True
    clean_clean: bool = False
    profile_builder: ProfileBuilder = field(default_factory=ProfileBuilder)
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)

    def __post_init__(self) -> None:
        if self.alpha <= 1:
            raise ConfigurationError(f"alpha must be > 1, got {self.alpha}")
        if not 0.0 < self.beta < 1.0:
            raise ConfigurationError(f"beta must be in (0, 1), got {self.beta}")

    @classmethod
    def interned(
        cls,
        measure: str = "jaccard",
        prefilter: bool = True,
        **kwargs: object,
    ) -> "StreamERConfig":
        """A config using the integer-interned comparison kernel.

        Swaps the comparator for an :class:`~repro.comparison.kernel.
        InternedComparator` on the named ``measure``.  When the classifier
        is a :class:`~repro.classification.classifiers.ThresholdClassifier`
        (the default), its threshold is handed to the kernel so the length
        prefilter and threshold-aware verification can engage; any other
        classifier (e.g. the oracle) leaves the kernel in emit-everything
        mode, which is still faster than the string path but filters
        nothing.  All other keyword arguments are regular
        :class:`StreamERConfig` parameters.  The token dictionary itself is
        run state: it lives on the :class:`~repro.core.backends.
        StateBackend` and is bound in when a plan is compiled.
        """
        classifier = kwargs.setdefault("classifier", ThresholdClassifier())
        threshold = (
            classifier.threshold if isinstance(classifier, ThresholdClassifier) else None
        )
        kwargs.setdefault(
            "comparator",
            InternedComparator(measure=measure, threshold=threshold, prefilter=prefilter),
        )
        return cls(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def alpha_for(dataset_size: int, fraction: float = 0.05) -> int:
        """Derive α from an estimated dataset size, as in the evaluation.

        The paper sets ``α = fraction · |D|``; we round up and clamp to the
        minimum admissible bound of 2.
        """
        if dataset_size <= 0:
            raise ConfigurationError("dataset_size must be positive")
        if fraction <= 0:
            raise ConfigurationError("fraction must be positive")
        return max(2, math.ceil(fraction * dataset_size))
