"""Clean-clean ER support (§III-B).

``combine`` merges two clean datasets into a single stream where each
identifier is a ``(source, local_id)`` tuple, exactly the paper's ⟨i, x⟩
scheme; the generic pipeline then only needs its comparison-generation
stage told to pair across sources.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DatasetError
from repro.types import EntityDescription, EntityId


def tag(entity: EntityDescription, source: str) -> EntityDescription:
    """Re-identify one entity as belonging to ``source``."""
    return EntityDescription(
        eid=(source, entity.eid), attributes=entity.attributes, source=source
    )


def combine(
    left: Iterable[EntityDescription],
    right: Iterable[EntityDescription],
    left_name: str = "x",
    right_name: str = "y",
    interleave: bool = True,
) -> Iterator[EntityDescription]:
    """``f_combine``: merge two clean datasets into one tagged stream.

    With ``interleave=True`` (default) the two inputs are round-robin
    interleaved, which models both sources feeding the stream concurrently;
    otherwise ``left`` is exhausted before ``right``.
    """
    if left_name == right_name:
        raise DatasetError("the two sources must have distinct names")
    if not interleave:
        for entity in left:
            yield tag(entity, left_name)
        for entity in right:
            yield tag(entity, right_name)
        return
    left_iter, right_iter = iter(left), iter(right)
    while True:
        stop_left = stop_right = False
        try:
            yield tag(next(left_iter), left_name)
        except StopIteration:
            stop_left = True
        try:
            yield tag(next(right_iter), right_name)
        except StopIteration:
            stop_right = True
        if stop_left and stop_right:
            return
        if stop_left:
            for entity in right_iter:
                yield tag(entity, right_name)
            return
        if stop_right:
            for entity in left_iter:
                yield tag(entity, left_name)
            return


def combine_many(
    sources: dict[str, Iterable[EntityDescription]],
) -> Iterator[EntityDescription]:
    """Generalized ``f_combine``: merge any number of clean datasets.

    Sources are round-robin interleaved; matches remain cross-source only
    because comparison generation checks the source component, which works
    unchanged for more than two sources.
    """
    if len(sources) < 2:
        raise DatasetError("combine_many needs at least two sources")
    iterators = {name: iter(entities) for name, entities in sources.items()}
    while iterators:
        exhausted = []
        for name, iterator in iterators.items():
            try:
                yield tag(next(iterator), name)
            except StopIteration:
                exhausted.append(name)
        for name in exhausted:
            del iterators[name]


def source_of(eid: EntityId) -> str:
    """The source component of a combined identifier."""
    if not isinstance(eid, tuple) or len(eid) != 2:
        raise DatasetError(f"{eid!r} is not a combined (source, id) identifier")
    return eid[0]


def tag_pairs(
    pairs: Iterable[tuple[EntityId, EntityId]],
    left_name: str = "x",
    right_name: str = "y",
) -> set[tuple[EntityId, EntityId]]:
    """Lift a cross-source ground truth onto combined identifiers.

    Input pairs are (left_local_id, right_local_id); output pairs use the
    combined ``(source, local_id)`` form so they can seed an
    :class:`~repro.classification.classifiers.OracleClassifier`.
    """
    return {((left_name, a), (right_name, b)) for a, b in pairs}
