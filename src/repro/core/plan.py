"""The declarative stage graph every executor compiles, built once per run.

The paper's functional model is a single composition
``f_er = f_cl ∘ f_co ∘ f_lm ∘ f_cc ∘ f_cg ∘ f_bg ∘ f_bb+bp ∘ f_dr``,
but executing it takes four very different substrates: the sequential
pipeline, the thread framework (PP/MPP), the multiprocess executor, and
the discrete-event simulator.  A :class:`PipelinePlan` is the one place
that knows *what* the graph is — which stages exist for a given
:class:`~repro.core.config.StreamERConfig`, in what order, how each is
constructed against a :class:`~repro.core.backends.StateBackend`, and
which execution constraints apply:

``replicable``
    whether an executor may run several workers of the stage concurrently
    (``f_bb+bp`` is the serial stage: it owns the block index and its
    verdicts depend on arrival order);
``serialization_point``
    whether the stage is the pipeline's ordering barrier, where an
    executor that replicates downstream stages must make the entity's
    profile resolvable before emitting it (the thread framework registers
    the profile here, so ``f_lm`` lookups can never miss);
``optional``
    whether the node is gated by a config flag and disappears from the
    graph entirely when disabled (``f_bg`` with block cleaning off,
    ``f_cc`` with comparison cleaning off).

Executors *compile* the plan — :meth:`PipelinePlan.compile` instantiates
every active stage against one backend and returns a
:class:`CompiledPipeline` — instead of hand-constructing stages, so stage
wiring, ordering and state ownership are defined exactly once.

``STAGE_ORDER`` (the full eight-name tuple) is re-exported here and is the
canonical import site for every stage-name consumer outside ``core``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.comparison.kernel import InternedComparator
from repro.core.backends import (
    InMemoryBackend,
    StateBackend,
    backend_capabilities,
)
from repro.core.backends.durable import CommittingStage
from repro.core.config import StreamERConfig
from repro.core.stages import (
    STAGE_ORDER,
    BlockBuildingStage,
    BlockGhostingStage,
    ClassificationStage,
    ComparisonCleaningStage,
    ComparisonGenerationStage,
    ComparisonStage,
    DataReadingStage,
    LoadManagementStage,
)
from repro.errors import ConfigurationError
from repro.invariants.checker import CheckedStage, InvariantChecker
from repro.observability.instrument import InstrumentedStage, declare_pipeline_metrics
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "STAGE_ORDER",
    "StageSpec",
    "PipelinePlan",
    "CompiledPipeline",
]

#: A stage factory: (config, backend) → the stage callable.
StageFactory = Callable[[StreamERConfig, StateBackend], Callable]


@dataclass(frozen=True)
class StageSpec:
    """One node of the stage graph: identity, factory, execution constraints."""

    name: str
    factory: StageFactory
    replicable: bool = True
    serialization_point: bool = False
    optional: bool = False


def _make_dr(config: StreamERConfig, backend: StateBackend):
    builder = config.profile_builder
    # An interned comparator needs profiles carrying token ids; bind the
    # backend's shared dictionary into the builder at compile time (the
    # dictionary is run state, like every store, so two executors compiling
    # the same config never share id spaces by accident).
    if builder.dictionary is None and isinstance(config.comparator, InternedComparator):
        dictionary = getattr(backend, "dictionary", None)
        if dictionary is not None:
            builder = builder.with_dictionary(dictionary)
    return DataReadingStage(builder)


def _make_bb(config: StreamERConfig, backend: StateBackend):
    return BlockBuildingStage(
        alpha=config.alpha, enabled=config.enable_block_cleaning, backend=backend
    )


def _make_bg(config: StreamERConfig, backend: StateBackend):
    return BlockGhostingStage(beta=config.beta)


def _make_cg(config: StreamERConfig, backend: StateBackend):
    return ComparisonGenerationStage(clean_clean=config.clean_clean)


def _make_cc(config: StreamERConfig, backend: StateBackend):
    return ComparisonCleaningStage(backend=backend)


def _make_lm(config: StreamERConfig, backend: StateBackend):
    return LoadManagementStage(backend=backend)


def _make_co(config: StreamERConfig, backend: StateBackend):
    return ComparisonStage(config.comparator)


def _make_cl(config: StreamERConfig, backend: StateBackend):
    return ClassificationStage(config.classifier, backend=backend)


#: The full graph, in pipeline order.  ``from_config`` filters the optional
#: nodes; everything else consumes the *filtered* view.
_ALL_SPECS: tuple[StageSpec, ...] = (
    StageSpec("dr", _make_dr),
    StageSpec("bb+bp", _make_bb, replicable=False, serialization_point=True),
    StageSpec("bg", _make_bg, optional=True),
    StageSpec("cg", _make_cg),
    StageSpec("cc", _make_cc, optional=True),
    StageSpec("lm", _make_lm),
    StageSpec("co", _make_co),
    StageSpec("cl", _make_cl),
)

#: Which config flag keeps each optional node in the graph.
_OPTIONAL_GATES: dict[str, Callable[[StreamERConfig], bool]] = {
    "bg": lambda config: config.enable_block_cleaning,
    "cc": lambda config: config.enable_comparison_cleaning,
}


@dataclass(frozen=True)
class PipelinePlan:
    """The stage graph for one configuration; shared by all executors."""

    config: StreamERConfig
    specs: tuple[StageSpec, ...]

    @classmethod
    def from_config(cls, config: StreamERConfig | None = None) -> "PipelinePlan":
        """Build the plan, dropping optional nodes the config disables."""
        config = config or StreamERConfig()
        specs = tuple(
            spec
            for spec in _ALL_SPECS
            if not spec.optional or _OPTIONAL_GATES[spec.name](config)
        )
        return cls(config=config, specs=specs)

    # -- graph queries -------------------------------------------------

    def stage_names(self) -> tuple[str, ...]:
        """Active stage names in pipeline order."""
        return tuple(spec.name for spec in self.specs)

    def __contains__(self, name: str) -> bool:
        return any(spec.name == name for spec in self.specs)

    def spec(self, name: str) -> StageSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise ConfigurationError(
            f"stage {name!r} is not in this plan (active: {self.stage_names()})"
        )

    def front_stage_names(self) -> tuple[str, ...]:
        """The state-bearing front: every active stage before ``co``."""
        return tuple(
            spec.name for spec in self.specs if spec.name not in ("co", "cl")
        )

    def serialization_points(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.specs if spec.serialization_point)

    def non_replicable_stages(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.specs if not spec.replicable)

    # -- compilation ---------------------------------------------------

    def compile(
        self,
        backend: StateBackend | None = None,
        registry: MetricsRegistry | None = None,
        checker: InvariantChecker | None = None,
    ) -> "CompiledPipeline":
        """Instantiate every active stage against one state backend.

        With an enabled ``registry``, every stage is wrapped in an
        :class:`~repro.observability.instrument.InstrumentedStage` so all
        executors compiling this plan emit the shared metric vocabulary.
        With an enabled ``checker``, stages are additionally wrapped in a
        :class:`~repro.invariants.checker.CheckedStage` so every output
        message is verified against the registered stage invariants.
        """
        return CompiledPipeline(
            self,
            backend if backend is not None else InMemoryBackend(),
            registry=registry,
            checker=checker,
        )


class CompiledPipeline:
    """The plan's stages, instantiated in order against a shared backend.

    This is what an executor consumes: an ordered mapping of active stage
    name → stage callable, plus the backend that owns all mutable state.
    Dropped optional nodes are simply absent — executors query with
    :meth:`get` and treat ``None`` as "not in this run".

    With an enabled metrics ``registry``, stage callables are
    :class:`~repro.observability.instrument.InstrumentedStage` wrappers —
    transparent for attribute access (``compiled.get("cg").generated``
    still resolves) but recording per-stage service time, item counts and
    the comparison/match counters into the registry.  With the default
    ``NULL_REGISTRY``, stages are left bare and nothing is recorded.
    """

    def __init__(
        self,
        plan: PipelinePlan,
        backend: StateBackend,
        registry: MetricsRegistry | None = None,
        checker: InvariantChecker | None = None,
    ) -> None:
        self.plan = plan
        self.backend = backend
        #: Capability strings the backend advertises, resolved once at
        #: compile time so executors negotiate fast paths (e.g. the
        #: multiprocess ``"shm"`` dispatch) off the compiled plan rather
        #: than re-probing the backend.
        self.capabilities = backend_capabilities(backend)
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.checker = checker if (checker is not None and checker.enabled) else None
        self._stages: dict[str, Callable] = {
            spec.name: spec.factory(plan.config, backend) for spec in plan.specs
        }
        if hasattr(backend, "commit_entity") and "cl" in self._stages:
            # Durable backend: commit each entity as it leaves ``f_cl``.
            # Innermost wrapper, so instrumentation times the commit and
            # invariant checking still sees the stage's real output.
            self._stages["cl"] = CommittingStage("cl", self._stages["cl"], backend)
        if self.registry.enabled:
            declare_pipeline_metrics(self.registry, self.plan.stage_names())
            self._stages = {
                name: InstrumentedStage(name, stage, self.registry)
                for name, stage in self._stages.items()
            }
        if self.checker is not None:
            # Checking wraps *outside* instrumentation, so a violation's
            # stage timing is still recorded and attribute delegation
            # chains through both wrappers.
            self.checker.bind(plan.config, backend, self.registry)
            self._stages = {
                name: CheckedStage(name, stage, self.checker)
                for name, stage in self._stages.items()
            }

    @property
    def names(self) -> tuple[str, ...]:
        return self.plan.stage_names()

    def stage(self, name: str) -> Callable:
        try:
            return self._stages[name]
        except KeyError:
            raise ConfigurationError(
                f"stage {name!r} is not active (active: {self.names})"
            ) from None

    def get(self, name: str):
        """The stage callable, or None when the node is not in the plan."""
        return self._stages.get(name)

    def ordered(self) -> list[tuple[str, Callable]]:
        """(name, stage) pairs in pipeline order."""
        return [(spec.name, self._stages[spec.name]) for spec in self.plan.specs]

    def stage_functions(self) -> dict[str, Callable]:
        """A mutable name → callable mapping (for wrapping/fault injection)."""
        return dict(self._stages)
