"""Persistence of the ER state: suspend and resume dynamic resolution.

§III-A of the paper allows the initial state σ₁ to be "filled with the
state resulting from applying ER on another dataset, which D is updating".
This module makes that concrete: the full pipeline state round-trips
through a single JSON document, so resolution can be suspended, shipped,
and resumed with bit-identical results.

Since the durability layer landed, the on-disk format *is* the snapshot
schema of :mod:`repro.durability.snapshot` (version 2) — a cooperative
suspend is simply a checkpoint at epoch 0 with no WAL.  Crucially, v2
persists the :class:`~repro.reading.interning.TokenDictionary` in id
order, so resuming restores the exact token-id assignment instead of
re-interning (which assigns ids in *iteration* order of each profile's
token set and can therefore reorder them — the v1 format had exactly
this hole).

Version-1 documents (which carried no dictionary) are still read through
a compatibility shim; their interned profiles are rebuilt by re-interning,
reproducing the v1 behaviour, ids and all.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import IO

from repro.core.pipeline import StreamERPipeline
from repro.durability.codec import decode_id, decode_match
from repro.durability.snapshot import (
    SNAPSHOT_FORMAT,
    apply_state_document,
    state_document,
)
from repro.errors import DatasetError, RecoveryError
from repro.types import Profile

LEGACY_FORMAT = "repro-er-state"


def dump_state(pipeline: StreamERPipeline, target: str | Path | IO[str]) -> None:
    """Serialize the pipeline's complete state to a JSON document (v2)."""
    document = state_document(
        pipeline.backend,
        entities_processed=pipeline.entities_processed,
        epoch=0,
        next_seq=pipeline.entities_processed,
    )
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="utf-8") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, target)


def load_state(pipeline: StreamERPipeline, source: str | Path | IO[str]) -> None:
    """Restore a previously dumped state into a *fresh* pipeline.

    The pipeline must not have processed anything yet — resuming merges,
    rather than replaces, and a half-filled state would silently corrupt
    the resolution.  Accepts both the current snapshot documents and
    legacy version-1 dumps.
    """
    if pipeline.entities_processed:
        raise DatasetError("state can only be loaded into a fresh pipeline")
    if isinstance(source, (str, Path)):
        with Path(source).open(encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = json.load(source)
    fmt = document.get("format")
    if fmt == LEGACY_FORMAT:
        _load_legacy(pipeline, document)
        return
    if fmt != SNAPSHOT_FORMAT:
        raise DatasetError("not a repro ER state document")
    try:
        # Re-validate through the snapshot loader's rules (version + hash)
        # by routing the already-parsed document through its appliers.
        from repro.durability.snapshot import SNAPSHOT_VERSION, _document_sha

        if document.get("version") != SNAPSHOT_VERSION:
            raise DatasetError(
                f"unsupported state version {document.get('version')!r}"
            )
        if document.get("sha256") != _document_sha(document):
            raise DatasetError("state document fails its integrity hash")
        count = apply_state_document(document, pipeline.backend)
    except RecoveryError as exc:
        raise DatasetError(str(exc)) from exc
    pipeline._entities_processed = count  # noqa: SLF001


def _load_legacy(pipeline: StreamERPipeline, document: dict) -> None:
    """The version-1 shim: no persisted dictionary, ids re-interned."""
    if document.get("version") != 1:
        raise DatasetError(f"unsupported state version {document.get('version')!r}")
    backend = pipeline.backend
    for key, members in document["blocks"].items():
        for encoded in members:
            backend.blocks.add(key, decode_id(encoded))
    for key in document["blacklist"]:
        backend.blacklist.add(key)
    dictionary = pipeline.dr.builder.dictionary
    for encoded in document["profiles"]:
        profile = Profile(
            eid=decode_id(encoded["eid"]),
            attributes=tuple((n, v) for n, v in encoded["attributes"]),
            tokens=frozenset(encoded["tokens"]),
            source=encoded.get("source"),
        )
        if dictionary is not None:
            profile = dataclasses.replace(
                profile, token_ids=dictionary.intern_set(profile.tokens)
            )
        backend.profiles.put(profile)
    for encoded in document["matches"]:
        backend.matches.add(decode_match(encoded))
    pipeline._entities_processed = document["entities_processed"]  # noqa: SLF001
