"""Persistence of the ER state: suspend and resume dynamic resolution.

§III-A of the paper allows the initial state σ₁ to be "filled with the
state resulting from applying ER on another dataset, which D is updating".
This module makes that concrete: the full pipeline state (block
collection, blacklist, profile map, match store) round-trips through a
single JSON document, so resolution can be suspended, shipped, and resumed
with bit-identical results.

Identifiers survive the round trip for the shapes the framework produces:
ints, strings, and (source, local_id) tuples from clean-clean ER.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import IO

from repro.core.pipeline import StreamERPipeline
from repro.errors import DatasetError
from repro.types import EntityId, Match, Profile


def _encode_id(eid: EntityId) -> object:
    if isinstance(eid, tuple):
        return {"__tuple__": [_encode_id(part) for part in eid]}
    if isinstance(eid, (int, str)) or eid is None:
        return eid
    raise DatasetError(f"identifier {eid!r} is not JSON-persistable")


def _decode_id(value: object) -> EntityId:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_id(part) for part in value["__tuple__"])
    return value  # type: ignore[return-value]


def _encode_profile(profile: Profile) -> dict:
    return {
        "eid": _encode_id(profile.eid),
        "attributes": [[name, value] for name, value in profile.attributes],
        "tokens": sorted(profile.tokens),
        "source": profile.source,
    }


def _decode_profile(data: dict) -> Profile:
    return Profile(
        eid=_decode_id(data["eid"]),
        attributes=tuple((name, value) for name, value in data["attributes"]),
        tokens=frozenset(data["tokens"]),
        source=data.get("source"),
    )


def dump_state(pipeline: StreamERPipeline, target: str | Path | IO[str]) -> None:
    """Serialize the pipeline's complete state to a JSON document."""
    document = {
        "format": "repro-er-state",
        "version": 1,
        "entities_processed": pipeline.entities_processed,
        "blocks": {
            key: [_encode_id(eid) for eid in members]
            for key, members in pipeline.bb.blocks.items()
        },
        "blacklist": sorted(pipeline.bb.blacklist.keys),
        "profiles": [
            _encode_profile(profile) for profile in pipeline.lm.profiles.values()
        ],
        "matches": [
            {
                "left": _encode_id(m.left),
                "right": _encode_id(m.right),
                "similarity": m.similarity,
            }
            for m in pipeline.cl.matches.matches()
        ],
    }
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="utf-8") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, target)


def load_state(pipeline: StreamERPipeline, source: str | Path | IO[str]) -> None:
    """Restore a previously dumped state into a *fresh* pipeline.

    The pipeline must not have processed anything yet — resuming merges,
    rather than replaces, and a half-filled state would silently corrupt
    the resolution.
    """
    if pipeline.entities_processed:
        raise DatasetError("state can only be loaded into a fresh pipeline")
    if isinstance(source, (str, Path)):
        with Path(source).open(encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = json.load(source)
    if document.get("format") != "repro-er-state":
        raise DatasetError("not a repro ER state document")
    if document.get("version") != 1:
        raise DatasetError(f"unsupported state version {document.get('version')!r}")

    for key, members in document["blocks"].items():
        for encoded in members:
            pipeline.bb.blocks.add(key, _decode_id(encoded))
    for key in document["blacklist"]:
        pipeline.bb.blacklist.add(key)
    # Token ids are dictionary-relative, so the dump stores only the token
    # strings; an interning pipeline re-interns on load, which rebuilds a
    # consistent id space in the resuming run's own dictionary.
    dictionary = pipeline.dr.builder.dictionary
    for encoded in document["profiles"]:
        profile = _decode_profile(encoded)
        if dictionary is not None:
            profile = dataclasses.replace(
                profile, token_ids=dictionary.intern_set(profile.tokens)
            )
        pipeline.lm.profiles.put(profile)
    for encoded in document["matches"]:
        pipeline.cl.matches.add(
            Match(
                left=_decode_id(encoded["left"]),
                right=_decode_id(encoded["right"]),
                similarity=encoded["similarity"],
            )
        )
    pipeline._entities_processed = document["entities_processed"]  # noqa: SLF001
