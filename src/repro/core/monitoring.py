"""Operational monitoring of a running pipeline.

Long-running deployments need visibility: how fast are entities flowing,
how much work does each one cause, how big has the state grown, is
pruning keeping up.  :class:`PipelineMonitor` wraps *any* executor that
exposes the common surface — ``entities_processed``, a ``compiled``
:class:`~repro.core.plan.CompiledPipeline`, its ``backend``, and
optionally a :class:`~repro.observability.MetricsRegistry` — and emits a
:class:`Snapshot` every ``interval`` entities (and on demand), keeping a
bounded history so rates can be computed over the most recent window
rather than the whole run.

The sequential pipeline, the thread framework, and the multiprocess
executor all satisfy that surface.  Counters are read from the metrics
registry when the pipeline runs with one enabled (the only cross-process
truth for the multiprocess executor), and fall back to the compiled
stages' own counters otherwise; state sizes always come from the
:class:`~repro.core.backends.StateBackend`, never from executor-specific
attributes.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.observability.instrument import (
    COMPARISONS_EXECUTED,
    COMPARISONS_GENERATED,
)
from repro.observability.registry import NULL_REGISTRY
from repro.types import EntityDescription, Match


@dataclass(frozen=True)
class Snapshot:
    """One point-in-time view of pipeline health."""

    entities_processed: int
    elapsed_seconds: float
    throughput_recent: float
    comparisons_generated: int
    comparisons_executed: int
    comparisons_per_entity_recent: float
    matches_found: int
    blocks: int
    blacklisted_keys: int
    profiles_stored: int
    items_failed: int = 0
    retries_performed: int = 0

    def summary(self) -> str:
        text = (
            f"{self.entities_processed} entities "
            f"({self.throughput_recent:,.0f}/s recent), "
            f"{self.comparisons_per_entity_recent:.1f} comparisons/entity, "
            f"{self.matches_found} matches, "
            f"{self.blocks} blocks (+{self.blacklisted_keys} blacklisted), "
            f"{self.profiles_stored} profiles"
        )
        if self.items_failed or self.retries_performed:
            text += (
                f", {self.items_failed} dead-lettered "
                f"(+{self.retries_performed} retries)"
            )
        return text


class PipelineMonitor:
    """Wraps a pipeline executor with periodic health snapshots.

    Parameters
    ----------
    pipeline:
        The executor to observe (sequential, thread-parallel, or
        multiprocess); the monitor proxies ``process`` when the executor
        has one — parallel executors are typically snapshotted on demand
        or from their own result callbacks instead.
    interval:
        Emit a snapshot every this many proxied entities.
    on_snapshot:
        Optional callback invoked with each emitted snapshot.
    window:
        Number of recent snapshots retained in ``history``.  The "recent"
        rates span the whole retained window: they are computed between
        the *oldest* retained snapshot and now.
    """

    def __init__(
        self,
        pipeline,
        interval: int = 1000,
        on_snapshot: Callable[[Snapshot], None] | None = None,
        window: int = 60,
    ) -> None:
        if interval < 1:
            raise ConfigurationError("interval must be >= 1")
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        self.pipeline = pipeline
        self.interval = interval
        self.on_snapshot = on_snapshot
        self.history: deque[Snapshot] = deque(maxlen=window)
        self.registry = getattr(pipeline, "registry", NULL_REGISTRY)
        self._start = time.perf_counter()
        self._since_last = 0

    # -- counter sources ----------------------------------------------

    def _comparisons_generated(self) -> int:
        if self.registry.enabled:
            return int(self.registry.value(COMPARISONS_GENERATED))
        cg = self.pipeline.compiled.get("cg")
        return cg.generated if cg is not None else 0

    def _comparisons_executed(self) -> int:
        if self.registry.enabled:
            return int(self.registry.value(COMPARISONS_EXECUTED))
        co = self.pipeline.compiled.get("co")
        executed = co.compared if co is not None else 0
        # The multiprocess executor scores on the pool; its parent-side
        # ``co`` stage object never runs, but it counts dispatches.
        return max(executed, getattr(self.pipeline, "pairs_dispatched", 0))

    def _recent_rates(self, now_entities: int, now_seconds: float,
                      now_comparisons: int) -> tuple[float, float]:
        """Rates over the retained window: oldest snapshot → now.

        A zero-length time span (two snapshots within timer resolution)
        carries the previous throughput forward instead of collapsing to
        zero — a monitoring artifact must not look like a stall.
        """
        if not self.history:
            throughput = now_entities / now_seconds if now_seconds > 0 else 0.0
            per_entity = now_comparisons / max(now_entities, 1)
            return throughput, per_entity
        base = self.history[0]
        d_entities = now_entities - base.entities_processed
        d_seconds = now_seconds - base.elapsed_seconds
        d_comparisons = now_comparisons - base.comparisons_executed
        if d_seconds > 0:
            throughput = d_entities / d_seconds
        else:
            throughput = self.history[-1].throughput_recent
        per_entity = d_comparisons / max(d_entities, 1)
        return throughput, per_entity

    def snapshot(self) -> Snapshot:
        """Take (and record) a snapshot right now."""
        p = self.pipeline
        backend = p.backend
        elapsed = time.perf_counter() - self._start
        generated = self._comparisons_generated()
        executed = self._comparisons_executed()
        throughput, per_entity = self._recent_rates(
            p.entities_processed, elapsed, executed
        )
        snap = Snapshot(
            entities_processed=p.entities_processed,
            elapsed_seconds=elapsed,
            throughput_recent=throughput,
            comparisons_generated=generated,
            comparisons_executed=executed,
            comparisons_per_entity_recent=per_entity,
            matches_found=len(backend.matches),
            blocks=len(backend.blocks),
            blacklisted_keys=len(backend.blacklist),
            profiles_stored=len(backend.profiles),
            # Supervised executors expose these; plain pipelines default to 0.
            items_failed=getattr(p, "items_failed", 0),
            retries_performed=getattr(p, "retries_performed", 0),
        )
        self.history.append(snap)
        if self.on_snapshot is not None:
            self.on_snapshot(snap)
        return snap

    def process(self, entity: EntityDescription) -> list[Match]:
        """Proxy one entity through the pipeline, snapshotting on schedule."""
        matches = self.pipeline.process(entity)
        self._since_last += 1
        if self._since_last >= self.interval:
            self._since_last = 0
            self.snapshot()
        return matches

    def process_many(self, entities: Iterable[EntityDescription]) -> list[Match]:
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out
